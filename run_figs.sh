#!/bin/bash
# Regenerates every table and figure; writes one log per experiment.
set -u
cd "$(dirname "$0")"
for bin in table2 table3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 reconfig_gain ablation scaling; do
    echo "=== $bin start $(date +%T) ==="
    cargo run --release -p bench --bin $bin > results/$bin.txt 2>results/$bin.err
    echo "=== $bin done $(date +%T) rc=$? ==="
done
