/root/repo/target/debug/deps/cosparse_repro-60fe8a0925167caa.d: src/lib.rs

/root/repo/target/debug/deps/cosparse_repro-60fe8a0925167caa: src/lib.rs

src/lib.rs:
