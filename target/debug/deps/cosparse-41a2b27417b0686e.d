/root/repo/target/debug/deps/cosparse-41a2b27417b0686e.d: crates/cosparse/src/lib.rs crates/cosparse/src/adaptive.rs crates/cosparse/src/balance.rs crates/cosparse/src/heuristics.rs crates/cosparse/src/kernels/mod.rs crates/cosparse/src/kernels/convert.rs crates/cosparse/src/kernels/ip.rs crates/cosparse/src/kernels/op.rs crates/cosparse/src/layout.rs crates/cosparse/src/ops.rs crates/cosparse/src/runtime.rs crates/cosparse/src/verify.rs

/root/repo/target/debug/deps/cosparse-41a2b27417b0686e: crates/cosparse/src/lib.rs crates/cosparse/src/adaptive.rs crates/cosparse/src/balance.rs crates/cosparse/src/heuristics.rs crates/cosparse/src/kernels/mod.rs crates/cosparse/src/kernels/convert.rs crates/cosparse/src/kernels/ip.rs crates/cosparse/src/kernels/op.rs crates/cosparse/src/layout.rs crates/cosparse/src/ops.rs crates/cosparse/src/runtime.rs crates/cosparse/src/verify.rs

crates/cosparse/src/lib.rs:
crates/cosparse/src/adaptive.rs:
crates/cosparse/src/balance.rs:
crates/cosparse/src/heuristics.rs:
crates/cosparse/src/kernels/mod.rs:
crates/cosparse/src/kernels/convert.rs:
crates/cosparse/src/kernels/ip.rs:
crates/cosparse/src/kernels/op.rs:
crates/cosparse/src/layout.rs:
crates/cosparse/src/ops.rs:
crates/cosparse/src/runtime.rs:
crates/cosparse/src/verify.rs:
