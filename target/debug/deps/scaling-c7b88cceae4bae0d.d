/root/repo/target/debug/deps/scaling-c7b88cceae4bae0d.d: crates/bench/src/bin/scaling.rs

/root/repo/target/debug/deps/scaling-c7b88cceae4bae0d: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
