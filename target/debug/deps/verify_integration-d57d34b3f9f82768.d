/root/repo/target/debug/deps/verify_integration-d57d34b3f9f82768.d: crates/cosparse/tests/verify_integration.rs

/root/repo/target/debug/deps/verify_integration-d57d34b3f9f82768: crates/cosparse/tests/verify_integration.rs

crates/cosparse/tests/verify_integration.rs:
