/root/repo/target/debug/deps/bench-d3adc3589b0513a2.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-d3adc3589b0513a2.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
