/root/repo/target/debug/deps/criterion-576f53da30265818.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-576f53da30265818.rlib: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-576f53da30265818.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
