/root/repo/target/debug/deps/fig10-729378f518294a78.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-729378f518294a78: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
