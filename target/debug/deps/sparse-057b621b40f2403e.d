/root/repo/target/debug/deps/sparse-057b621b40f2403e.d: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/csc.rs crates/sparse/src/csr.rs crates/sparse/src/error.rs crates/sparse/src/vector.rs crates/sparse/src/generate/mod.rs crates/sparse/src/generate/barabasi.rs crates/sparse/src/generate/power_law.rs crates/sparse/src/generate/rmat.rs crates/sparse/src/generate/suite.rs crates/sparse/src/generate/uniform.rs crates/sparse/src/generate/vectors.rs crates/sparse/src/io.rs crates/sparse/src/partition.rs crates/sparse/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libsparse-057b621b40f2403e.rmeta: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/csc.rs crates/sparse/src/csr.rs crates/sparse/src/error.rs crates/sparse/src/vector.rs crates/sparse/src/generate/mod.rs crates/sparse/src/generate/barabasi.rs crates/sparse/src/generate/power_law.rs crates/sparse/src/generate/rmat.rs crates/sparse/src/generate/suite.rs crates/sparse/src/generate/uniform.rs crates/sparse/src/generate/vectors.rs crates/sparse/src/io.rs crates/sparse/src/partition.rs crates/sparse/src/stats.rs Cargo.toml

crates/sparse/src/lib.rs:
crates/sparse/src/coo.rs:
crates/sparse/src/csc.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/error.rs:
crates/sparse/src/vector.rs:
crates/sparse/src/generate/mod.rs:
crates/sparse/src/generate/barabasi.rs:
crates/sparse/src/generate/power_law.rs:
crates/sparse/src/generate/rmat.rs:
crates/sparse/src/generate/suite.rs:
crates/sparse/src/generate/uniform.rs:
crates/sparse/src/generate/vectors.rs:
crates/sparse/src/io.rs:
crates/sparse/src/partition.rs:
crates/sparse/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
