/root/repo/target/debug/deps/scaling-3436a07d3596d10f.d: crates/bench/src/bin/scaling.rs Cargo.toml

/root/repo/target/debug/deps/libscaling-3436a07d3596d10f.rmeta: crates/bench/src/bin/scaling.rs Cargo.toml

crates/bench/src/bin/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
