/root/repo/target/debug/deps/properties-323649366da41e0d.d: tests/properties.rs

/root/repo/target/debug/deps/properties-323649366da41e0d: tests/properties.rs

tests/properties.rs:
