/root/repo/target/debug/deps/verify_props-d2907ff34a20db8d.d: crates/transmuter/tests/verify_props.rs

/root/repo/target/debug/deps/verify_props-d2907ff34a20db8d: crates/transmuter/tests/verify_props.rs

crates/transmuter/tests/verify_props.rs:
