/root/repo/target/debug/deps/criterion-ae5fb4cc22e4927a.d: crates/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-ae5fb4cc22e4927a.rmeta: crates/criterion/src/lib.rs Cargo.toml

crates/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
