/root/repo/target/debug/deps/cosparse_cli-9bc55cc5fa9e832e.d: src/bin/cosparse-cli.rs

/root/repo/target/debug/deps/cosparse_cli-9bc55cc5fa9e832e: src/bin/cosparse-cli.rs

src/bin/cosparse-cli.rs:
