/root/repo/target/debug/deps/cosparse_verify-4f4df0080ec2d6db.d: crates/cosparse/src/bin/cosparse_verify.rs

/root/repo/target/debug/deps/cosparse_verify-4f4df0080ec2d6db: crates/cosparse/src/bin/cosparse_verify.rs

crates/cosparse/src/bin/cosparse_verify.rs:
