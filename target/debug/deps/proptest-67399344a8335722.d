/root/repo/target/debug/deps/proptest-67399344a8335722.d: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs

/root/repo/target/debug/deps/proptest-67399344a8335722: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs

crates/proptest/src/lib.rs:
crates/proptest/src/collection.rs:
crates/proptest/src/strategy.rs:
crates/proptest/src/test_runner.rs:
