/root/repo/target/debug/deps/fig6-6f50840bb2a55e21.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-6f50840bb2a55e21: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
