/root/repo/target/debug/deps/transmuter-748efb36767c7673.d: crates/transmuter/src/lib.rs crates/transmuter/src/cache.rs crates/transmuter/src/config.rs crates/transmuter/src/energy.rs crates/transmuter/src/hbm.rs crates/transmuter/src/machine.rs crates/transmuter/src/memsys.rs crates/transmuter/src/op.rs crates/transmuter/src/stats.rs crates/transmuter/src/trace.rs crates/transmuter/src/verify.rs

/root/repo/target/debug/deps/transmuter-748efb36767c7673: crates/transmuter/src/lib.rs crates/transmuter/src/cache.rs crates/transmuter/src/config.rs crates/transmuter/src/energy.rs crates/transmuter/src/hbm.rs crates/transmuter/src/machine.rs crates/transmuter/src/memsys.rs crates/transmuter/src/op.rs crates/transmuter/src/stats.rs crates/transmuter/src/trace.rs crates/transmuter/src/verify.rs

crates/transmuter/src/lib.rs:
crates/transmuter/src/cache.rs:
crates/transmuter/src/config.rs:
crates/transmuter/src/energy.rs:
crates/transmuter/src/hbm.rs:
crates/transmuter/src/machine.rs:
crates/transmuter/src/memsys.rs:
crates/transmuter/src/op.rs:
crates/transmuter/src/stats.rs:
crates/transmuter/src/trace.rs:
crates/transmuter/src/verify.rs:
