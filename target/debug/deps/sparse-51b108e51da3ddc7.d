/root/repo/target/debug/deps/sparse-51b108e51da3ddc7.d: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/csc.rs crates/sparse/src/csr.rs crates/sparse/src/error.rs crates/sparse/src/vector.rs crates/sparse/src/generate/mod.rs crates/sparse/src/generate/barabasi.rs crates/sparse/src/generate/power_law.rs crates/sparse/src/generate/rmat.rs crates/sparse/src/generate/suite.rs crates/sparse/src/generate/uniform.rs crates/sparse/src/generate/vectors.rs crates/sparse/src/io.rs crates/sparse/src/partition.rs crates/sparse/src/stats.rs

/root/repo/target/debug/deps/sparse-51b108e51da3ddc7: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/csc.rs crates/sparse/src/csr.rs crates/sparse/src/error.rs crates/sparse/src/vector.rs crates/sparse/src/generate/mod.rs crates/sparse/src/generate/barabasi.rs crates/sparse/src/generate/power_law.rs crates/sparse/src/generate/rmat.rs crates/sparse/src/generate/suite.rs crates/sparse/src/generate/uniform.rs crates/sparse/src/generate/vectors.rs crates/sparse/src/io.rs crates/sparse/src/partition.rs crates/sparse/src/stats.rs

crates/sparse/src/lib.rs:
crates/sparse/src/coo.rs:
crates/sparse/src/csc.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/error.rs:
crates/sparse/src/vector.rs:
crates/sparse/src/generate/mod.rs:
crates/sparse/src/generate/barabasi.rs:
crates/sparse/src/generate/power_law.rs:
crates/sparse/src/generate/rmat.rs:
crates/sparse/src/generate/suite.rs:
crates/sparse/src/generate/uniform.rs:
crates/sparse/src/generate/vectors.rs:
crates/sparse/src/io.rs:
crates/sparse/src/partition.rs:
crates/sparse/src/stats.rs:
