/root/repo/target/debug/deps/verify_props-8135d8d4c5cef10e.d: crates/transmuter/tests/verify_props.rs Cargo.toml

/root/repo/target/debug/deps/libverify_props-8135d8d4c5cef10e.rmeta: crates/transmuter/tests/verify_props.rs Cargo.toml

crates/transmuter/tests/verify_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
