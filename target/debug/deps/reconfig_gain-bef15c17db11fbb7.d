/root/repo/target/debug/deps/reconfig_gain-bef15c17db11fbb7.d: crates/bench/src/bin/reconfig_gain.rs Cargo.toml

/root/repo/target/debug/deps/libreconfig_gain-bef15c17db11fbb7.rmeta: crates/bench/src/bin/reconfig_gain.rs Cargo.toml

crates/bench/src/bin/reconfig_gain.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
