/root/repo/target/debug/deps/cosparse_cli-b1a8e826879b91da.d: src/bin/cosparse-cli.rs Cargo.toml

/root/repo/target/debug/deps/libcosparse_cli-b1a8e826879b91da.rmeta: src/bin/cosparse-cli.rs Cargo.toml

src/bin/cosparse-cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
