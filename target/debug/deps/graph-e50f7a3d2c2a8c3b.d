/root/repo/target/debug/deps/graph-e50f7a3d2c2a8c3b.d: crates/graph/src/lib.rs crates/graph/src/bc.rs crates/graph/src/bfs.rs crates/graph/src/cc.rs crates/graph/src/cf.rs crates/graph/src/engine.rs crates/graph/src/kbfs.rs crates/graph/src/pagerank.rs crates/graph/src/sssp.rs

/root/repo/target/debug/deps/graph-e50f7a3d2c2a8c3b: crates/graph/src/lib.rs crates/graph/src/bc.rs crates/graph/src/bfs.rs crates/graph/src/cc.rs crates/graph/src/cf.rs crates/graph/src/engine.rs crates/graph/src/kbfs.rs crates/graph/src/pagerank.rs crates/graph/src/sssp.rs

crates/graph/src/lib.rs:
crates/graph/src/bc.rs:
crates/graph/src/bfs.rs:
crates/graph/src/cc.rs:
crates/graph/src/cf.rs:
crates/graph/src/engine.rs:
crates/graph/src/kbfs.rs:
crates/graph/src/pagerank.rs:
crates/graph/src/sssp.rs:
