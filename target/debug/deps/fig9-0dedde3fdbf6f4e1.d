/root/repo/target/debug/deps/fig9-0dedde3fdbf6f4e1.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-0dedde3fdbf6f4e1: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
