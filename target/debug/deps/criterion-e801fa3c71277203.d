/root/repo/target/debug/deps/criterion-e801fa3c71277203.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-e801fa3c71277203: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
