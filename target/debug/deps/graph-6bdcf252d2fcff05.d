/root/repo/target/debug/deps/graph-6bdcf252d2fcff05.d: crates/graph/src/lib.rs crates/graph/src/bc.rs crates/graph/src/bfs.rs crates/graph/src/cc.rs crates/graph/src/cf.rs crates/graph/src/engine.rs crates/graph/src/kbfs.rs crates/graph/src/pagerank.rs crates/graph/src/sssp.rs Cargo.toml

/root/repo/target/debug/deps/libgraph-6bdcf252d2fcff05.rmeta: crates/graph/src/lib.rs crates/graph/src/bc.rs crates/graph/src/bfs.rs crates/graph/src/cc.rs crates/graph/src/cf.rs crates/graph/src/engine.rs crates/graph/src/kbfs.rs crates/graph/src/pagerank.rs crates/graph/src/sssp.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/bc.rs:
crates/graph/src/bfs.rs:
crates/graph/src/cc.rs:
crates/graph/src/cf.rs:
crates/graph/src/engine.rs:
crates/graph/src/kbfs.rs:
crates/graph/src/pagerank.rs:
crates/graph/src/sssp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
