/root/repo/target/debug/deps/cosparse_repro-9fd1e673eafd51a5.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcosparse_repro-9fd1e673eafd51a5.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
