/root/repo/target/debug/deps/cosparse_repro-fba8c325e4c58ca8.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcosparse_repro-fba8c325e4c58ca8.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
