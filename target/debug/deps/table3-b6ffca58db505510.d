/root/repo/target/debug/deps/table3-b6ffca58db505510.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-b6ffca58db505510: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
