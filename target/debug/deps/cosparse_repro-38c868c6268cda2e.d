/root/repo/target/debug/deps/cosparse_repro-38c868c6268cda2e.d: src/lib.rs

/root/repo/target/debug/deps/libcosparse_repro-38c868c6268cda2e.rlib: src/lib.rs

/root/repo/target/debug/deps/libcosparse_repro-38c868c6268cda2e.rmeta: src/lib.rs

src/lib.rs:
