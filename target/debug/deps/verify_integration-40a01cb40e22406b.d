/root/repo/target/debug/deps/verify_integration-40a01cb40e22406b.d: crates/cosparse/tests/verify_integration.rs

/root/repo/target/debug/deps/verify_integration-40a01cb40e22406b: crates/cosparse/tests/verify_integration.rs

crates/cosparse/tests/verify_integration.rs:
