/root/repo/target/debug/deps/transmuter-ec356e4f8e84e4ec.d: crates/transmuter/src/lib.rs crates/transmuter/src/cache.rs crates/transmuter/src/config.rs crates/transmuter/src/energy.rs crates/transmuter/src/hbm.rs crates/transmuter/src/machine.rs crates/transmuter/src/memsys.rs crates/transmuter/src/op.rs crates/transmuter/src/stats.rs crates/transmuter/src/trace.rs crates/transmuter/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libtransmuter-ec356e4f8e84e4ec.rmeta: crates/transmuter/src/lib.rs crates/transmuter/src/cache.rs crates/transmuter/src/config.rs crates/transmuter/src/energy.rs crates/transmuter/src/hbm.rs crates/transmuter/src/machine.rs crates/transmuter/src/memsys.rs crates/transmuter/src/op.rs crates/transmuter/src/stats.rs crates/transmuter/src/trace.rs crates/transmuter/src/verify.rs Cargo.toml

crates/transmuter/src/lib.rs:
crates/transmuter/src/cache.rs:
crates/transmuter/src/config.rs:
crates/transmuter/src/energy.rs:
crates/transmuter/src/hbm.rs:
crates/transmuter/src/machine.rs:
crates/transmuter/src/memsys.rs:
crates/transmuter/src/op.rs:
crates/transmuter/src/stats.rs:
crates/transmuter/src/trace.rs:
crates/transmuter/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
