/root/repo/target/debug/deps/baselines-3d1e5fd8fe87939b.d: crates/baselines/src/lib.rs crates/baselines/src/cpu.rs crates/baselines/src/gpu.rs crates/baselines/src/ligra.rs crates/baselines/src/platform.rs crates/baselines/src/xeon.rs

/root/repo/target/debug/deps/libbaselines-3d1e5fd8fe87939b.rlib: crates/baselines/src/lib.rs crates/baselines/src/cpu.rs crates/baselines/src/gpu.rs crates/baselines/src/ligra.rs crates/baselines/src/platform.rs crates/baselines/src/xeon.rs

/root/repo/target/debug/deps/libbaselines-3d1e5fd8fe87939b.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cpu.rs crates/baselines/src/gpu.rs crates/baselines/src/ligra.rs crates/baselines/src/platform.rs crates/baselines/src/xeon.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cpu.rs:
crates/baselines/src/gpu.rs:
crates/baselines/src/ligra.rs:
crates/baselines/src/platform.rs:
crates/baselines/src/xeon.rs:
