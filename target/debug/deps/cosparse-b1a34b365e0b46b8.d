/root/repo/target/debug/deps/cosparse-b1a34b365e0b46b8.d: crates/cosparse/src/lib.rs crates/cosparse/src/adaptive.rs crates/cosparse/src/balance.rs crates/cosparse/src/heuristics.rs crates/cosparse/src/kernels/mod.rs crates/cosparse/src/kernels/convert.rs crates/cosparse/src/kernels/ip.rs crates/cosparse/src/kernels/op.rs crates/cosparse/src/layout.rs crates/cosparse/src/ops.rs crates/cosparse/src/runtime.rs crates/cosparse/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libcosparse-b1a34b365e0b46b8.rmeta: crates/cosparse/src/lib.rs crates/cosparse/src/adaptive.rs crates/cosparse/src/balance.rs crates/cosparse/src/heuristics.rs crates/cosparse/src/kernels/mod.rs crates/cosparse/src/kernels/convert.rs crates/cosparse/src/kernels/ip.rs crates/cosparse/src/kernels/op.rs crates/cosparse/src/layout.rs crates/cosparse/src/ops.rs crates/cosparse/src/runtime.rs crates/cosparse/src/verify.rs Cargo.toml

crates/cosparse/src/lib.rs:
crates/cosparse/src/adaptive.rs:
crates/cosparse/src/balance.rs:
crates/cosparse/src/heuristics.rs:
crates/cosparse/src/kernels/mod.rs:
crates/cosparse/src/kernels/convert.rs:
crates/cosparse/src/kernels/ip.rs:
crates/cosparse/src/kernels/op.rs:
crates/cosparse/src/layout.rs:
crates/cosparse/src/ops.rs:
crates/cosparse/src/runtime.rs:
crates/cosparse/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
