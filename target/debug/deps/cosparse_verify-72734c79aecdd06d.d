/root/repo/target/debug/deps/cosparse_verify-72734c79aecdd06d.d: crates/cosparse/src/bin/cosparse_verify.rs Cargo.toml

/root/repo/target/debug/deps/libcosparse_verify-72734c79aecdd06d.rmeta: crates/cosparse/src/bin/cosparse_verify.rs Cargo.toml

crates/cosparse/src/bin/cosparse_verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
