/root/repo/target/debug/deps/reconfig_gain-1d3220fbd7e9258c.d: crates/bench/src/bin/reconfig_gain.rs Cargo.toml

/root/repo/target/debug/deps/libreconfig_gain-1d3220fbd7e9258c.rmeta: crates/bench/src/bin/reconfig_gain.rs Cargo.toml

crates/bench/src/bin/reconfig_gain.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
