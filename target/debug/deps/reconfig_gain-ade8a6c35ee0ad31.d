/root/repo/target/debug/deps/reconfig_gain-ade8a6c35ee0ad31.d: crates/bench/src/bin/reconfig_gain.rs

/root/repo/target/debug/deps/reconfig_gain-ade8a6c35ee0ad31: crates/bench/src/bin/reconfig_gain.rs

crates/bench/src/bin/reconfig_gain.rs:
