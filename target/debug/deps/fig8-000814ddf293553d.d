/root/repo/target/debug/deps/fig8-000814ddf293553d.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-000814ddf293553d: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
