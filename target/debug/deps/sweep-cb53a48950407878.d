/root/repo/target/debug/deps/sweep-cb53a48950407878.d: crates/bench/src/bin/sweep.rs

/root/repo/target/debug/deps/sweep-cb53a48950407878: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
