/root/repo/target/debug/deps/end_to_end-2e2f76c2d660f1f8.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-2e2f76c2d660f1f8: tests/end_to_end.rs

tests/end_to_end.rs:
