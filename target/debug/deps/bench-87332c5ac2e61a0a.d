/root/repo/target/debug/deps/bench-87332c5ac2e61a0a.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-87332c5ac2e61a0a.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-87332c5ac2e61a0a.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
