/root/repo/target/debug/deps/bench-0561c0daf7eaaaf1.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-0561c0daf7eaaaf1: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
