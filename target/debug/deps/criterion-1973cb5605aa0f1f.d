/root/repo/target/debug/deps/criterion-1973cb5605aa0f1f.d: crates/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-1973cb5605aa0f1f.rmeta: crates/criterion/src/lib.rs Cargo.toml

crates/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
