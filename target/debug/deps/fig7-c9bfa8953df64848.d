/root/repo/target/debug/deps/fig7-c9bfa8953df64848.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-c9bfa8953df64848: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
