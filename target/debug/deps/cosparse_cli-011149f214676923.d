/root/repo/target/debug/deps/cosparse_cli-011149f214676923.d: src/bin/cosparse-cli.rs

/root/repo/target/debug/deps/cosparse_cli-011149f214676923: src/bin/cosparse-cli.rs

src/bin/cosparse-cli.rs:
