/root/repo/target/debug/deps/fig4-c1d9dc36985e3175.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-c1d9dc36985e3175: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
