/root/repo/target/debug/deps/baselines-7cb1916bf3698dd1.d: crates/baselines/src/lib.rs crates/baselines/src/cpu.rs crates/baselines/src/gpu.rs crates/baselines/src/ligra.rs crates/baselines/src/platform.rs crates/baselines/src/xeon.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-7cb1916bf3698dd1.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cpu.rs crates/baselines/src/gpu.rs crates/baselines/src/ligra.rs crates/baselines/src/platform.rs crates/baselines/src/xeon.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/cpu.rs:
crates/baselines/src/gpu.rs:
crates/baselines/src/ligra.rs:
crates/baselines/src/platform.rs:
crates/baselines/src/xeon.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
