/root/repo/target/debug/deps/bench-6cd8c200d565cc20.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-6cd8c200d565cc20.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
