/root/repo/target/debug/deps/baselines-3b119b9491eff74e.d: crates/baselines/src/lib.rs crates/baselines/src/cpu.rs crates/baselines/src/gpu.rs crates/baselines/src/ligra.rs crates/baselines/src/platform.rs crates/baselines/src/xeon.rs

/root/repo/target/debug/deps/baselines-3b119b9491eff74e: crates/baselines/src/lib.rs crates/baselines/src/cpu.rs crates/baselines/src/gpu.rs crates/baselines/src/ligra.rs crates/baselines/src/platform.rs crates/baselines/src/xeon.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cpu.rs:
crates/baselines/src/gpu.rs:
crates/baselines/src/ligra.rs:
crates/baselines/src/platform.rs:
crates/baselines/src/xeon.rs:
