/root/repo/target/debug/deps/fig5-2e810c9f4825ce97.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-2e810c9f4825ce97: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
