/root/repo/target/debug/deps/table2-96d49691fa80c666.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-96d49691fa80c666: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
