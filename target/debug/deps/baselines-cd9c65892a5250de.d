/root/repo/target/debug/deps/baselines-cd9c65892a5250de.d: crates/baselines/src/lib.rs crates/baselines/src/cpu.rs crates/baselines/src/gpu.rs crates/baselines/src/ligra.rs crates/baselines/src/platform.rs crates/baselines/src/xeon.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-cd9c65892a5250de.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cpu.rs crates/baselines/src/gpu.rs crates/baselines/src/ligra.rs crates/baselines/src/platform.rs crates/baselines/src/xeon.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/cpu.rs:
crates/baselines/src/gpu.rs:
crates/baselines/src/ligra.rs:
crates/baselines/src/platform.rs:
crates/baselines/src/xeon.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
