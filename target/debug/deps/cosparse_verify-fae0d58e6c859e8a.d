/root/repo/target/debug/deps/cosparse_verify-fae0d58e6c859e8a.d: crates/cosparse/src/bin/cosparse_verify.rs

/root/repo/target/debug/deps/cosparse_verify-fae0d58e6c859e8a: crates/cosparse/src/bin/cosparse_verify.rs

crates/cosparse/src/bin/cosparse_verify.rs:
