/root/repo/target/debug/deps/cosparse_verify-1daef20e40d23a9d.d: crates/cosparse/src/bin/cosparse_verify.rs Cargo.toml

/root/repo/target/debug/deps/libcosparse_verify-1daef20e40d23a9d.rmeta: crates/cosparse/src/bin/cosparse_verify.rs Cargo.toml

crates/cosparse/src/bin/cosparse_verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
