/root/repo/target/debug/deps/transmuter-c87d21b7f8ebbed7.d: crates/transmuter/src/lib.rs crates/transmuter/src/cache.rs crates/transmuter/src/config.rs crates/transmuter/src/energy.rs crates/transmuter/src/hbm.rs crates/transmuter/src/machine.rs crates/transmuter/src/memsys.rs crates/transmuter/src/op.rs crates/transmuter/src/stats.rs crates/transmuter/src/trace.rs crates/transmuter/src/verify.rs

/root/repo/target/debug/deps/libtransmuter-c87d21b7f8ebbed7.rlib: crates/transmuter/src/lib.rs crates/transmuter/src/cache.rs crates/transmuter/src/config.rs crates/transmuter/src/energy.rs crates/transmuter/src/hbm.rs crates/transmuter/src/machine.rs crates/transmuter/src/memsys.rs crates/transmuter/src/op.rs crates/transmuter/src/stats.rs crates/transmuter/src/trace.rs crates/transmuter/src/verify.rs

/root/repo/target/debug/deps/libtransmuter-c87d21b7f8ebbed7.rmeta: crates/transmuter/src/lib.rs crates/transmuter/src/cache.rs crates/transmuter/src/config.rs crates/transmuter/src/energy.rs crates/transmuter/src/hbm.rs crates/transmuter/src/machine.rs crates/transmuter/src/memsys.rs crates/transmuter/src/op.rs crates/transmuter/src/stats.rs crates/transmuter/src/trace.rs crates/transmuter/src/verify.rs

crates/transmuter/src/lib.rs:
crates/transmuter/src/cache.rs:
crates/transmuter/src/config.rs:
crates/transmuter/src/energy.rs:
crates/transmuter/src/hbm.rs:
crates/transmuter/src/machine.rs:
crates/transmuter/src/memsys.rs:
crates/transmuter/src/op.rs:
crates/transmuter/src/stats.rs:
crates/transmuter/src/trace.rs:
crates/transmuter/src/verify.rs:
