/root/repo/target/debug/deps/graph-9f31013b61117226.d: crates/graph/src/lib.rs crates/graph/src/bc.rs crates/graph/src/bfs.rs crates/graph/src/cc.rs crates/graph/src/cf.rs crates/graph/src/engine.rs crates/graph/src/kbfs.rs crates/graph/src/pagerank.rs crates/graph/src/sssp.rs

/root/repo/target/debug/deps/libgraph-9f31013b61117226.rlib: crates/graph/src/lib.rs crates/graph/src/bc.rs crates/graph/src/bfs.rs crates/graph/src/cc.rs crates/graph/src/cf.rs crates/graph/src/engine.rs crates/graph/src/kbfs.rs crates/graph/src/pagerank.rs crates/graph/src/sssp.rs

/root/repo/target/debug/deps/libgraph-9f31013b61117226.rmeta: crates/graph/src/lib.rs crates/graph/src/bc.rs crates/graph/src/bfs.rs crates/graph/src/cc.rs crates/graph/src/cf.rs crates/graph/src/engine.rs crates/graph/src/kbfs.rs crates/graph/src/pagerank.rs crates/graph/src/sssp.rs

crates/graph/src/lib.rs:
crates/graph/src/bc.rs:
crates/graph/src/bfs.rs:
crates/graph/src/cc.rs:
crates/graph/src/cf.rs:
crates/graph/src/engine.rs:
crates/graph/src/kbfs.rs:
crates/graph/src/pagerank.rs:
crates/graph/src/sssp.rs:
