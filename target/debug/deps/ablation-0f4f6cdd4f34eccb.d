/root/repo/target/debug/deps/ablation-0f4f6cdd4f34eccb.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-0f4f6cdd4f34eccb: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
