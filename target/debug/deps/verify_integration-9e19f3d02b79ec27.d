/root/repo/target/debug/deps/verify_integration-9e19f3d02b79ec27.d: crates/cosparse/tests/verify_integration.rs Cargo.toml

/root/repo/target/debug/deps/libverify_integration-9e19f3d02b79ec27.rmeta: crates/cosparse/tests/verify_integration.rs Cargo.toml

crates/cosparse/tests/verify_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
