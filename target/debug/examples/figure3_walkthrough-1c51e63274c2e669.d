/root/repo/target/debug/examples/figure3_walkthrough-1c51e63274c2e669.d: examples/figure3_walkthrough.rs Cargo.toml

/root/repo/target/debug/examples/libfigure3_walkthrough-1c51e63274c2e669.rmeta: examples/figure3_walkthrough.rs Cargo.toml

examples/figure3_walkthrough.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
