/root/repo/target/debug/examples/pagerank_web-5b73585c10352c1c.d: examples/pagerank_web.rs Cargo.toml

/root/repo/target/debug/examples/libpagerank_web-5b73585c10352c1c.rmeta: examples/pagerank_web.rs Cargo.toml

examples/pagerank_web.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
