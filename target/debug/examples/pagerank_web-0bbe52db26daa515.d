/root/repo/target/debug/examples/pagerank_web-0bbe52db26daa515.d: examples/pagerank_web.rs

/root/repo/target/debug/examples/pagerank_web-0bbe52db26daa515: examples/pagerank_web.rs

examples/pagerank_web.rs:
