/root/repo/target/debug/examples/bfs_frontier-3520665a4e862202.d: examples/bfs_frontier.rs

/root/repo/target/debug/examples/bfs_frontier-3520665a4e862202: examples/bfs_frontier.rs

examples/bfs_frontier.rs:
