/root/repo/target/debug/examples/figure3_walkthrough-e8ee30714334c0a5.d: examples/figure3_walkthrough.rs

/root/repo/target/debug/examples/figure3_walkthrough-e8ee30714334c0a5: examples/figure3_walkthrough.rs

examples/figure3_walkthrough.rs:
