/root/repo/target/debug/examples/sssp_case_study-09775971bc3bf159.d: examples/sssp_case_study.rs Cargo.toml

/root/repo/target/debug/examples/libsssp_case_study-09775971bc3bf159.rmeta: examples/sssp_case_study.rs Cargo.toml

examples/sssp_case_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
