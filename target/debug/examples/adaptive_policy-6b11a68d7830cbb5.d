/root/repo/target/debug/examples/adaptive_policy-6b11a68d7830cbb5.d: examples/adaptive_policy.rs

/root/repo/target/debug/examples/adaptive_policy-6b11a68d7830cbb5: examples/adaptive_policy.rs

examples/adaptive_policy.rs:
