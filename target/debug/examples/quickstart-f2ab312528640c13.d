/root/repo/target/debug/examples/quickstart-f2ab312528640c13.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f2ab312528640c13: examples/quickstart.rs

examples/quickstart.rs:
