/root/repo/target/debug/examples/bfs_frontier-24b2c7d114830149.d: examples/bfs_frontier.rs Cargo.toml

/root/repo/target/debug/examples/libbfs_frontier-24b2c7d114830149.rmeta: examples/bfs_frontier.rs Cargo.toml

examples/bfs_frontier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
