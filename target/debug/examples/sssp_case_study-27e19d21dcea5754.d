/root/repo/target/debug/examples/sssp_case_study-27e19d21dcea5754.d: examples/sssp_case_study.rs

/root/repo/target/debug/examples/sssp_case_study-27e19d21dcea5754: examples/sssp_case_study.rs

examples/sssp_case_study.rs:
