/root/repo/target/release/deps/graph-a44179dae218e64d.d: crates/graph/src/lib.rs crates/graph/src/bc.rs crates/graph/src/bfs.rs crates/graph/src/cc.rs crates/graph/src/cf.rs crates/graph/src/engine.rs crates/graph/src/kbfs.rs crates/graph/src/pagerank.rs crates/graph/src/sssp.rs

/root/repo/target/release/deps/libgraph-a44179dae218e64d.rlib: crates/graph/src/lib.rs crates/graph/src/bc.rs crates/graph/src/bfs.rs crates/graph/src/cc.rs crates/graph/src/cf.rs crates/graph/src/engine.rs crates/graph/src/kbfs.rs crates/graph/src/pagerank.rs crates/graph/src/sssp.rs

/root/repo/target/release/deps/libgraph-a44179dae218e64d.rmeta: crates/graph/src/lib.rs crates/graph/src/bc.rs crates/graph/src/bfs.rs crates/graph/src/cc.rs crates/graph/src/cf.rs crates/graph/src/engine.rs crates/graph/src/kbfs.rs crates/graph/src/pagerank.rs crates/graph/src/sssp.rs

crates/graph/src/lib.rs:
crates/graph/src/bc.rs:
crates/graph/src/bfs.rs:
crates/graph/src/cc.rs:
crates/graph/src/cf.rs:
crates/graph/src/engine.rs:
crates/graph/src/kbfs.rs:
crates/graph/src/pagerank.rs:
crates/graph/src/sssp.rs:
