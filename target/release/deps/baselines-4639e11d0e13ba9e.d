/root/repo/target/release/deps/baselines-4639e11d0e13ba9e.d: crates/baselines/src/lib.rs crates/baselines/src/cpu.rs crates/baselines/src/gpu.rs crates/baselines/src/ligra.rs crates/baselines/src/platform.rs crates/baselines/src/xeon.rs

/root/repo/target/release/deps/libbaselines-4639e11d0e13ba9e.rlib: crates/baselines/src/lib.rs crates/baselines/src/cpu.rs crates/baselines/src/gpu.rs crates/baselines/src/ligra.rs crates/baselines/src/platform.rs crates/baselines/src/xeon.rs

/root/repo/target/release/deps/libbaselines-4639e11d0e13ba9e.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cpu.rs crates/baselines/src/gpu.rs crates/baselines/src/ligra.rs crates/baselines/src/platform.rs crates/baselines/src/xeon.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cpu.rs:
crates/baselines/src/gpu.rs:
crates/baselines/src/ligra.rs:
crates/baselines/src/platform.rs:
crates/baselines/src/xeon.rs:
