/root/repo/target/release/deps/cosparse_verify-45e5ab38324ffe8f.d: crates/cosparse/src/bin/cosparse_verify.rs

/root/repo/target/release/deps/cosparse_verify-45e5ab38324ffe8f: crates/cosparse/src/bin/cosparse_verify.rs

crates/cosparse/src/bin/cosparse_verify.rs:
