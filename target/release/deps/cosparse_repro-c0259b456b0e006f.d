/root/repo/target/release/deps/cosparse_repro-c0259b456b0e006f.d: src/lib.rs

/root/repo/target/release/deps/libcosparse_repro-c0259b456b0e006f.rlib: src/lib.rs

/root/repo/target/release/deps/libcosparse_repro-c0259b456b0e006f.rmeta: src/lib.rs

src/lib.rs:
