/root/repo/target/release/deps/cosparse_cli-a5f0059c4447ddd3.d: src/bin/cosparse-cli.rs

/root/repo/target/release/deps/cosparse_cli-a5f0059c4447ddd3: src/bin/cosparse-cli.rs

src/bin/cosparse-cli.rs:
