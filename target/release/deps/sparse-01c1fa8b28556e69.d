/root/repo/target/release/deps/sparse-01c1fa8b28556e69.d: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/csc.rs crates/sparse/src/csr.rs crates/sparse/src/error.rs crates/sparse/src/vector.rs crates/sparse/src/generate/mod.rs crates/sparse/src/generate/barabasi.rs crates/sparse/src/generate/power_law.rs crates/sparse/src/generate/rmat.rs crates/sparse/src/generate/suite.rs crates/sparse/src/generate/uniform.rs crates/sparse/src/generate/vectors.rs crates/sparse/src/io.rs crates/sparse/src/partition.rs crates/sparse/src/stats.rs

/root/repo/target/release/deps/libsparse-01c1fa8b28556e69.rlib: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/csc.rs crates/sparse/src/csr.rs crates/sparse/src/error.rs crates/sparse/src/vector.rs crates/sparse/src/generate/mod.rs crates/sparse/src/generate/barabasi.rs crates/sparse/src/generate/power_law.rs crates/sparse/src/generate/rmat.rs crates/sparse/src/generate/suite.rs crates/sparse/src/generate/uniform.rs crates/sparse/src/generate/vectors.rs crates/sparse/src/io.rs crates/sparse/src/partition.rs crates/sparse/src/stats.rs

/root/repo/target/release/deps/libsparse-01c1fa8b28556e69.rmeta: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/csc.rs crates/sparse/src/csr.rs crates/sparse/src/error.rs crates/sparse/src/vector.rs crates/sparse/src/generate/mod.rs crates/sparse/src/generate/barabasi.rs crates/sparse/src/generate/power_law.rs crates/sparse/src/generate/rmat.rs crates/sparse/src/generate/suite.rs crates/sparse/src/generate/uniform.rs crates/sparse/src/generate/vectors.rs crates/sparse/src/io.rs crates/sparse/src/partition.rs crates/sparse/src/stats.rs

crates/sparse/src/lib.rs:
crates/sparse/src/coo.rs:
crates/sparse/src/csc.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/error.rs:
crates/sparse/src/vector.rs:
crates/sparse/src/generate/mod.rs:
crates/sparse/src/generate/barabasi.rs:
crates/sparse/src/generate/power_law.rs:
crates/sparse/src/generate/rmat.rs:
crates/sparse/src/generate/suite.rs:
crates/sparse/src/generate/uniform.rs:
crates/sparse/src/generate/vectors.rs:
crates/sparse/src/io.rs:
crates/sparse/src/partition.rs:
crates/sparse/src/stats.rs:
