//! Quickstart: one reconfigured SpMV, end to end.
//!
//! Builds a random graph, runs a sparse-frontier and a dense-frontier
//! SpMV through the CoSPARSE runtime, and prints what the decision tree
//! chose and what it cost on the simulated 4x8 machine.
//!
//! Run with: `cargo run --release --example quickstart`

use cosparse::Policy;
use cosparse_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 64k-vertex, 1M-edge uniformly random graph.
    let n = 1 << 16;
    let matrix = sparse::generate::uniform(n, n, 1_000_000, 42)?;
    println!(
        "matrix: {}x{}, {} nonzeros (density {:.1e})",
        matrix.rows(),
        matrix.cols(),
        matrix.nnz(),
        matrix.density()
    );

    // A 4x8 system: 4 tiles of 8 PEs, paper Table II microarchitecture.
    let machine = Geometry::new(4, 8).machine();
    let mut runtime = CoSparse::new(&matrix, machine);

    // Sparse frontier (0.5% active): the decision tree should pick the
    // outer-product dataflow with private memories.
    let frontier = Frontier::Sparse(sparse::generate::random_sparse_vector(n, 0.005, 7)?);
    let out = runtime.spmv(&frontier)?;
    let reconfigured_cycles = out.report.cycles;
    println!(
        "sparse frontier (0.5%): chose {}/{} — {} cycles, {:.2e} J, result nnz {}",
        out.software,
        out.hardware,
        out.report.cycles,
        out.report.joules(),
        match &out.result {
            Frontier::Sparse(v) => v.nnz(),
            Frontier::Dense(v) => v.iter().filter(|x| **x != 0.0).count(),
        }
    );

    // Dense frontier: inner product.
    let dense = Frontier::Dense(sparse::generate::random_dense_vector(n, 9));
    let out = runtime.spmv(&dense)?;
    println!(
        "dense frontier (100%):  chose {}/{} — {} cycles, {:.2e} J",
        out.software,
        out.hardware,
        out.report.cycles,
        out.report.joules()
    );

    // Compare against a pinned configuration to see the benefit.
    runtime.set_policy(Policy::Fixed(SwConfig::InnerProduct, HwConfig::Sc));
    let frontier =
        Frontier::Dense(sparse::generate::random_sparse_vector(n, 0.005, 7)?.to_dense(0.0));
    let fixed = runtime.spmv(&frontier)?;
    println!(
        "same 0.5% frontier forced through IP/SC: {} cycles ({:.0}x slower than reconfigured)",
        fixed.report.cycles,
        fixed.report.cycles as f64 / reconfigured_cycles.max(1) as f64
    );
    Ok(())
}
