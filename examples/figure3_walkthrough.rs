//! The paper's Figure 3, animated: its 6x6 example matrix run through
//! both dataflows on a 2x2 system, with the simulator's execution trace
//! showing exactly the steps the figure draws —
//!
//! * IP on SCS: ① load matrix elements sequentially, ② load the
//!   corresponding vector element (from the shared SPM), ③ multiply and
//!   accumulate into the output vector;
//! * OP on PS: ① build the sorted list of column heads (in the private
//!   SPM), ② pop the smallest index and load the column's next element,
//!   ③ merge equal indices and hand the element to the LCP, ④ the LCP
//!   writes results back to main memory.
//!
//! Run with: `cargo run --release --example figure3_walkthrough`

use cosparse::{CoSparse, Frontier, HwConfig, Policy, SwConfig};
use sparse::{CooMatrix, SparseVector};
use transmuter::{Geometry, Machine, MicroArch, Op, TraceConfig};

fn op_name(op: Op) -> String {
    match op {
        Op::Compute(n) => format!("compute x{n}"),
        Op::Load(a) => format!("load  {a:#x}"),
        Op::Store(a) => format!("store {a:#x}"),
        Op::SpmLoad(o) => format!("spm load  +{o}"),
        Op::SpmStore(o) => format!("spm store +{o}"),
        Op::TileBarrier => "tile barrier".to_string(),
        Op::GlobalBarrier => "global barrier".to_string(),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 3's matrix (1s marking nonzeros, read off the figure).
    let matrix = CooMatrix::from_triplets(
        6,
        6,
        vec![
            (0, 5, 1.0),
            (1, 0, 1.0),
            (1, 5, 1.0),
            (2, 0, 1.0),
            (2, 5, 1.0),
            (3, 0, 1.0),
            (3, 5, 1.0),
            (4, 0, 1.0),
            (4, 2, 1.0),
            (4, 3, 1.0),
            (4, 5, 1.0),
            (5, 0, 1.0),
            (5, 3, 1.0),
            (5, 4, 1.0),
        ],
    )?;
    // Figure 3's vector: x = [1, 0, 0, 1, 1, 1].
    let x = SparseVector::from_entries(6, vec![(0u32, 1.0f32), (3, 1.0), (4, 1.0), (5, 1.0)])?;
    let geometry = Geometry::new(2, 2);

    for (sw, hw) in [
        (SwConfig::InnerProduct, HwConfig::Scs),
        (SwConfig::OuterProduct, HwConfig::Ps),
    ] {
        println!("=== {} on {} (2x2 system) ===", sw, hw);
        let mut machine = Machine::new(geometry, MicroArch::paper());
        machine.set_trace(Some(TraceConfig::default()));
        let mut rt = CoSparse::new(&matrix, machine);
        rt.set_policy(Policy::Fixed(sw, hw));
        let frontier = match sw {
            SwConfig::InnerProduct => Frontier::Dense(x.to_dense(0.0)),
            SwConfig::OuterProduct => Frontier::Sparse(x.clone()),
        };
        let out = rt.spmv(&frontier)?;
        let result = match out.result {
            Frontier::Dense(v) => v.into_inner(),
            Frontier::Sparse(v) => v.to_dense(0.0).into_inner(),
        };
        println!("y = {result:?}  ({} cycles)", out.report.cycles);
        // Note: taking the trace needs mutable access to the machine,
        // which CoSparse owns — so re-run the kernel standalone instead,
        // tracing PE (0,0) and the tile-0 LCP.
        println!("(trace of the same kernel, worker-by-worker)");
        let mut machine = Machine::new(geometry, MicroArch::paper());
        machine.reconfigure(hw);
        machine.set_trace(Some(TraceConfig {
            workers: Some(vec![0, 4]),
            max_events: 40,
        }));
        let layout = cosparse::Layout::new(6, 6, matrix.nnz(), geometry, 1);
        let streams = match sw {
            SwConfig::InnerProduct => {
                let partition = cosparse::balance::ip_partitions(
                    &matrix.row_counts(),
                    geometry,
                    Default::default(),
                );
                let vblocks = sparse::partition::VBlocks::whole(6);
                cosparse::kernels::ip::streams(
                    &matrix,
                    geometry,
                    cosparse::kernels::ip::IpParams {
                        layout: &layout,
                        partition: &partition,
                        vblocks: &vblocks,
                        use_spm: true,
                        active: None,
                        profile: cosparse::OpProfile::scalar(),
                    },
                )
            }
            SwConfig::OuterProduct => {
                let csc = sparse::CscMatrix::from(&matrix);
                let tile_parts = cosparse::balance::op_tile_partitions(
                    &matrix.row_counts(),
                    geometry,
                    Default::default(),
                );
                let active: Vec<u32> = x.iter().map(|(i, _)| i).collect();
                cosparse::kernels::op::streams(
                    &csc,
                    geometry,
                    cosparse::kernels::op::OpParams {
                        layout: &layout,
                        tile_parts: &tile_parts,
                        frontier: &active,
                        heap_in_spm: true,
                        spm_node_cap: 512,
                        profile: cosparse::OpProfile::scalar(),
                    },
                )
            }
        };
        let _ = machine.run(streams)?;
        for e in machine.take_trace() {
            let who = if e.worker == 4 { "LCP " } else { "PE0 " };
            println!("  cyc {:>4}  {who} {}", e.cycle, op_name(e.op));
        }
        println!();
    }
    println!(
        "both dataflows computed the same product — the figure's point: the\n\
         access patterns differ (sequential matrix + SPM vector vs heap merge\n\
         + LCP write-back), the math does not."
    );
    Ok(())
}
