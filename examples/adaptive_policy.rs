//! The adaptive-policy extension: the decision tree's thresholds come
//! from offline calibration, and at small scales (or on unusual
//! matrices) they can misfire near the IP/OP crossover. The adaptive
//! policy probes alternatives near the boundary and converges on the
//! empirically best configuration.
//!
//! This example runs the same density sweep under the plain tree, the
//! adaptive policy, and an oracle, and prints total costs.
//!
//! Run with: `cargo run --release --example adaptive_policy`

use cosparse::Policy;
use cosparse_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1 << 13;
    let matrix = sparse::generate::uniform(n, n, 120_000, 6)?;
    // Densities straddling the crossover; each visited repeatedly, as an
    // iterative algorithm would.
    let schedule: Vec<f64> = std::iter::repeat_n([0.01, 0.03, 0.06, 0.1], 6)
        .flatten()
        .collect();
    println!(
        "density schedule of {} SpMVs on a {}-vertex graph (2x8 system)\n",
        schedule.len(),
        n
    );

    let run_policy = |policy: Policy| -> Result<u64, Box<dyn std::error::Error>> {
        let mut rt = CoSparse::new(&matrix, Geometry::new(2, 8).machine());
        rt.set_policy(policy);
        let mut total = 0;
        for (i, &d) in schedule.iter().enumerate() {
            let sv = sparse::generate::random_sparse_vector(n, d, 40 + i as u64)?;
            total += rt.spmv(&Frontier::Sparse(sv))?.report.cycles;
        }
        Ok(total)
    };

    let tree = run_policy(Policy::Auto)?;
    let adaptive = run_policy(Policy::Adaptive)?;

    // Oracle: best fixed configuration per density, measured separately.
    let mut oracle = 0u64;
    for (i, &d) in schedule.iter().enumerate() {
        let sv = sparse::generate::random_sparse_vector(n, d, 40 + i as u64)?;
        let mut best = u64::MAX;
        for (sw, hw) in [
            (SwConfig::InnerProduct, HwConfig::Sc),
            (SwConfig::InnerProduct, HwConfig::Scs),
            (SwConfig::OuterProduct, HwConfig::Pc),
            (SwConfig::OuterProduct, HwConfig::Ps),
        ] {
            let mut rt = CoSparse::new(&matrix, Geometry::new(2, 8).machine());
            rt.set_policy(Policy::Fixed(sw, hw));
            let f = match sw {
                SwConfig::OuterProduct => Frontier::Sparse(sv.clone()),
                SwConfig::InnerProduct => Frontier::Dense(sv.to_dense(0.0)),
            };
            best = best.min(rt.spmv(&f)?.report.cycles);
        }
        oracle += best;
    }

    println!("decision tree (paper thresholds): {tree:>12} cycles");
    println!(
        "adaptive (tree + online probing):  {adaptive:>12} cycles ({:+.1}% vs tree)",
        (1.0 - adaptive as f64 / tree as f64) * 100.0
    );
    println!("oracle (best fixed per call):      {oracle:>12} cycles");
    println!(
        "\nadaptive closes {:.0}% of the tree→oracle gap",
        if tree > oracle {
            100.0 * (tree.saturating_sub(adaptive)) as f64 / (tree - oracle) as f64
        } else {
            0.0
        }
    );
    Ok(())
}
