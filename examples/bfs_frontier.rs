//! BFS with a side-by-side Ligra comparison: the same traversal run on
//! the CoSPARSE simulator and on the Ligra baseline engine, showing how
//! both frameworks switch strategy as the frontier evolves (CoSPARSE
//! between dataflows + memory configs, Ligra between push and pull).
//!
//! Run with: `cargo run --release --example bfs_frontier`

use baselines::ligra::{Ligra, Mode};
use baselines::xeon::XeonModel;
use cosparse_repro::prelude::*;
use graph::{bfs::Bfs, Engine};
use transmuter::{Machine, MicroArch};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let adjacency = sparse::generate::rmat(14, 150_000, Default::default(), 11)?;
    let root = adjacency
        .row_counts()
        .iter()
        .enumerate()
        .max_by_key(|&(_, c)| *c)
        .map(|(v, _)| v as u32)
        .unwrap_or(0);
    println!(
        "bfs from vertex {root} on a {}-vertex, {}-edge R-MAT graph\n",
        adjacency.rows(),
        adjacency.nnz()
    );

    // CoSPARSE on an 8x8 simulated system.
    let mut engine = Engine::new(
        &adjacency,
        Machine::new(Geometry::new(8, 8), MicroArch::paper()),
    );
    let ours = engine.run(&Bfs::new(root))?;

    // Ligra on the modeled 48-core Xeon.
    let ligra = Ligra::new(&adjacency, XeonModel::e7_4860());
    let theirs = ligra.bfs(root);

    println!("iter  CoSPARSE config  density  |  Ligra mode  edges scanned");
    for i in 0..ours.iterations.len().max(theirs.iterations.len()) {
        let left = ours
            .iterations
            .get(i)
            .map(|it| {
                format!(
                    "{:<15} {:>6.2}%",
                    format!("{}/{}", it.software, it.hardware),
                    it.frontier_density * 100.0
                )
            })
            .unwrap_or_else(|| format!("{:<15} {:>7}", "-", "-"));
        let right = theirs
            .iterations
            .get(i)
            .map(|it| {
                format!(
                    "{:<5} {:>12}",
                    match it.mode {
                        Mode::Push => "push",
                        Mode::Pull => "pull",
                    },
                    it.edges_scanned
                )
            })
            .unwrap_or_else(|| format!("{:<5} {:>12}", "-", "-"));
        println!("{i:>4}  {left}  |  {right}");
    }

    let reached = ours
        .state
        .iter()
        .filter(|p| **p != graph::bfs::UNVISITED)
        .count();
    println!(
        "\nCoSPARSE: reached {reached} vertices, {:.3e} s simulated, {:.2e} J",
        ours.total_seconds(),
        ours.total_joules()
    );
    let t = theirs.total();
    println!(
        "Ligra:    {:.3e} s modeled, {:.2e} J — CoSPARSE speedup {:.2}x, energy gain {:.0}x",
        t.seconds,
        t.joules,
        t.seconds / ours.total_seconds().max(1e-12),
        t.joules / ours.total_joules().max(1e-12)
    );
    Ok(())
}
