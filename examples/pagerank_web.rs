//! PageRank over a power-law "web" graph, with a cross-check against
//! the host reference and a look at the energy breakdown — the
//! always-dense workload of the paper's Table I.
//!
//! Run with: `cargo run --release --example pagerank_web`

use cosparse_repro::prelude::*;
use graph::{
    pagerank::{self, PageRank},
    Engine,
};
use sparse::CsrMatrix;
use transmuter::{Machine, MicroArch};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Power-law graph: a few hub pages, a long tail.
    let n = 20_000;
    let adjacency = sparse::generate::power_law(n, n, 200_000, 1.0, 77)?;
    println!(
        "pagerank on a {}-vertex power-law graph ({} edges, max out-degree {})",
        n,
        adjacency.nnz(),
        adjacency.row_counts().into_iter().max().unwrap_or(0)
    );

    let rounds = 10;
    let mut engine = Engine::new(
        &adjacency,
        Machine::new(Geometry::new(4, 8), MicroArch::paper()),
    );
    let run = engine.run(&PageRank::new(0.15, rounds))?;

    // Validate against the host power iteration.
    let want = pagerank::reference(&CsrMatrix::from(&adjacency), 0.15, rounds);
    let max_err = run
        .state
        .iter()
        .zip(&want)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("max |simulated - reference| = {max_err:.2e} (should be ~1e-6)");

    // Top pages.
    let mut ranked: Vec<(usize, f32)> = run.state.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("ranks are finite"));
    println!("\ntop 5 pages by rank:");
    for (v, r) in ranked.iter().take(5) {
        println!("  vertex {v:>6}: {r:.6}");
    }

    // All iterations should run dense on the inner product.
    assert!(run
        .iterations
        .iter()
        .all(|i| i.software == cosparse::SwConfig::InnerProduct));
    let last = run.iterations.last().expect("ran iterations");
    println!(
        "\n{} dense IP iterations, total {} cycles; last-iteration energy breakdown:",
        run.iterations.len(),
        run.total_cycles()
    );
    let e = &last.report.energy;
    println!(
        "  pe {:.1e} J | l1 {:.1e} J | l2 {:.1e} J | xbar {:.1e} J | hbm {:.1e} J | static {:.1e} J",
        e.pe, e.l1, e.l2, e.xbar, e.hbm, e.static_j
    );
    Ok(())
}
