//! The paper's Figure 9 case study in miniature: SSSP on a social-style
//! graph, watching the frontier density evolve and the runtime
//! re-decide the software/hardware configuration every iteration.
//!
//! Run with: `cargo run --release --example sssp_case_study`

use cosparse_repro::prelude::*;
use graph::{sssp::Sssp, Engine};
use transmuter::{Machine, MicroArch};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An R-MAT social-network analogue: 16k vertices, ~120k edges.
    let adjacency = sparse::generate::rmat(14, 120_000, Default::default(), 2026)?;
    let source = adjacency
        .row_counts()
        .iter()
        .enumerate()
        .max_by_key(|&(_, c)| *c)
        .map(|(v, _)| v as u32)
        .unwrap_or(0);
    println!(
        "sssp from vertex {source} on a {}-vertex, {}-edge R-MAT graph (8x8 system)\n",
        adjacency.rows(),
        adjacency.nnz()
    );

    let mut engine = Engine::new(
        &adjacency,
        Machine::new(Geometry::new(8, 8), MicroArch::paper()),
    );
    let run = engine.run(&Sssp::new(source))?;

    println!("iter  density  config   cycles      updates");
    for it in &run.iterations {
        println!(
            "{:>4}  {:>6.2}%  {:<7}  {:>10}  {:>7}",
            it.iteration,
            it.frontier_density * 100.0,
            format!("{}/{}", it.software, it.hardware),
            it.report.cycles,
            it.updates
        );
    }
    let reached = run.state.iter().filter(|d| d.is_finite()).count();
    println!(
        "\nreached {reached}/{} vertices in {} iterations; total {} cycles, {:.2e} J",
        engine.vertices(),
        run.iterations.len(),
        run.total_cycles(),
        run.total_joules()
    );

    // Sanity: the frontier should rise and fall (the reconfiguration
    // opportunity the paper exploits).
    let densities: Vec<f64> = run.iterations.iter().map(|i| i.frontier_density).collect();
    let peak = densities.iter().cloned().fold(0.0, f64::max);
    println!(
        "frontier density peaked at {:.1}% (started at {:.3}%)",
        peak * 100.0,
        densities.first().unwrap_or(&0.0) * 100.0
    );
    Ok(())
}
