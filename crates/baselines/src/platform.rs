//! Shared types for the baseline platform models.
//!
//! The paper measures SpMV against MKL on an i7-6700K and cuSPARSE on a
//! V100, and graph algorithms against Ligra on a 48-core Xeon E7-4860.
//! None of those are available offline, so the baselines are analytical
//! roofline-style models driven by the same workload statistics the
//! simulator sees (DESIGN.md §2 explains why this preserves the
//! paper's comparison shapes). Power numbers are sustained package
//! power under load, not TDP.

/// Cost of one baseline execution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BaselineCost {
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Energy in joules.
    pub joules: f64,
}

impl BaselineCost {
    /// Builds a cost from time and sustained power.
    pub fn from_power(seconds: f64, watts: f64) -> Self {
        BaselineCost {
            seconds,
            joules: seconds * watts,
        }
    }

    /// Field-wise sum (for multi-iteration totals).
    pub fn accumulate(&mut self, other: BaselineCost) {
        self.seconds += other.seconds;
        self.joules += other.joules;
    }

    /// Average power in watts.
    pub fn watts(&self) -> f64 {
        if self.seconds > 0.0 {
            self.joules / self.seconds
        } else {
            0.0
        }
    }
}

/// Roofline helper: execution time of a phase moving `bytes` at
/// `bw_bytes_per_s` while executing `flops` at `flops_per_s`, plus a
/// fixed `overhead_s`.
pub fn roofline_seconds(
    bytes: f64,
    bw_bytes_per_s: f64,
    flops: f64,
    flops_per_s: f64,
    overhead_s: f64,
) -> f64 {
    let mem = bytes / bw_bytes_per_s.max(1.0);
    let cmp = flops / flops_per_s.max(1.0);
    mem.max(cmp) + overhead_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_accumulates() {
        let mut a = BaselineCost::from_power(1.0, 50.0);
        a.accumulate(BaselineCost::from_power(2.0, 50.0));
        assert_eq!(a.seconds, 3.0);
        assert_eq!(a.joules, 150.0);
        assert!((a.watts() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn roofline_takes_the_max() {
        // Memory-bound case.
        let t = roofline_seconds(1e9, 1e10, 1e6, 1e12, 0.0);
        assert!((t - 0.1).abs() < 1e-9);
        // Compute-bound case.
        let t = roofline_seconds(1e3, 1e10, 1e12, 1e12, 0.0);
        assert!((t - 1.0).abs() < 1e-6);
        // Overhead adds.
        let t = roofline_seconds(0.0, 1e10, 0.0, 1e12, 0.5);
        assert!((t - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_cost_watts_is_zero() {
        assert_eq!(BaselineCost::default().watts(), 0.0);
    }
}
