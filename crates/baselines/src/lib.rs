//! Comparison baselines for the CoSPARSE reproduction.
//!
//! The paper evaluates against three platforms that are unavailable
//! offline; each is replaced by a model that preserves the comparison's
//! *shape* (see DESIGN.md §2):
//!
//! * [`cpu::CpuModel`] — MKL-like CSR SpMV on an i7-6700K (Fig 8);
//! * [`gpu::GpuModel`] — cuSPARSE-like CSR SpMV on a V100 (Fig 8);
//! * [`ligra::Ligra`] — a *functional* Ligra push/pull engine (real
//!   results, real per-iteration edge counts, the `|E|/20` direction
//!   threshold) timed by [`xeon::XeonModel`] (Fig 10).
//!
//! # Example
//!
//! ```
//! use baselines::ligra::Ligra;
//! use baselines::xeon::XeonModel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let adj = sparse::generate::rmat(10, 8_000, Default::default(), 42)?;
//! let ligra = Ligra::new(&adj, XeonModel::e7_4860());
//! let run = ligra.bfs(0);
//! println!("ligra bfs: {} iterations, {:.3e} s", run.iterations.len(), run.total().seconds);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cpu;
pub mod gpu;
pub mod ligra;
pub mod platform;
pub mod xeon;

pub use platform::BaselineCost;
