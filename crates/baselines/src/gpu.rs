//! cuSPARSE-like CSR SpMV on a datacenter GPU (paper Fig 8's "GPU":
//! NVIDIA Tesla V100, cuSPARSE v8.0).
//!
//! §IV-C.1 explains why the GPU loses to the CPU here despite ~30× the
//! bandwidth: irregular low-locality gathers, SIMT divergence, memory
//! dependence stalls (32% of stalls, growing with density) and
//! synchronization/fetch overhead hold the achieved bandwidth to
//! 12–71% and performance to <0.006% of peak. The model encodes those
//! observations directly.

use crate::platform::{roofline_seconds, BaselineCost};

/// Analytical model of a GPU running a vendor SpMV.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuModel {
    /// Peak memory bandwidth (bytes/s).
    pub mem_bw: f64,
    /// Achieved-bandwidth fraction at the sparsest inputs.
    pub bw_util_min: f64,
    /// Achieved-bandwidth fraction at fully dense vectors.
    pub bw_util_max: f64,
    /// Divergence/dependence multiplier on the gather traffic.
    pub divergence_penalty: f64,
    /// Kernel-launch + synchronization overhead per call (seconds).
    pub launch_overhead_s: f64,
    /// Sustained flop rate on irregular SpMV (flops/s).
    pub flops: f64,
    /// Sustained board power under load (watts).
    pub power_w: f64,
}

impl GpuModel {
    /// The paper's GPU: Tesla V100 (900 GB/s HBM2, 250 W board).
    pub fn v100() -> Self {
        GpuModel {
            mem_bw: 900.0e9,
            bw_util_min: 0.12,
            bw_util_max: 0.5,
            divergence_penalty: 4.0,
            launch_overhead_s: 20.0e-6,
            flops: 80.0e9,
            power_w: 180.0,
        }
    }

    /// Cost of one `y = A * x`; like MKL, cuSPARSE's CSR kernel touches
    /// every stored nonzero regardless of `x`'s sparsity.
    pub fn spmv(&self, rows: usize, cols: usize, nnz: usize, vector_density: f64) -> BaselineCost {
        let structure_bytes = nnz as f64 * 8.0 + (rows as f64 + 1.0) * 4.0 + rows as f64 * 4.0;
        // Uncoalesced vector gathers: a 32 B sector per nonzero, inflated
        // by divergence replay.
        let gather_bytes = nnz as f64 * 32.0 * self.divergence_penalty + cols as f64 * 4.0;
        // Achieved bandwidth falls as the vector densifies (the paper's
        // memory-dependence stalls grow with density).
        let util = self.bw_util_max
            - (self.bw_util_max - self.bw_util_min) * vector_density.clamp(0.0, 1.0);
        let flops = nnz as f64 * 2.0;
        let seconds = roofline_seconds(
            structure_bytes + gather_bytes,
            self.mem_bw * util.clamp(self.bw_util_min, self.bw_util_max),
            flops,
            self.flops,
            self.launch_overhead_s,
        );
        BaselineCost::from_power(seconds, self.power_w)
    }
}

impl Default for GpuModel {
    fn default() -> Self {
        GpuModel::v100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuModel;

    #[test]
    fn gpu_loses_to_cpu_on_irregular_spmv() {
        // §IV-C.1: "The CPU shows better performance than the GPU".
        let gpu = GpuModel::v100();
        let cpu = CpuModel::i7_6700k();
        for &(n, nnz) in &[(1 << 17, 2_000_000usize), (1 << 20, 4_000_000)] {
            let g = gpu.spmv(n, n, nnz, 1.0);
            let c = cpu.spmv(n, n, nnz, 1.0);
            assert!(
                g.seconds > c.seconds,
                "GPU {}s should trail CPU {}s at n={n}",
                g.seconds,
                c.seconds
            );
        }
    }

    #[test]
    fn denser_vectors_hurt_achieved_bandwidth() {
        let gpu = GpuModel::v100();
        let sparse = gpu.spmv(1 << 20, 1 << 20, 4_000_000, 0.001);
        let dense = gpu.spmv(1 << 20, 1 << 20, 4_000_000, 1.0);
        assert!(dense.seconds > sparse.seconds);
    }

    #[test]
    fn launch_overhead_floors_tiny_calls() {
        let gpu = GpuModel::v100();
        let tiny = gpu.spmv(64, 64, 100, 1.0);
        assert!(tiny.seconds >= 20.0e-6);
    }

    #[test]
    fn gpu_burns_more_energy_than_cpu() {
        let gpu = GpuModel::v100().spmv(1 << 20, 1 << 20, 4_000_000, 1.0);
        let cpu = CpuModel::i7_6700k().spmv(1 << 20, 1 << 20, 4_000_000, 1.0);
        assert!(gpu.joules > cpu.joules);
    }
}
