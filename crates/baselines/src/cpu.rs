//! MKL-like CSR SpMV on an out-of-order desktop CPU (paper Fig 8's
//! "CPU": Intel i7-6700K running MKL 2018.3).
//!
//! MKL's `mkl_scsrmv` streams the whole CSR structure and gathers the
//! dense input vector regardless of the vector's sparsity — the model
//! therefore does *not* improve as the frontier thins, which is exactly
//! why CoSPARSE's relative gain grows toward low densities in Fig 8.

use crate::platform::{roofline_seconds, BaselineCost};

/// Analytical model of a desktop CPU running a vendor SpMV.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuModel {
    /// Sustained memory bandwidth (bytes/s).
    pub mem_bw: f64,
    /// Sustained SpMV flop rate (flops/s) — far below peak because of
    /// the gather-dominated inner loop.
    pub flops: f64,
    /// Last-level cache capacity (bytes), for the vector-gather reuse
    /// estimate.
    pub llc_bytes: f64,
    /// Per-call overhead (threading fork/join, dispatch).
    pub call_overhead_s: f64,
    /// Sustained package power under load (watts).
    pub power_w: f64,
}

impl CpuModel {
    /// The paper's CPU: i7-6700K (4C/8T Skylake @ 4.0 GHz, ~34 GB/s
    /// dual-channel DDR4, 8 MB LLC), MKL 2018.3.
    pub fn i7_6700k() -> Self {
        CpuModel {
            mem_bw: 30.0e9,
            flops: 8.0e9,
            llc_bytes: 8.0e6,
            call_overhead_s: 5.0e-6,
            power_w: 65.0,
        }
    }

    /// Cost of one `y = A * x` with an `rows x cols` matrix of `nnz`
    /// nonzeros. The input-vector density is accepted for interface
    /// symmetry but does not speed MKL up (dense-vector kernel).
    pub fn spmv(&self, rows: usize, cols: usize, nnz: usize, _vector_density: f64) -> BaselineCost {
        // CSR traffic: col index (4 B) + value (4 B) per nnz, row
        // pointers, output write.
        let structure_bytes = nnz as f64 * 8.0 + (rows as f64 + 1.0) * 4.0 + rows as f64 * 4.0;
        // Vector gather: x is reused only to the extent it fits in LLC.
        let x_bytes = cols as f64 * 4.0;
        let reuse = (self.llc_bytes / x_bytes).clamp(0.05, 1.0);
        // Each gather touches a 64 B line; reuse shrinks the miss share.
        let gather_bytes = nnz as f64 * 64.0 * (1.0 - reuse) + x_bytes;
        let flops = nnz as f64 * 2.0;
        let seconds = roofline_seconds(
            structure_bytes + gather_bytes,
            self.mem_bw,
            flops,
            self.flops,
            self.call_overhead_s,
        );
        BaselineCost::from_power(seconds, self.power_w)
    }
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel::i7_6700k()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_scales_with_nnz() {
        let m = CpuModel::i7_6700k();
        let small = m.spmv(1 << 17, 1 << 17, 1_000_000, 1.0);
        let large = m.spmv(1 << 17, 1 << 17, 8_000_000, 1.0);
        assert!(large.seconds > small.seconds * 4.0);
    }

    #[test]
    fn vector_density_does_not_help_mkl() {
        let m = CpuModel::i7_6700k();
        let dense = m.spmv(1 << 20, 1 << 20, 4_000_000, 1.0);
        let sparse = m.spmv(1 << 20, 1 << 20, 4_000_000, 0.001);
        assert_eq!(dense, sparse);
    }

    #[test]
    fn small_vectors_benefit_from_llc_reuse() {
        let m = CpuModel::i7_6700k();
        // Same nnz; a vector fitting in LLC should gather much faster.
        let fits = m.spmv(1 << 14, 1 << 14, 2_000_000, 1.0);
        let thrashes = m.spmv(1 << 22, 1 << 22, 2_000_000, 1.0);
        assert!(thrashes.seconds > 2.0 * fits.seconds);
    }

    #[test]
    fn plausible_absolute_time() {
        // 4M-nnz SpMV on a desktop: order 1–100 ms.
        let m = CpuModel::i7_6700k();
        let c = m.spmv(1 << 20, 1 << 20, 4_000_000, 1.0);
        assert!(c.seconds > 1e-4 && c.seconds < 0.5, "{}", c.seconds);
        assert!(c.joules > 0.0);
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;

    #[test]
    fn overhead_floors_tiny_calls() {
        let m = CpuModel::i7_6700k();
        let c = m.spmv(16, 16, 32, 1.0);
        assert!(c.seconds >= m.call_overhead_s);
    }

    #[test]
    fn default_is_the_paper_cpu() {
        assert_eq!(CpuModel::default(), CpuModel::i7_6700k());
    }
}
