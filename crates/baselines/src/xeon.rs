//! Timing/energy model of the shared-memory Xeon server the paper runs
//! Ligra on (Fig 10: Intel Xeon E7-4860, 2.6 GHz, 48 cores, 256 GB
//! DRAM).
//!
//! Graph analytics on big shared-memory machines is memory-bound with a
//! per-iteration parallel-for/synchronization floor; the model is a
//! roofline over scanned edges plus that floor. Push (scatter) traffic
//! is costlier per edge than pull (gather) traffic because updates land
//! on random cache lines.

use crate::platform::{roofline_seconds, BaselineCost};

/// Analytical multicore-server model.
#[derive(Debug, Clone, PartialEq)]
pub struct XeonModel {
    /// Aggregate sustained memory bandwidth (bytes/s).
    pub mem_bw: f64,
    /// Bytes moved per edge scanned in pull (gather) mode.
    pub pull_bytes_per_edge: f64,
    /// Bytes moved per edge scanned in push (scatter) mode.
    pub push_bytes_per_edge: f64,
    /// Bytes per frontier vertex touched (frontier + flags management).
    pub bytes_per_vertex: f64,
    /// Aggregate sustained flop rate (flops/s).
    pub flops: f64,
    /// Per-iteration parallel-for + barrier overhead (seconds).
    pub sync_overhead_s: f64,
    /// Sustained package power across sockets (watts).
    pub power_w: f64,
}

impl XeonModel {
    /// The paper's Ligra host (4-socket E7-4860-class, 48 cores).
    ///
    /// Constants are calibrated so the model lands in the throughput
    /// range the Ligra paper reports on comparable 4-socket machines
    /// (~1–2.5 G edges/s pull, ~1 G edges/s push): NUMA-afflicted
    /// sustained bandwidth of ~50 GB/s and 20/48 effective bytes per
    /// scanned edge (edge list + frontier bitmaps + vertex state).
    pub fn e7_4860() -> Self {
        XeonModel {
            mem_bw: 50.0e9,
            pull_bytes_per_edge: 20.0,
            push_bytes_per_edge: 48.0,
            bytes_per_vertex: 16.0,
            flops: 50.0e9,
            sync_overhead_s: 30.0e-6,
            power_w: 200.0,
        }
    }

    /// Cost of one frontier iteration scanning `edges` edges and
    /// touching `vertices` frontier vertices, with `flops_per_edge`
    /// arithmetic per edge; `push` selects the scatter cost.
    pub fn iteration(
        &self,
        edges: u64,
        vertices: u64,
        flops_per_edge: f64,
        push: bool,
    ) -> BaselineCost {
        let per_edge = if push {
            self.push_bytes_per_edge
        } else {
            self.pull_bytes_per_edge
        };
        let bytes = edges as f64 * per_edge + vertices as f64 * self.bytes_per_vertex;
        let seconds = roofline_seconds(
            bytes,
            self.mem_bw,
            edges as f64 * flops_per_edge.max(1.0),
            self.flops,
            self.sync_overhead_s,
        );
        BaselineCost::from_power(seconds, self.power_w)
    }
}

impl Default for XeonModel {
    fn default() -> Self {
        XeonModel::e7_4860()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_floor_dominates_tiny_iterations() {
        let x = XeonModel::e7_4860();
        let tiny = x.iteration(10, 5, 1.0, false);
        assert!((tiny.seconds - x.sync_overhead_s).abs() < 1e-6);
    }

    #[test]
    fn push_costs_more_per_edge_than_pull() {
        let x = XeonModel::e7_4860();
        let push = x.iteration(10_000_000, 1000, 1.0, true);
        let pull = x.iteration(10_000_000, 1000, 1.0, false);
        assert!(push.seconds > pull.seconds);
    }

    #[test]
    fn energy_uses_sustained_power() {
        let x = XeonModel::e7_4860();
        let c = x.iteration(1_000_000, 1000, 1.0, false);
        assert!((c.watts() - x.power_w).abs() < 1e-9);
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;

    #[test]
    fn flops_bound_kicks_in_for_heavy_ops() {
        // CF-like 24 flops/edge becomes compute-bound on enough edges.
        let x = XeonModel::e7_4860();
        let light = x.iteration(10_000_000, 0, 1.0, false);
        let heavy = x.iteration(10_000_000, 0, 24.0, false);
        assert!(heavy.seconds > light.seconds);
    }

    #[test]
    fn vertices_contribute_traffic() {
        let x = XeonModel::e7_4860();
        let few = x.iteration(1_000_000, 0, 1.0, false);
        let many = x.iteration(1_000_000, 50_000_000, 1.0, false);
        assert!(many.seconds > few.seconds);
    }
}
