//! A faithful Ligra-style shared-memory graph engine (Shun & Blelloch,
//! PPoPP'13) — the framework the paper compares against in Fig 10.
//!
//! Ligra's signature optimization is per-iteration *direction
//! switching*: when the frontier's out-edge count plus size exceeds
//! `|E| / 20`, `edgeMap` runs "dense" (pull: every candidate vertex
//! gathers over in-edges, with early exit where the op allows),
//! otherwise "sparse" (push: frontier vertices scatter over
//! out-edges). The engine here computes real results and counts the
//! edges each mode actually scans; the [`XeonModel`] converts those
//! counts into time and energy on the paper's 48-core host.

use crate::platform::BaselineCost;
use crate::xeon::XeonModel;
use sparse::{CooMatrix, CsrMatrix, Idx};

/// Direction `edgeMap` chose for an iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Sparse / push: scatter from frontier vertices.
    Push,
    /// Dense / pull: gather into candidate vertices.
    Pull,
}

/// Per-iteration record of a Ligra run.
#[derive(Debug, Clone, PartialEq)]
pub struct LigraIter {
    /// Direction chosen by the `|E|/20` threshold.
    pub mode: Mode,
    /// Frontier size entering the iteration.
    pub frontier: usize,
    /// Edges actually scanned (early exits counted faithfully).
    pub edges_scanned: u64,
    /// Modeled cost on the Xeon host.
    pub cost: BaselineCost,
}

/// Result of a Ligra algorithm run.
#[derive(Debug, Clone, PartialEq)]
pub struct LigraRun<T> {
    /// Final per-vertex state.
    pub state: Vec<T>,
    /// Per-iteration records.
    pub iterations: Vec<LigraIter>,
}

impl<T> LigraRun<T> {
    /// Total modeled cost.
    pub fn total(&self) -> BaselineCost {
        let mut t = BaselineCost::default();
        for it in &self.iterations {
            t.accumulate(it.cost);
        }
        t
    }
}

/// The Ligra engine bound to one graph and one host model.
#[derive(Debug)]
pub struct Ligra {
    out: CsrMatrix,
    incoming: CsrMatrix,
    xeon: XeonModel,
    /// Ligra's direction threshold divisor (default 20: switch to dense
    /// when `frontier_out_edges + |frontier| > |E| / 20`).
    pub threshold_divisor: u64,
}

impl Ligra {
    /// Builds the engine (CSR out-edges + CSR in-edges, like Ligra's
    /// dual representation).
    pub fn new(adjacency: &CooMatrix, xeon: XeonModel) -> Self {
        Ligra {
            out: CsrMatrix::from(adjacency),
            incoming: CsrMatrix::from(&adjacency.transpose()),
            xeon,
            threshold_divisor: 20,
        }
    }

    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        self.out.rows()
    }

    fn dense_mode(&self, frontier: &[Idx]) -> bool {
        let out_edges: u64 = frontier
            .iter()
            .map(|&u| self.out.row_nnz(u as usize) as u64)
            .sum();
        out_edges + frontier.len() as u64 > self.out.nnz() as u64 / self.threshold_divisor
    }

    /// BFS from `root`; returns levels (`u32::MAX` unreached).
    ///
    /// ```
    /// use baselines::{ligra::Ligra, xeon::XeonModel};
    ///
    /// # fn main() -> Result<(), sparse::SparseError> {
    /// let adj = sparse::generate::rmat(8, 1000, Default::default(), 1)?;
    /// let run = Ligra::new(&adj, XeonModel::e7_4860()).bfs(0);
    /// assert!(run.total().seconds > 0.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn bfs(&self, root: Idx) -> LigraRun<u32> {
        let n = self.vertices();
        let mut level = vec![u32::MAX; n];
        let mut run = LigraRun {
            state: Vec::new(),
            iterations: Vec::new(),
        };
        if (root as usize) >= n {
            run.state = level;
            return run;
        }
        level[root as usize] = 0;
        let mut frontier = vec![root];
        let mut depth = 0u32;
        while !frontier.is_empty() {
            depth += 1;
            let dense = self.dense_mode(&frontier);
            let mut edges = 0u64;
            let mut next = Vec::new();
            if dense {
                let in_frontier: Vec<bool> = {
                    let mut f = vec![false; n];
                    for &u in &frontier {
                        f[u as usize] = true;
                    }
                    f
                };
                for (v, lvl) in level.iter_mut().enumerate() {
                    if *lvl != u32::MAX {
                        continue;
                    }
                    let (srcs, _) = self.incoming.row(v);
                    for &u in srcs {
                        edges += 1;
                        if in_frontier[u as usize] {
                            *lvl = depth;
                            next.push(v as Idx);
                            break; // Ligra's dense BFS early exit
                        }
                    }
                }
            } else {
                for &u in &frontier {
                    let (dsts, _) = self.out.row(u as usize);
                    for &v in dsts {
                        edges += 1;
                        if level[v as usize] == u32::MAX {
                            level[v as usize] = depth;
                            next.push(v);
                        }
                    }
                }
                next.sort_unstable();
                next.dedup();
            }
            run.iterations.push(LigraIter {
                mode: if dense { Mode::Pull } else { Mode::Push },
                frontier: frontier.len(),
                edges_scanned: edges,
                cost: self
                    .xeon
                    .iteration(edges, frontier.len() as u64, 1.0, !dense),
            });
            frontier = next;
        }
        run.state = level;
        run
    }

    /// Bellman-Ford SSSP from `source` (non-negative weights).
    pub fn sssp(&self, source: Idx) -> LigraRun<f32> {
        let n = self.vertices();
        let mut dist = vec![f32::INFINITY; n];
        let mut run = LigraRun {
            state: Vec::new(),
            iterations: Vec::new(),
        };
        if (source as usize) >= n {
            run.state = dist;
            return run;
        }
        dist[source as usize] = 0.0;
        let mut frontier = vec![source];
        while !frontier.is_empty() {
            let dense = self.dense_mode(&frontier);
            let mut edges = 0u64;
            let mut improved = vec![false; n];
            if dense {
                let in_frontier: Vec<bool> = {
                    let mut f = vec![false; n];
                    for &u in &frontier {
                        f[u as usize] = true;
                    }
                    f
                };
                // Pull: no early exit — min over all in-edges from the
                // frontier.
                for v in 0..n {
                    let (srcs, weights) = self.incoming.row(v);
                    for (&u, &w) in srcs.iter().zip(weights) {
                        edges += 1;
                        if in_frontier[u as usize] {
                            let nd = dist[u as usize] + w;
                            if nd < dist[v] {
                                dist[v] = nd;
                                improved[v] = true;
                            }
                        }
                    }
                }
            } else {
                for &u in &frontier {
                    let (dsts, weights) = self.out.row(u as usize);
                    for (&v, &w) in dsts.iter().zip(weights) {
                        edges += 1;
                        let nd = dist[u as usize] + w;
                        if nd < dist[v as usize] {
                            dist[v as usize] = nd;
                            improved[v as usize] = true;
                        }
                    }
                }
            }
            let next: Vec<Idx> = (0..n).filter(|&v| improved[v]).map(|v| v as Idx).collect();
            run.iterations.push(LigraIter {
                mode: if dense { Mode::Pull } else { Mode::Push },
                frontier: frontier.len(),
                edges_scanned: edges,
                cost: self
                    .xeon
                    .iteration(edges, frontier.len() as u64, 2.0, !dense),
            });
            frontier = next;
        }
        run.state = dist;
        run
    }

    /// Damped PageRank for a fixed number of rounds (always dense).
    pub fn pagerank(&self, alpha: f32, rounds: usize) -> LigraRun<f32> {
        let n = self.vertices();
        let degrees = self.out.out_degrees();
        let mut rank = vec![1.0f32 / n.max(1) as f32; n];
        let mut run = LigraRun {
            state: Vec::new(),
            iterations: Vec::new(),
        };
        for _ in 0..rounds {
            let mut next = vec![alpha / n.max(1) as f32; n];
            let mut edges = 0u64;
            for (v, acc) in next.iter_mut().enumerate() {
                let (srcs, _) = self.incoming.row(v);
                for &u in srcs {
                    edges += 1;
                    *acc += (1.0 - alpha) * rank[u as usize] / degrees[u as usize].max(1) as f32;
                }
            }
            rank = next;
            run.iterations.push(LigraIter {
                mode: Mode::Pull,
                frontier: n,
                edges_scanned: edges,
                cost: self.xeon.iteration(edges, n as u64, 3.0, false),
            });
        }
        run.state = rank;
        run
    }

    /// Collaborative-filtering gradient descent (always dense), matching
    /// the CoSPARSE CF op with `k` latent features.
    pub fn cf(&self, lambda: f32, beta: f32, rounds: usize, k: usize) -> LigraRun<f32> {
        let n = self.vertices();
        let mut x: Vec<Vec<f32>> = (0..n)
            .map(|v| {
                // Same deterministic init as graph::cf::initial_features,
                // truncated/padded to k.
                let mut f = vec![0.0f32; k];
                let mut z = (v as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
                for slot in &mut f {
                    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    *slot = 0.1 + 0.1 * ((z >> 40) as f32 / (1u64 << 24) as f32);
                }
                f
            })
            .collect();
        let mut run = LigraRun {
            state: Vec::new(),
            iterations: Vec::new(),
        };
        for _ in 0..rounds {
            let mut grad = vec![vec![0.0f32; k]; n];
            let mut edges = 0u64;
            for v in 0..n {
                let (srcs, weights) = self.incoming.row(v);
                for (&u, &w) in srcs.iter().zip(weights) {
                    edges += 1;
                    let dot: f32 = x[u as usize].iter().zip(&x[v]).map(|(a, b)| a * b).sum();
                    let err = w - dot;
                    for f in 0..k {
                        grad[v][f] += err * x[u as usize][f] - lambda * x[v][f];
                    }
                }
            }
            for v in 0..n {
                for f in 0..k {
                    x[v][f] += beta * grad[v][f];
                }
            }
            run.iterations.push(LigraIter {
                mode: Mode::Pull,
                frontier: n,
                edges_scanned: edges,
                // K features: ~3k flops and 8k bytes per edge dominate.
                cost: self.xeon.iteration(edges, n as u64, 3.0 * k as f64, false),
            });
        }
        // Flatten the feature matrix as the reported state (training
        // error is the meaningful output; see graph::cf::training_error).
        run.state = x.into_iter().flatten().collect();
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rmat_graph() -> CooMatrix {
        sparse::generate::rmat(11, 30_000, Default::default(), 7).unwrap()
    }

    #[test]
    fn bfs_levels_match_reference() {
        let adj = rmat_graph();
        let csr = CsrMatrix::from(&adj);
        let (_, want_levels) = graph::bfs::reference(&csr, 0);
        let ligra = Ligra::new(&adj, XeonModel::e7_4860());
        let run = ligra.bfs(0);
        assert_eq!(run.state, want_levels);
    }

    #[test]
    fn bfs_direction_switches_on_social_graph() {
        let adj = rmat_graph();
        let ligra = Ligra::new(&adj, XeonModel::e7_4860());
        let run = ligra.bfs(0);
        let modes: std::collections::HashSet<_> = run.iterations.iter().map(|i| i.mode).collect();
        assert!(
            modes.contains(&Mode::Push) && modes.contains(&Mode::Pull),
            "{modes:?}"
        );
        // Fig 9-style shape: starts push, goes pull in the middle.
        assert_eq!(run.iterations[0].mode, Mode::Push);
    }

    #[test]
    fn sssp_matches_dijkstra() {
        let adj = sparse::generate::uniform(300, 300, 3000, 4).unwrap();
        let csr = CsrMatrix::from(&adj);
        let want = graph::sssp::reference(&csr, 5);
        let ligra = Ligra::new(&adj, XeonModel::e7_4860());
        let run = ligra.sssp(5);
        for (v, (&a, &b)) in run.state.iter().zip(&want).enumerate() {
            if a.is_infinite() || b.is_infinite() {
                assert_eq!(a.is_infinite(), b.is_infinite(), "vertex {v}");
            } else {
                assert!((a - b).abs() < 1e-4, "vertex {v}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn pagerank_matches_reference() {
        let adj = sparse::generate::uniform(256, 256, 2500, 8).unwrap();
        let csr = CsrMatrix::from(&adj);
        let want = graph::pagerank::reference(&csr, 0.15, 8);
        let ligra = Ligra::new(&adj, XeonModel::e7_4860());
        let run = ligra.pagerank(0.15, 8);
        for (v, (&a, &b)) in run.state.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 1e-5, "vertex {v}");
        }
    }

    #[test]
    fn cf_matches_graph_crate() {
        let adj = sparse::generate::uniform(64, 64, 400, 5).unwrap();
        let want = graph::cf::reference(&adj, 0.01, 0.05, 4);
        let ligra = Ligra::new(&adj, XeonModel::e7_4860());
        let run = ligra.cf(0.01, 0.05, 4, graph::cf::FEATURES);
        for (v, want_v) in want.iter().enumerate() {
            for (k, &b) in want_v.iter().enumerate() {
                let got = run.state[v * graph::cf::FEATURES + k];
                assert!(
                    (got - b).abs() < 1e-4,
                    "vertex {v} feature {k}: {got} vs {b}"
                );
            }
        }
    }

    #[test]
    fn pull_mode_scans_fewer_edges_for_bfs_peak() {
        // On the peak iteration the dense mode's early exit should keep
        // edges scanned at or below the full edge count.
        let adj = rmat_graph();
        let ligra = Ligra::new(&adj, XeonModel::e7_4860());
        let run = ligra.bfs(0);
        for it in &run.iterations {
            assert!(it.edges_scanned <= adj.nnz() as u64);
        }
    }

    #[test]
    fn total_cost_accumulates() {
        let adj = rmat_graph();
        let ligra = Ligra::new(&adj, XeonModel::e7_4860());
        let run = ligra.bfs(0);
        let total = run.total();
        assert!(total.seconds > 0.0 && total.joules > 0.0);
        assert!(total.seconds >= run.iterations.len() as f64 * 20.0e-6);
    }
}
