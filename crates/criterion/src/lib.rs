//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of the criterion API its benches use:
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`] / [`Bencher::iter_batched`] and
//! [`BatchSize`]. There is no statistical analysis: each benchmark is
//! warmed up once and then timed over a fixed number of iterations, and
//! the mean wall-clock time per iteration is printed.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How expensive the per-iteration setup input is; accepted for API
/// compatibility and ignored by this harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is small relative to the routine.
    SmallInput,
    /// Setup output is comparable to the routine.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Timer handle passed to every benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count used for each benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        // Warm-up pass with a single iteration.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mut b = Bencher {
            iters: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
        println!(
            "{}/{}: {:.3} ms/iter ({} iters)",
            self.name,
            id,
            per_iter * 1e3,
            b.iters
        );
        self
    }

    /// Ends the group (reporting is already done per benchmark).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies command-line configuration; a no-op in this harness.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs and reports one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Bundles benchmark functions into a group runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runner_executes() {
        benches();
    }
}
