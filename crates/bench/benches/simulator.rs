//! Criterion microbenchmarks of the transmuter simulator itself:
//! event-loop throughput, memory-system resolution cost, and end-to-end
//! small SpMV invocations under both dataflows. Useful for tracking
//! regressions in the simulator's host performance (simulated cycles
//! per host second).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bench::run_spmv_fixed;
use cosparse::SwConfig;
use transmuter::{Geometry, HwConfig, Machine, MicroArch, Op, StreamSet};

fn bench_event_loop(c: &mut Criterion) {
    let g = Geometry::new(4, 8);
    let mut group = c.benchmark_group("event-loop");
    group.sample_size(20);

    group.bench_function("compute_only_320k_ops", |b| {
        b.iter(|| {
            let mut m = Machine::new(g, MicroArch::paper());
            let mut s = StreamSet::new(g);
            for t in 0..4 {
                for pe in 0..8 {
                    s.set_pe(t, pe, (0..10_000).map(|_| Op::Compute(1)));
                }
            }
            black_box(m.run(s).unwrap())
        })
    });

    group.bench_function("sequential_loads_160k", |b| {
        b.iter(|| {
            let mut m = Machine::new(g, MicroArch::paper());
            let mut s = StreamSet::new(g);
            for t in 0..4 {
                for pe in 0..8 {
                    let base = (t * 8 + pe) as u64 * 0x10_0000;
                    s.set_pe(t, pe, (0..5_000u64).map(move |i| Op::Load(base + i * 4)));
                }
            }
            black_box(m.run(s).unwrap())
        })
    });

    group.bench_function("random_loads_160k", |b| {
        b.iter(|| {
            let mut m = Machine::new(g, MicroArch::paper());
            let mut s = StreamSet::new(g);
            for t in 0..4 {
                for pe in 0..8 {
                    let mut z = (t * 8 + pe) as u64 + 1;
                    s.set_pe(
                        t,
                        pe,
                        (0..5_000u64).map(move |_| {
                            z ^= z << 13;
                            z ^= z >> 7;
                            z ^= z << 17;
                            Op::Load((z % 0x100_0000) & !3)
                        }),
                    );
                }
            }
            black_box(m.run(s).unwrap())
        })
    });
    group.finish();
}

fn bench_reconfiguration(c: &mut Criterion) {
    let g = Geometry::new(4, 8);
    let mut group = c.benchmark_group("reconfiguration");
    group.sample_size(30);
    group.bench_function("flush_and_switch", |b| {
        b.iter(|| {
            let mut m = Machine::new(g, MicroArch::paper());
            for hw in [HwConfig::Scs, HwConfig::Pc, HwConfig::Ps, HwConfig::Sc] {
                black_box(m.reconfigure(hw));
            }
        })
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let n = 1 << 12;
    let m = sparse::generate::uniform(n, n, 40_000, 11).unwrap();
    let g = Geometry::new(2, 4);
    let mut group = c.benchmark_group("end-to-end-spmv");
    group.sample_size(10);
    group.bench_function("ip_sc_40k_nnz", |b| {
        b.iter(|| {
            black_box(run_spmv_fixed(
                &m,
                g,
                SwConfig::InnerProduct,
                HwConfig::Sc,
                1.0,
                3,
            ))
        })
    });
    group.bench_function("op_ps_1pct_40k_nnz", |b| {
        b.iter(|| {
            black_box(run_spmv_fixed(
                &m,
                g,
                SwConfig::OuterProduct,
                HwConfig::Ps,
                0.01,
                3,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_loop,
    bench_reconfiguration,
    bench_end_to_end
);
criterion_main!(benches);
