//! Criterion microbenchmarks of the host-side kernel machinery: stream
//! generation, functional evaluation, format conversion and
//! partitioning. These measure the *reproduction's* own performance
//! (how fast the harness can generate and evaluate workloads), not the
//! simulated machine — simulated-cycle results come from the `fig*`
//! binaries.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use cosparse::balance::{ip_partitions, op_tile_partitions, Balancing};
use cosparse::kernels::{ip, op};
use cosparse::{apply, Layout, OpProfile, SpmvOp};
use sparse::partition::{RowPartition, VBlocks};
use sparse::{CooMatrix, CscMatrix, Idx};
use transmuter::Geometry;

const N: usize = 1 << 13;
const NNZ: usize = 80_000;

fn matrix() -> CooMatrix {
    sparse::generate::uniform(N, N, NNZ, 7).unwrap()
}

fn bench_generation(c: &mut Criterion) {
    let m = matrix();
    let csc = CscMatrix::from(&m);
    let g = Geometry::new(2, 4);
    let layout = Layout::new(N, N, NNZ, g, 1);
    let part = ip_partitions(&m.row_counts(), g, Balancing::NnzBalanced);
    let tiles = op_tile_partitions(&m.row_counts(), g, Balancing::NnzBalanced);
    let vblocks = VBlocks::new(N, 2048);
    let frontier: Vec<Idx> = sparse::generate::random_sparse_vector(N, 0.02, 3)
        .unwrap()
        .iter()
        .map(|(i, _)| i)
        .collect();

    let mut group = c.benchmark_group("stream-generation");
    group.sample_size(20);
    group.bench_function("ip_streams_80k_nnz", |b| {
        b.iter(|| {
            let params = ip::IpParams {
                layout: &layout,
                partition: &part,
                vblocks: &vblocks,
                use_spm: false,
                active: None,
                profile: OpProfile::scalar(),
            };
            black_box(ip::streams(&m, g, params));
        })
    });
    group.bench_function("op_streams_2pct_frontier", |b| {
        b.iter(|| {
            let params = op::OpParams {
                layout: &layout,
                tile_parts: &tiles,
                frontier: &frontier,
                heap_in_spm: true,
                spm_node_cap: 512,
                profile: OpProfile::scalar(),
            };
            black_box(op::streams(&csc, g, params));
        })
    });
    group.finish();
}

fn bench_functional(c: &mut Criterion) {
    let m = matrix();
    let csc = CscMatrix::from(&m);
    let degrees: Vec<u32> = m.col_counts().into_iter().map(|x| x as u32).collect();
    let state = vec![0.0f32; N];
    let active: Vec<(Idx, f32)> = sparse::generate::random_sparse_vector(N, 0.05, 9)
        .unwrap()
        .iter()
        .collect();

    let mut group = c.benchmark_group("functional");
    group.sample_size(30);
    group.bench_function("apply_spmv_5pct", |b| {
        b.iter(|| black_box(apply(&SpmvOp, &csc, &active, &state, &degrees)))
    });
    group.bench_function("reference_spmv_dense", |b| {
        let x = sparse::generate::random_dense_vector(N, 4);
        b.iter(|| black_box(m.spmv_dense(&x).unwrap()))
    });
    group.finish();
}

fn bench_formats(c: &mut Criterion) {
    let m = matrix();
    let mut group = c.benchmark_group("formats");
    group.sample_size(20);
    group.bench_function("coo_to_csc", |b| b.iter(|| black_box(CscMatrix::from(&m))));
    group.bench_function("transpose", |b| b.iter(|| black_box(m.transpose())));
    group.bench_function("nnz_balanced_partition_256", |b| {
        let counts = m.row_counts();
        b.iter(|| black_box(RowPartition::nnz_balanced(&counts, 256)))
    });
    group.bench_function("generate_uniform_80k", |b| {
        b.iter(|| black_box(sparse::generate::uniform(N, N, NNZ, 5).unwrap()))
    });
    group.bench_function("generate_rmat_80k", |b| {
        b.iter(|| black_box(sparse::generate::rmat(13, NNZ, Default::default(), 5).unwrap()))
    });
    group.finish();
}

fn bench_vector_conversion(c: &mut Criterion) {
    let dense = sparse::generate::random_sparse_vector(1 << 16, 0.02, 2)
        .unwrap()
        .to_dense(0.0);
    let mut group = c.benchmark_group("frontier-conversion");
    group.sample_size(30);
    group.bench_function("dense_to_sparse_64k", |b| {
        b.iter_batched(
            || dense.clone(),
            |d| black_box(d.to_sparse(|v| *v != 0.0)),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_generation,
    bench_functional,
    bench_formats,
    bench_vector_conversion
);
criterion_main!(benches);
