//! Figure 4: speedup of OP (PC) over IP (SC) versus vector density,
//! across matrix dimensions and system sizes — the experiment that
//! calibrates the software-reconfiguration threshold (CVD).
//!
//! Paper shape to reproduce: OP wins at low densities (up to ~6×), IP
//! wins at high densities; the crossover density falls from ~2% to
//! ~0.5% as PEs per tile grow from 8 to 32, and rises slightly for
//! sparser matrices.
//!
//! Usage: `cargo run --release -p bench --bin fig4`
//! (`COSPARSE_SCALE=1` for paper-scale matrices).

use bench::{
    crossover_density, fig4_geometries, fig_matrix_dims, fig_nnz, print_table, run_spmv_fixed,
};
use cosparse::SwConfig;
use transmuter::HwConfig;

/// The paper's five densities plus two extended points so the crossover
/// stays measurable at reduced scales (smaller matrices keep the merge
/// heaps cache-resident, shifting the crossover right).
const DENSITIES: [f64; 7] = [0.0025, 0.005, 0.01, 0.02, 0.04, 0.08, 0.16];

fn main() {
    let nnz = fig_nnz();
    println!(
        "fig4: OP(PC) vs IP(SC); nnz = {nnz}, scale = {}",
        bench::scale()
    );
    let mut cvd_rows: Vec<Vec<String>> = Vec::new();

    for n in fig_matrix_dims() {
        let matrix = sparse::generate::uniform(n, n, nnz, 0xF164).expect("generator");
        let r = matrix.density();
        let mut rows: Vec<Vec<String>> = Vec::new();
        for geometry in fig4_geometries() {
            // IP with a dense-stored vector touches every nonzero, but
            // §IV-C.1 skipping makes its time mildly density-dependent,
            // so it is rerun per density point.
            let mut speedups = Vec::new();
            let mut row = vec![geometry.to_string()];
            for (i, &d) in DENSITIES.iter().enumerate() {
                let ip = run_spmv_fixed(
                    &matrix,
                    geometry,
                    SwConfig::InnerProduct,
                    HwConfig::Sc,
                    d,
                    42 + i as u64,
                );
                let op = run_spmv_fixed(
                    &matrix,
                    geometry,
                    SwConfig::OuterProduct,
                    HwConfig::Pc,
                    d,
                    42 + i as u64,
                );
                let s = ip.cycles as f64 / op.cycles.max(1) as f64;
                speedups.push(s);
                row.push(format!("{s:.2}"));
            }
            let cvd = crossover_density(&DENSITIES, &speedups);
            row.push(cvd.map_or("-".into(), |c| format!("{:.2}%", c * 100.0)));
            cvd_rows.push(vec![
                format!("N={n}"),
                geometry.to_string(),
                cvd.map_or("> 4% or < 0.25%".into(), |c| format!("{:.2}%", c * 100.0)),
            ]);
            rows.push(row);
        }
        let headers: Vec<String> = std::iter::once("system".to_string())
            .chain(DENSITIES.iter().map(|d| format!("d={d}")))
            .chain(std::iter::once("CVD".to_string()))
            .collect();
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        print_table(
            &format!("Fig 4 | N={n}, r={r:.1e} | speedup of OP(PC) vs IP(SC)"),
            &headers_ref,
            &rows,
        );
    }

    print_table(
        "Fig 4 summary | crossover vector density (paper: ~2% at B=8 → ~0.5% at B=32)",
        &["matrix", "system", "CVD"],
        &cvd_rows,
    );
}
