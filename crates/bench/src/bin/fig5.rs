//! Figure 5: speedup of SCS over SC for the inner product, versus
//! vector density.
//!
//! Paper shape to reproduce: SCS gains grow with vector density (up to
//! ~30–40%) and with the SPM-reuse factor `N·r·B/A`; the largest,
//! sparsest matrix shows the least benefit, and gains can go negative
//! at the sparsest vectors (preload overhead with no reuse).
//!
//! Usage: `cargo run --release -p bench --bin fig5`

use bench::{fig56_geometries, fig_matrix_dims, fig_nnz, print_table, run_spmv_fixed, DENSITIES};
use cosparse::SwConfig;
use transmuter::HwConfig;

fn main() {
    let nnz = fig_nnz();
    println!(
        "fig5: SCS vs SC (inner product); nnz = {nnz}, scale = {}",
        bench::scale()
    );

    for n in fig_matrix_dims() {
        let matrix = sparse::generate::uniform(n, n, nnz, 0xF165).expect("generator");
        let r = matrix.density();
        let mut rows: Vec<Vec<String>> = Vec::new();
        for geometry in fig56_geometries() {
            let mut row = vec![geometry.to_string()];
            // SPM-reuse factor from §III-C.2: N·r·B/A.
            let reuse = n as f64 * r * geometry.pes_per_tile() as f64 / geometry.tiles() as f64;
            for (i, &d) in DENSITIES.iter().enumerate() {
                let sc = run_spmv_fixed(
                    &matrix,
                    geometry,
                    SwConfig::InnerProduct,
                    HwConfig::Sc,
                    d,
                    77 + i as u64,
                );
                let scs = run_spmv_fixed(
                    &matrix,
                    geometry,
                    SwConfig::InnerProduct,
                    HwConfig::Scs,
                    d,
                    77 + i as u64,
                );
                let gain = sc.cycles as f64 / scs.cycles.max(1) as f64 - 1.0;
                row.push(format!("{:+.1}%", gain * 100.0));
            }
            row.push(format!("{reuse:.1}"));
            rows.push(row);
        }
        let headers: Vec<String> = std::iter::once("system".to_string())
            .chain(DENSITIES.iter().map(|d| format!("d={d}")))
            .chain(std::iter::once("Nreuse".to_string()))
            .collect();
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        print_table(
            &format!("Fig 5 | N={n}, r={r:.1e} | speedup of SCS vs SC (IP)"),
            &headers_ref,
            &rows,
        );
    }
    println!(
        "\npaper takeaway: SCS gain is positively correlated with vector density and\n\
         with the SPM reuse factor N*r*B/A; the largest (sparsest) matrix gains least."
    );
}
