//! Generic calibration sweep: evaluates all five software/hardware
//! combinations over a density grid and prints CSV — the tool to
//! re-derive decision-tree thresholds for a new matrix family or
//! geometry (the paper's §III-C methodology, packaged).
//!
//! ```text
//! sweep [--n <dim>] [--nnz <count>] [--family uniform|powerlaw|rmat]
//!       [--geometry AxB] [--densities d1,d2,...] [--seed n]
//! ```
//!
//! Output columns: density, config, cycles, l1_hit, l2_hit, hbm_lines,
//! joules. Pipe to a file for plotting.

use bench::run_spmv_fixed;
use cosparse::SwConfig;
use sparse::CooMatrix;
use transmuter::{Geometry, HwConfig};

struct Args {
    n: usize,
    nnz: usize,
    family: String,
    geometry: Geometry,
    densities: Vec<f64>,
    seed: u64,
}

fn parse() -> Result<Args, String> {
    let mut args = Args {
        n: 1 << 16,
        nnz: 1_000_000,
        family: "uniform".to_string(),
        geometry: Geometry::new(4, 8),
        densities: vec![0.0025, 0.005, 0.01, 0.02, 0.04, 0.08, 0.16],
        seed: 42,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut val = || argv.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--n" => args.n = val()?.parse().map_err(|_| "bad --n")?,
            "--nnz" => args.nnz = val()?.parse().map_err(|_| "bad --nnz")?,
            "--family" => args.family = val()?,
            "--geometry" => {
                let v = val()?;
                let (a, b) = v.split_once('x').ok_or("geometry must be AxB")?;
                args.geometry = Geometry::new(
                    a.parse().map_err(|_| "bad tiles")?,
                    b.parse().map_err(|_| "bad PEs")?,
                );
            }
            "--densities" => {
                args.densities = val()?
                    .split(',')
                    .map(|d| d.parse().map_err(|_| format!("bad density {d}")))
                    .collect::<Result<_, _>>()?;
            }
            "--seed" => args.seed = val()?.parse().map_err(|_| "bad seed")?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn generate(args: &Args) -> Result<CooMatrix, String> {
    match args.family.as_str() {
        "uniform" => sparse::generate::uniform(args.n, args.n, args.nnz, args.seed),
        "powerlaw" => sparse::generate::power_law(args.n, args.n, args.nnz, 1.0, args.seed),
        "rmat" => {
            let scale = (usize::BITS - (args.n.max(2) - 1).leading_zeros()).max(4);
            sparse::generate::rmat(scale, args.nnz, Default::default(), args.seed)
        }
        other => return Err(format!("unknown family {other}")),
    }
    .map_err(|e| e.to_string())
}

const CONFIGS: [(SwConfig, HwConfig, &str); 5] = [
    (SwConfig::InnerProduct, HwConfig::Sc, "IP/SC"),
    (SwConfig::InnerProduct, HwConfig::Scs, "IP/SCS"),
    (SwConfig::OuterProduct, HwConfig::Sc, "OP/SC"),
    (SwConfig::OuterProduct, HwConfig::Pc, "OP/PC"),
    (SwConfig::OuterProduct, HwConfig::Ps, "OP/PS"),
];

fn main() -> std::process::ExitCode {
    let args = match parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let matrix = match generate(&args) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    eprintln!(
        "# sweeping {}x{} {} matrix ({} nnz) on {}",
        matrix.rows(),
        matrix.cols(),
        args.family,
        matrix.nnz(),
        args.geometry
    );
    println!("density,config,cycles,l1_hit,l2_hit,hbm_lines,joules");
    for &d in &args.densities {
        for &(sw, hw, name) in &CONFIGS {
            let r = run_spmv_fixed(&matrix, args.geometry, sw, hw, d, args.seed);
            println!(
                "{d},{name},{},{:.4},{:.4},{},{:.4e}",
                r.cycles,
                r.stats.l1_hit_rate(),
                r.stats.l2_hit_rate(),
                r.stats.hbm_line_reads + r.stats.hbm_line_writes,
                r.joules()
            );
        }
    }
    std::process::ExitCode::SUCCESS
}
