//! §III-C.3's scaling observation: "As the number of cores doubles by
//! switching from a 4x8 to an 8x8 system, the PC mode achieves an
//! average speedup of 1.80× and PS mode achieves 1.96×" — doubling
//! tiles (not PEs per tile) scales the outer product well because each
//! tile merges shorter column sub-runs.
//!
//! Also prints the complementary IP scaling and the PE-per-tile
//! direction (4x8 → 4x16), which the paper says scales OP *worse*.
//!
//! Usage: `cargo run --release -p bench --bin scaling`

use bench::{fig_matrix_dims, fig_nnz, geomean, print_table, run_spmv_fixed, DENSITIES};
use cosparse::SwConfig;
use transmuter::{Geometry, HwConfig};

fn main() {
    let nnz = fig_nnz();
    println!("scaling study; nnz = {nnz}, scale = {}", bench::scale());

    let pairs = [
        (
            "4x8 → 8x8 (2x tiles)",
            Geometry::new(4, 8),
            Geometry::new(8, 8),
        ),
        (
            "4x8 → 4x16 (2x PEs/tile)",
            Geometry::new(4, 8),
            Geometry::new(4, 16),
        ),
    ];
    let configs = [
        (SwConfig::OuterProduct, HwConfig::Pc, "OP/PC"),
        (SwConfig::OuterProduct, HwConfig::Ps, "OP/PS"),
        (SwConfig::InnerProduct, HwConfig::Sc, "IP/SC"),
    ];

    let mut rows = Vec::new();
    for (label, small, large) in pairs {
        for &(sw, hw, name) in &configs {
            let mut speedups = Vec::new();
            for n in fig_matrix_dims() {
                let matrix = sparse::generate::uniform(n, n, nnz, 0x5CA1).expect("generator");
                for (i, &d) in DENSITIES.iter().enumerate() {
                    // IP timing is near density-independent; one point
                    // suffices there.
                    if sw == SwConfig::InnerProduct && i > 0 {
                        continue;
                    }
                    let a = run_spmv_fixed(&matrix, small, sw, hw, d, 31 + i as u64);
                    let b = run_spmv_fixed(&matrix, large, sw, hw, d, 31 + i as u64);
                    speedups.push(a.cycles as f64 / b.cycles.max(1) as f64);
                }
            }
            rows.push(vec![
                label.to_string(),
                name.to_string(),
                format!("{:.2}x", geomean(&speedups)),
            ]);
        }
    }
    print_table(
        "§III-C.3 | geomean speedup from doubling cores (paper: 4x8→8x8 gives PC 1.80x, PS 1.96x)",
        &["direction", "config", "speedup"],
        &rows,
    );
}
