//! Figure 9: the per-iteration case study — SSSP on pokec at 16x16.
//!
//! For every iteration, the frontier density, the execution time of all
//! five software/hardware combinations (normalized to IP/SC, the
//! no-reconfiguration baseline), the best configuration, and the choice
//! CoSPARSE's decision tree actually made.
//!
//! Paper shape to reproduce: density climbs from <1% to ~47% (iter 6)
//! and falls back; OP/PC wins the sparse head and tail, IP/SC the
//! shoulders, IP/SCS the dense peak; synergistic reconfiguration nets
//! ~1.5× over IP/SC-only (≤2.0× across graphs/algorithms).
//!
//! Usage: `cargo run --release -p bench --bin fig9`

use bench::{print_table, scale};
use cosparse::{CoSparse, Decision, GraphOp, SwConfig};
use graph::sssp::SsspOp;
use sparse::generate::SuiteGraph;
use sparse::Idx;
use transmuter::{Geometry, HwConfig, Machine, MicroArch};

const CONFIGS: [(SwConfig, HwConfig, &str); 5] = [
    (SwConfig::InnerProduct, HwConfig::Sc, "IP/SC"),
    (SwConfig::InnerProduct, HwConfig::Scs, "IP/SCS"),
    (SwConfig::OuterProduct, HwConfig::Sc, "OP/SC"),
    (SwConfig::OuterProduct, HwConfig::Pc, "OP/PC"),
    (SwConfig::OuterProduct, HwConfig::Ps, "OP/PS"),
];

fn main() {
    let geometry = Geometry::new(16, 16);
    // The per-iteration full-config sweep is ~6x the cost of a normal
    // run, so shrink pokec further than the suite default.
    let divisor = if scale() == 1 { 1 } else { 4 * scale() };
    let spec = SuiteGraph::Pokec.spec().scaled(divisor);
    let adjacency = spec.generate(0xF9).expect("suite generator");
    let transposed = adjacency.transpose();
    let n = transposed.cols();
    println!(
        "fig9: SSSP on pokec analogue (V={}, E={}, 1/{divisor} scale) on 16x16",
        n,
        adjacency.nnz()
    );

    // Highest out-degree vertex as the source (well-connected start).
    let source = adjacency
        .row_counts()
        .iter()
        .enumerate()
        .max_by_key(|&(_, c)| *c)
        .map(|(v, _)| v as Idx)
        .unwrap_or(0);

    let op = SsspOp;
    let profile = op.profile();
    let mut auto_rt = CoSparse::new(&transposed, Machine::new(geometry, MicroArch::paper()));
    let mut fixed: Vec<CoSparse> = CONFIGS
        .iter()
        .map(|_| CoSparse::new(&transposed, Machine::new(geometry, MicroArch::paper())))
        .collect();

    let mut state = vec![f32::INFINITY; n];
    state[source as usize] = 0.0;
    let mut frontier: Vec<(Idx, f32)> = vec![(source, 0.0)];
    let mut rows = Vec::new();
    let mut total_baseline = 0u64;
    let mut total_auto = 0u64;
    let mut total_oracle = 0u64;

    for iteration in 0..200 {
        if frontier.is_empty() {
            break;
        }
        let density = frontier.len() as f64 / n as f64;
        let indices: Vec<Idx> = frontier.iter().map(|&(i, _)| i).collect();

        let mut cycles = Vec::with_capacity(CONFIGS.len());
        for (rt, &(sw, hw, _)) in fixed.iter_mut().zip(&CONFIGS) {
            let decision = Decision {
                software: sw,
                hardware: hw,
                format: cosparse::default_format(sw),
                reorder: cosparse::ReorderKind::None,
                cvd: f64::NAN,
            };
            let report = rt
                .execute(decision, &indices, &profile)
                .expect("simulation");
            cycles.push(report.cycles);
        }
        let auto_out = auto_rt.step(&op, &frontier, &state).expect("simulation");

        let baseline = cycles[0];
        let best = cycles
            .iter()
            .enumerate()
            .min_by_key(|&(_, c)| *c)
            .map(|(i, _)| i)
            .expect("non-empty");
        total_baseline += baseline;
        total_auto += auto_out.report.cycles;
        total_oracle += cycles[best];

        let mut row = vec![
            iteration.to_string(),
            if density < 0.01 {
                format!("{:.2}%", density * 100.0)
            } else {
                format!("{:.0}%", density * 100.0)
            },
        ];
        for (i, &c) in cycles.iter().enumerate() {
            let norm = c as f64 / baseline.max(1) as f64;
            let mark = if i == best { "*" } else { "" };
            row.push(if norm > 10.0 {
                format!(">10{mark}")
            } else {
                format!("{norm:.2}{mark}")
            });
        }
        row.push(CONFIGS[best].2.to_string());
        row.push(format!("{}/{}", auto_out.software, auto_out.hardware));
        rows.push(row);

        for &(dst, v) in &auto_out.updates {
            state[dst as usize] = v;
        }
        frontier = auto_out.updates;
    }

    print_table(
        "Fig 9 | SSSP/pokec per iteration, times normalized to IP/SC (* = best)",
        &[
            "iter",
            "density",
            "IP/SC",
            "IP/SCS",
            "OP/SC",
            "OP/PC",
            "OP/PS",
            "best",
            "auto chose",
        ],
        &rows,
    );
    println!(
        "\nnet speedup of CoSPARSE (auto) over no-reconfiguration IP/SC: {:.2}x (paper: 1.51x)",
        total_baseline as f64 / total_auto.max(1) as f64
    );
    println!(
        "oracle best-per-iteration speedup:                            {:.2}x",
        total_baseline as f64 / total_oracle.max(1) as f64
    );
}
