//! Figure 6: speedup of PS over PC for the outer product, versus
//! vector density.
//!
//! Paper shape to reproduce: PS gains grow with vector density (longer
//! sorted lists → more random list accesses that the SPM absorbs, up to
//! ~40–60%), grow with tile count, and shrink with more PEs per tile
//! (each PE's share of the list gets smaller relative to its private
//! cache); PC wins slightly when the list fits in L1.
//!
//! Usage: `cargo run --release -p bench --bin fig6`

use bench::{fig56_geometries, fig_matrix_dims, fig_nnz, print_table, run_spmv_fixed, DENSITIES};
use cosparse::SwConfig;
use transmuter::HwConfig;

fn main() {
    let nnz = fig_nnz();
    println!(
        "fig6: PS vs PC (outer product); nnz = {nnz}, scale = {}",
        bench::scale()
    );

    for n in fig_matrix_dims() {
        let matrix = sparse::generate::uniform(n, n, nnz, 0xF166).expect("generator");
        let r = matrix.density();
        let mut rows: Vec<Vec<String>> = Vec::new();
        for geometry in fig56_geometries() {
            let mut row = vec![geometry.to_string()];
            for (i, &d) in DENSITIES.iter().enumerate() {
                let pc = run_spmv_fixed(
                    &matrix,
                    geometry,
                    SwConfig::OuterProduct,
                    HwConfig::Pc,
                    d,
                    93 + i as u64,
                );
                let ps = run_spmv_fixed(
                    &matrix,
                    geometry,
                    SwConfig::OuterProduct,
                    HwConfig::Ps,
                    d,
                    93 + i as u64,
                );
                let gain = pc.cycles as f64 / ps.cycles.max(1) as f64 - 1.0;
                row.push(format!("{:+.1}%", gain * 100.0));
            }
            // Per-PE sorted-list footprint at the densest sweep point.
            let list_kb =
                (n as f64 * DENSITIES[DENSITIES.len() - 1] / geometry.pes_per_tile() as f64) * 8.0
                    / 1024.0;
            row.push(format!("{list_kb:.1}kB"));
            rows.push(row);
        }
        let headers: Vec<String> = std::iter::once("system".to_string())
            .chain(DENSITIES.iter().map(|d| format!("d={d}")))
            .chain(std::iter::once("list@0.04".to_string()))
            .collect();
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        print_table(
            &format!("Fig 6 | N={n}, r={r:.1e} | speedup of PS vs PC (OP)"),
            &headers_ref,
            &rows,
        );
    }
    println!(
        "\npaper takeaway: PS gains grow with vector density and tile count, shrink\n\
         with PEs per tile; PC wins when the per-PE sorted list fits in the 4 kB L1."
    );
}
