//! Figure 8: SpMV speedup and energy-efficiency gain of CoSPARSE
//! (16x16) over the CPU (i7-6700K + MKL) and GPU (V100 + cuSPARSE)
//! models, on the real-graph suite, sweeping vector density 0.001–1.0.
//!
//! Paper shape to reproduce: average ~4.5× / ~17× speedup and ~282× /
//! ~731× energy-efficiency gain over CPU / GPU; gains grow as the
//! vector gets sparser (CoSPARSE skips work, the vendor kernels touch
//! every nonzero); the dataflow switches to OP below ~1% density
//! (except the largest graph, pokec, which switches only at 0.1%).
//!
//! Usage: `cargo run --release -p bench --bin fig8`

use baselines::cpu::CpuModel;
use baselines::gpu::GpuModel;
use bench::{geomean, print_table, run_spmv_auto};
use sparse::generate::SuiteGraph;
use transmuter::Geometry;

const SWEEP: [f64; 4] = [0.001, 0.01, 0.1, 1.0];

fn main() {
    let geometry = Geometry::new(16, 16);
    let cpu = CpuModel::i7_6700k();
    let gpu = GpuModel::v100();
    println!("fig8: CoSPARSE (16x16) vs CPU (MKL-like) and GPU (cuSPARSE-like) SpMV");

    let mut all_cpu_speedups = Vec::new();
    let mut all_gpu_speedups = Vec::new();
    let mut all_cpu_eff = Vec::new();
    let mut all_gpu_eff = Vec::new();
    let mut rows = Vec::new();

    for g in SuiteGraph::SPMV_SET {
        let matrix = g.adjacency(0xF8).expect("suite generator");
        let (n, nnz) = (matrix.rows(), matrix.nnz());
        for (i, &d) in SWEEP.iter().enumerate() {
            let ours = run_spmv_auto(&matrix, geometry, d, 21 + i as u64);
            let c = cpu.spmv(n, n, nnz, d);
            let gp = gpu.spmv(n, n, nnz, d);
            let t = ours.report.seconds;
            let e = ours.report.joules();
            let (s_cpu, s_gpu) = (c.seconds / t, gp.seconds / t);
            let (e_cpu, e_gpu) = (c.joules / e, gp.joules / e);
            all_cpu_speedups.push(s_cpu);
            all_gpu_speedups.push(s_gpu);
            all_cpu_eff.push(e_cpu);
            all_gpu_eff.push(e_gpu);
            rows.push(vec![
                g.name().to_string(),
                format!("{d}"),
                format!("{}/{}", ours.software, ours.hardware),
                format!("{:.1}x", s_cpu),
                format!("{:.1}x", s_gpu),
                format!("{:.0}x", e_cpu),
                format!("{:.0}x", e_gpu),
            ]);
        }
    }
    print_table(
        "Fig 8 | CoSPARSE vs CPU/GPU SpMV (synthetic Table III analogues, scaled)",
        &[
            "graph",
            "density",
            "config",
            "vs CPU",
            "vs GPU",
            "eff vs CPU",
            "eff vs GPU",
        ],
        &rows,
    );
    println!(
        "\ngeomean speedup:     {:.1}x vs CPU (paper avg 4.5x), {:.1}x vs GPU (paper avg 17.3x)",
        geomean(&all_cpu_speedups),
        geomean(&all_gpu_speedups)
    );
    println!(
        "geomean energy gain: {:.0}x vs CPU (paper avg 282.5x), {:.0}x vs GPU (paper avg 730.6x)",
        geomean(&all_cpu_eff),
        geomean(&all_gpu_eff)
    );
}
