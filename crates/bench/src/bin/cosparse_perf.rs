//! `cosparse-perf` — reproducible host-performance harness.
//!
//! Unlike the `fig*` binaries (which report *simulated* cycles), this
//! harness times **wall-clock host throughput** of the runtime itself:
//! SpMV invocations per second and iterative-engine iterations per
//! second on synthetic and pokec-like matrices. It is the instrument
//! behind the ROADMAP's perf trajectory: every run emits
//! `BENCH_host.json`, and CI runs `--smoke` so regressions show up in
//! the artifact history.
//!
//! Methodology: each workload's **first pass is timed separately** as
//! its cold/build cost (plan construction, program lowering, steady-memo
//! population) and reported as `cold_per_sec`; the workload then runs
//! `WARMUP` more untimed passes before `REPEATS` timed passes, and the
//! **median** throughput is reported alongside min/max. The warmup is
//! sized so the steady-state memo (which needs ~32 misses on the
//! longest-limit-cycle workload before it engages) is populated before
//! sampling starts — cold-start outliers belong in `cold_per_sec`, not
//! in the sample min. Matrices and frontiers are seeded, so two runs on
//! the same host and build measure the same work.
//!
//! Usage:
//!   cosparse-perf [--smoke]
//!                 [--sim-only|--host-only|--serve-only|--formats-only|--reorder-only]
//!                 [--out PATH] [--baseline PATH] [--check PATH]
//!
//! Workloads come in four sections: the simulate-backend ones
//! (prefixed plainly), the `host_`-prefixed native-host-backend ones
//! ([`cosparse::ExecBackend::Host`] — real answers, no simulated
//! machine), the `serve_`/`independent_` multi-tenant QPS pair —
//! eight closed-loop client threads submitting a BFS/SSSP/PageRank mix
//! either through one [`GraphService`](cosparse::GraphService) over a
//! shared graph, or each query on a freshly built engine (the
//! no-sharing baseline the service must beat) — and the `fmt_`-prefixed
//! format sweep: a simulated-cycle crossover table over
//! (matrix family × frontier density × storage format × dataflow) plus
//! throughput workloads pinning each storage format's kernel path on
//! the matrix family its probe picks it for, in both backends.
//! The `reorder_`-prefixed section is the locality sweep: a
//! reorder × format crossover table of simulated cycles, L1 misses and
//! bank-conflict cycles per [`cosparse::ReorderKind`] on RMAT and
//! power-law families, plus throughput workloads with a pinned
//! reordering gating the vector-permute entry cost in both backends.
//! `--sim-only` / `--host-only` / `--serve-only` / `--formats-only` /
//! `--reorder-only` select a section, letting CI gate
//! them separately. `--smoke` shrinks repeats for CI artifacts;
//! `--baseline` embeds a previous report's `workloads` as `"baseline"`
//! in the output (used to commit before/after numbers in the same
//! file); `--check` compares each workload's median against a committed
//! report and exits non-zero when any regresses by more than 20%, and
//! for the `serve_*` workloads additionally when p50 latency grows by
//! more than 50% (p50 under closed-loop queueing is noisier than
//! aggregate QPS, so its gate is wider) — the CI perf gate (workloads
//! with no baseline entry
//! are skipped, so the sections gate independently). `--check` requires
//! full mode: smoke passes run too few calls to reach the
//! plan-cache/memo steady state the committed medians measure.
//!
//! Every workload reports `p50_ms`/`p99_ms` per unit of work: for the
//! spmv/iter workloads these derive from the per-pass rates (each pass
//! is one latency sample per unit), while the serve workloads sample
//! every individual query's submit→answer wall time across the timed
//! passes, so the tail a tenant actually observes is what lands in the
//! report (schema `cosparse-perf/3`).

use cosparse::balance::Balancing;
use cosparse::{
    CoSparse, ExecBackend, FormatKind, Frontier, Policy, ReorderKind, ServeConfig, SwConfig,
};
use graph::serve::{start_service, GraphQuery};
use graph::{pagerank::PageRank, sssp::Sssp, Engine};
use sparse::CooMatrix;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use transmuter::{EpochStats, ExecMode, Geometry, HwConfig, Machine, MicroArch};

struct Workload {
    name: &'static str,
    unit: &'static str,
    /// Units of work per timed pass (spmv calls or engine iterations).
    work: f64,
    /// Median/min/max throughput over the timed passes, units per second.
    median: f64,
    min: f64,
    max: f64,
    /// Throughput of the very first (cold) pass — the one that pays
    /// plan construction and program lowering. Excluded from the
    /// min/median/max samples; recorded so build cost stays visible.
    cold: f64,
    /// Latency percentiles per unit of work, milliseconds. For batch
    /// workloads each timed pass contributes one per-unit sample; the
    /// serve workloads sample every individual query instead.
    p50_ms: f64,
    p99_ms: f64,
    /// Epoch-commit counters accumulated by the workload's machine
    /// (proven replay-free / dynamically replayed / rolled back).
    epochs: EpochStats,
}

fn median_of(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite throughput"));
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

/// Nearest-rank percentile of `xs` (sorted in place); `p` in `(0, 1]`.
fn percentile(xs: &mut [f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let rank = (p * xs.len() as f64).ceil() as usize;
    xs[rank.clamp(1, xs.len()) - 1]
}

/// Times `pass` (returning its units of work) `repeats` times, after
/// one separately-timed cold pass (reported, not sampled) and `warmup`
/// further untimed passes. Latency percentiles come from the per-pass
/// per-unit times.
fn measure<F: FnMut() -> f64>(
    name: &'static str,
    unit: &'static str,
    warmup: usize,
    repeats: usize,
    pass: F,
) -> Workload {
    measure_with(name, unit, warmup, repeats, None, pass)
}

/// [`measure`] with an optional external latency-sample sink: when
/// `latencies` is given, the pass records one wall-clock sample (ms)
/// per unit of work into it, the sink is cleared after cold + warmup,
/// and the p50/p99 come from those per-unit samples instead of the
/// per-pass averages — the serve workloads use this to report the
/// latency an individual query observes, tail included.
fn measure_with<F: FnMut() -> f64>(
    name: &'static str,
    unit: &'static str,
    warmup: usize,
    repeats: usize,
    latencies: Option<&Mutex<Vec<f64>>>,
    mut pass: F,
) -> Workload {
    // The cold pass pays the one-time build cost (plan, programs, memo
    // population). Timing it separately keeps that cost visible without
    // letting it masquerade as a steady-state sample minimum.
    let t0 = Instant::now();
    let cold_work = pass();
    let cold = cold_work / t0.elapsed().as_secs_f64().max(1e-12);
    for _ in 0..warmup {
        let _ = pass();
    }
    if let Some(sink) = latencies {
        sink.lock().expect("latency sink").clear();
    }
    let mut work = 0.0;
    let mut rates = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let t0 = Instant::now();
        work = pass();
        let dt = t0.elapsed().as_secs_f64();
        rates.push(work / dt.max(1e-12));
    }
    let median = median_of(rates.clone());
    let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
    for r in &rates {
        lo = lo.min(*r);
        hi = hi.max(*r);
    }
    let mut samples: Vec<f64> = match latencies {
        Some(sink) => sink.lock().expect("latency sink").clone(),
        None => rates.iter().map(|r| 1e3 / r.max(1e-12)).collect(),
    };
    let p50_ms = percentile(&mut samples, 0.50);
    let p99_ms = percentile(&mut samples, 0.99);
    println!(
        "{name:<28} {median:>12.1} {unit}/s  (min {lo:.1}, max {hi:.1}, cold {cold:.1}, \
         p50 {p50_ms:.3} ms, p99 {p99_ms:.3} ms, work {work})"
    );
    Workload {
        name,
        unit,
        work,
        median,
        min: lo,
        max: hi,
        cold,
        p50_ms,
        p99_ms,
        epochs: EpochStats::default(),
    }
}

fn synthetic(n: usize, nnz: usize, seed: u64) -> CooMatrix {
    sparse::generate::uniform(n, n, nnz, seed).expect("valid synthetic matrix")
}

/// Pokec-like skew: power-law degree distribution, directed.
fn pokec_like(n: usize, nnz: usize) -> CooMatrix {
    sparse::generate::power_law(n, n, nnz, 1.1, 42).expect("valid power-law matrix")
}

/// A banded matrix — every row one 24-entry dense run, 4-row-aligned —
/// the clustered-column family whose probe steers the IP stream onto
/// the hierarchical bitmap.
fn banded(n: usize) -> CooMatrix {
    let mut triplets = Vec::new();
    for r in 0..n {
        let base = (r / 4) * 4 % (n - 24);
        for k in 0..24 {
            triplets.push((
                r as sparse::Idx,
                (base + k) as sparse::Idx,
                1.0 + ((r + k) % 7) as f32 * 0.125,
            ));
        }
    }
    CooMatrix::from_triplets(n, n, triplets).expect("valid banded matrix")
}

/// A block-structured matrix — two full 4x4 blocks per block row — the
/// family whose probe steers the IP stream onto BCSR.
fn blocked(n: usize) -> CooMatrix {
    let bn = n / 4;
    let mut triplets = Vec::new();
    for brow in 0..bn {
        for bcol in [brow, (brow * 7 + 3) % bn] {
            for i in 0..4 {
                for j in 0..4 {
                    triplets.push((
                        (brow * 4 + i) as sparse::Idx,
                        (bcol * 4 + j) as sparse::Idx,
                        0.5 + (i * 4 + j) as f32 * 0.0625,
                    ));
                }
            }
        }
    }
    CooMatrix::from_triplets(n, n, triplets).expect("valid blocked matrix")
}

/// An `n`-square matrix whose nonzeros all land in the top half of the
/// rows: under `EqualRows` balancing the bottom-half workers own only
/// empty rows and issue no memory traffic, which lets the static
/// epoch-dependence analyzer prove the program's epochs
/// single-mem-active-tile (replay-free commits).
fn synthetic_top_half(n: usize, nnz: usize, seed: u64) -> CooMatrix {
    let m = sparse::generate::uniform(n / 2, n, nnz, seed).expect("valid synthetic matrix");
    CooMatrix::from_triplets(n, n, m.iter().collect()).expect("re-embedded matrix")
}

fn machine() -> Machine {
    Machine::new(Geometry::new(2, 4), MicroArch::paper())
}

/// Steady-state SpMV throughput: one runtime, one matrix, repeated
/// invocations (the iterative-algorithm hot path).
fn spmv_pass(rt: &mut CoSparse, frontier: &Frontier, calls: usize) -> f64 {
    for _ in 0..calls {
        let out = rt.spmv(frontier).expect("simulation succeeds");
        std::hint::black_box(out.report.cycles);
    }
    calls as f64
}

/// Prints the runtime's pipeline-cache counters for the workload that
/// just ran: plan/program build counts and the scratch + steady-memo
/// hit rates. CI's perf-smoke job surfaces these lines so cache
/// regressions are visible alongside the throughput numbers.
fn print_cache_stats(rt: &CoSparse) {
    let cs = rt.cache_stats();
    let memo = cs.steady_memo;
    println!(
        "    caches: plans {} built / {} hit | programs dense {} built / {} hit, conv {}, \
         scratch {} built / {} hit | steady-memo {} hit / {} miss ({:.1}% hit)",
        cs.plan_builds,
        cs.plan_hits,
        cs.dense_program_builds,
        cs.dense_program_hits,
        cs.conversion_builds,
        cs.scratch_program_builds,
        cs.scratch_program_hits,
        memo.hits,
        memo.misses,
        memo.hit_rate() * 100.0,
    );
    println!(
        "    epochs: {} proven (replay-free) | {} replayed | {} rolled back",
        cs.epochs.proven, cs.epochs.replayed, cs.epochs.rolled_back,
    );
}

/// The simulate-backend workload section. `warmup` in full mode is
/// sized so cold pass + warmup ≥ 43 calls precede sampling: the
/// imbalanced workload's steady memo needs ~32 misses before it
/// engages, and samples must not straddle that transition.
fn run_sim_workloads(smoke: bool, out: &mut Vec<Workload>) {
    let (warmup, repeats) = if smoke { (1, 3) } else { (4, 7) };
    let calls = if smoke { 3 } else { 10 };

    // 1. Dense-frontier SpMV (IP/SC) on the 2048-vertex synthetic.
    {
        let m = synthetic(2048, 30_000, 4);
        let mut rt = CoSparse::new(&m, machine());
        rt.set_policy(Policy::Fixed(SwConfig::InnerProduct, HwConfig::Sc));
        let x = Frontier::Dense(sparse::generate::random_dense_vector(2048, 1));
        let mut w = measure("spmv_dense_2048", "spmv", warmup, repeats, || {
            spmv_pass(&mut rt, &x, calls)
        });
        w.epochs = rt.cache_stats().epochs;
        out.push(w);
        print_cache_stats(&rt);
    }

    // 2. Sparse-frontier SpMV (OP/PC) on the 2048-vertex synthetic.
    {
        let m = synthetic(2048, 30_000, 4);
        let mut rt = CoSparse::new(&m, machine());
        rt.set_policy(Policy::Fixed(SwConfig::OuterProduct, HwConfig::Pc));
        let sv = sparse::generate::random_sparse_vector(2048, 0.02, 9).expect("valid density");
        let x = Frontier::Sparse(sv);
        let mut w = measure("spmv_sparse_2048", "spmv", warmup, repeats, || {
            spmv_pass(&mut rt, &x, calls)
        });
        w.epochs = rt.cache_stats().epochs;
        out.push(w);
        print_cache_stats(&rt);
    }

    // 3. Engine iterations/sec: PageRank on the 2048-vertex synthetic —
    //    the acceptance workload. Dense frontier every iteration, same
    //    matrix throughout: pure steady state.
    {
        let m = synthetic(2048, 30_000, 4);
        let iters = if smoke { 6 } else { 20 };
        let pr = PageRank::new(0.85, iters);
        let mut engine = Engine::new(&m, machine());
        let mut w = measure("engine_pagerank_2048", "iter", warmup, repeats, || {
            let r = engine.run(&pr).expect("pagerank converges");
            r.iterations.len() as f64
        });
        w.epochs = engine.runtime().cache_stats().epochs;
        out.push(w);
        print_cache_stats(engine.runtime());
    }

    // 4. Engine iterations/sec: SSSP on a pokec-like power-law graph —
    //    sparse→dense→sparse frontier ramp, both dataflows exercised.
    {
        let (n, nnz) = if smoke {
            (2048, 16_000)
        } else {
            (8192, 120_000)
        };
        let m = pokec_like(n, nnz);
        let sssp = Sssp::new(0);
        let mut engine = Engine::new(&m, machine());
        let mut w = measure("engine_sssp_pokec_like", "iter", warmup, repeats, || {
            let r = engine.run(&sssp).expect("sssp converges");
            r.iterations.len().max(1) as f64
        });
        w.epochs = engine.runtime().cache_stats().epochs;
        out.push(w);
        print_cache_stats(engine.runtime());
    }

    // 5. One-shot OP SpMV: every call presents a *distinct* sparse
    //    frontier, so the scratch program can never be reused and the
    //    steady memo never engages — the pure per-call lowering path
    //    the single-pass kernel→Program pipeline keeps cheap.
    {
        let m = synthetic(2048, 30_000, 4);
        let mut rt = CoSparse::new(&m, machine());
        rt.set_policy(Policy::Fixed(SwConfig::OuterProduct, HwConfig::Pc));
        let frontiers: Vec<Frontier> = (0..calls.max(2) as u64)
            .map(|i| {
                Frontier::Sparse(
                    sparse::generate::random_sparse_vector(2048, 0.02, 100 + i)
                        .expect("valid density"),
                )
            })
            .collect();
        let mut w = measure("spmv_op_oneshot_2048", "spmv", warmup, repeats, || {
            for f in &frontiers {
                let out = rt.spmv(f).expect("simulation succeeds");
                std::hint::black_box(out.report.cycles);
            }
            frontiers.len() as f64
        });
        w.epochs = rt.cache_stats().epochs;
        out.push(w);
        print_cache_stats(&rt);
    }

    // 6. Row-imbalanced IP SpMV (IP/SC, EqualRows): every nonzero lives
    //    in the top row half, so the bottom tile's workers are memory-
    //    silent and the analyzer proves each epoch single-mem-active-
    //    tile — the `epochs: N proven` cache-stats line below is the
    //    replay-free-commit acceptance signal.
    {
        let half = synthetic_top_half(2048, 24_000, 4);
        // Pin ParallelTiles: with every epoch statically proven, the
        // epoch driver commits directly (no threads, no replay), so the
        // replay-free path is exercised deterministically even on a
        // single-CPU host where Auto would stay sequential.
        let mut mach = machine();
        mach.set_exec_mode(ExecMode::ParallelTiles);
        let mut rt = CoSparse::new(&half, mach);
        rt.set_policy(Policy::Fixed(SwConfig::InnerProduct, HwConfig::Sc));
        rt.set_balancing(Balancing::EqualRows);
        let x = Frontier::Dense(sparse::generate::random_dense_vector(2048, 1));
        let mut w = measure("spmv_ip_imbalanced_2048", "spmv", warmup, repeats, || {
            spmv_pass(&mut rt, &x, calls)
        });
        w.epochs = rt.cache_stats().epochs;
        out.push(w);
        print_cache_stats(&rt);
    }
}

/// The native-host-backend workload section ([`ExecBackend::Host`]): the
/// same matrices and dataflows as the simulate section, answered
/// directly against host memory. Host passes are orders of magnitude
/// faster, so each pass batches more calls for timing resolution.
fn run_host_workloads(smoke: bool, out: &mut Vec<Workload>) {
    let (warmup, repeats) = if smoke { (1, 3) } else { (2, 7) };
    let calls = if smoke { 10 } else { 200 };

    // 1. Dense-frontier SpMV (IP), host backend.
    {
        let m = synthetic(2048, 30_000, 4);
        let mut rt = CoSparse::new(&m, machine());
        rt.set_backend(ExecBackend::Host);
        rt.set_policy(Policy::Fixed(SwConfig::InnerProduct, HwConfig::Sc));
        let x = Frontier::Dense(sparse::generate::random_dense_vector(2048, 1));
        let w = measure("host_spmv_dense_2048", "spmv", warmup, repeats, || {
            spmv_pass(&mut rt, &x, calls)
        });
        out.push(w);
        print_cache_stats(&rt);
    }

    // 2. Sparse-frontier SpMV (OP), host backend.
    {
        let m = synthetic(2048, 30_000, 4);
        let mut rt = CoSparse::new(&m, machine());
        rt.set_backend(ExecBackend::Host);
        rt.set_policy(Policy::Fixed(SwConfig::OuterProduct, HwConfig::Pc));
        let sv = sparse::generate::random_sparse_vector(2048, 0.02, 9).expect("valid density");
        let x = Frontier::Sparse(sv);
        let w = measure("host_spmv_sparse_2048", "spmv", warmup, repeats, || {
            spmv_pass(&mut rt, &x, calls)
        });
        out.push(w);
        print_cache_stats(&rt);
    }

    // 3. PageRank on the host backend.
    {
        let m = synthetic(2048, 30_000, 4);
        let iters = if smoke { 6 } else { 20 };
        let pr = PageRank::new(0.85, iters);
        let mut engine = Engine::new(&m, machine());
        engine.set_backend(ExecBackend::Host);
        let w = measure("host_engine_pagerank_2048", "iter", warmup, repeats, || {
            let r = engine.run(&pr).expect("pagerank converges");
            r.iterations.len() as f64
        });
        out.push(w);
        print_cache_stats(engine.runtime());
    }

    // 4. SSSP on the pokec-like power-law graph, host backend — the
    //    acceptance workload: real per-iteration answers at host speed
    //    against the simulate section's `engine_sssp_pokec_like`.
    {
        let (n, nnz) = if smoke {
            (2048, 16_000)
        } else {
            (8192, 120_000)
        };
        let m = pokec_like(n, nnz);
        let sssp = Sssp::new(0);
        let mut engine = Engine::new(&m, machine());
        engine.set_backend(ExecBackend::Host);
        let w = measure(
            "host_engine_sssp_pokec_like",
            "iter",
            warmup,
            repeats,
            || {
                let r = engine.run(&sssp).expect("sssp converges");
                r.iterations.len().max(1) as f64
            },
        );
        out.push(w);
        print_cache_stats(engine.runtime());
    }
}

/// The query mix every serve client submits closed-loop: a BFS, an
/// SSSP and a PageRank snapshot — the three serving-layer query types,
/// mixing sparse-ramp and always-dense engine loops on each worker.
fn query_mix() -> [GraphQuery; 3] {
    [
        GraphQuery::Bfs { source: 0 },
        GraphQuery::Sssp { source: 0 },
        GraphQuery::PageRank {
            damping: 0.85,
            iterations: 10,
        },
    ]
}

/// The multi-tenant QPS section: `CLIENTS` closed-loop client threads
/// submit [`query_mix`] repeatedly, once through a single
/// [`GraphService`](cosparse::GraphService) over one shared graph
/// (`serve_mixed_qps_8c`) and once with every query building its own
/// engine from the raw matrix (`independent_mixed_qps_8c` — the
/// no-sharing baseline). Both run the host backend; the shared-graph
/// amortization (layout, CSC, plans, dense programs built once) is what
/// the serve workload's QPS lead and cache-stats line make visible.
fn run_serve_workloads(smoke: bool, out: &mut Vec<Workload>) {
    const CLIENTS: usize = 8;
    let (warmup, repeats) = if smoke { (1, 3) } else { (2, 7) };
    let rounds = if smoke { 1 } else { 4 };
    let (n, nnz) = if smoke { (1024, 8_000) } else { (2048, 16_000) };
    let adj = pokec_like(n, nnz);
    let geometry = Geometry::new(2, 4);
    let queries_per_pass = (CLIENTS * rounds * query_mix().len()) as f64;

    // 1. One GraphService over one shared graph; every query's
    //    submit→answer wall time is a latency sample.
    let serve_median = {
        let graph = Engine::shared_graph(&adj, geometry, MicroArch::paper());
        let service = start_service(
            Arc::clone(&graph),
            ServeConfig {
                workers: 4,
                batch: 4,
                queue_cap: 256,
                backend: ExecBackend::Host,
            },
        );
        let lat = Mutex::new(Vec::new());
        let w = measure_with(
            "serve_mixed_qps_8c",
            "query",
            warmup,
            repeats,
            Some(&lat),
            || {
                std::thread::scope(|s| {
                    for _ in 0..CLIENTS {
                        let service = &service;
                        let lat = &lat;
                        s.spawn(move || {
                            for _ in 0..rounds {
                                for q in query_mix() {
                                    let t0 = Instant::now();
                                    service.submit(q.into_job()).wait().expect("query");
                                    lat.lock()
                                        .expect("latency sink")
                                        .push(t0.elapsed().as_secs_f64() * 1e3);
                                }
                            }
                        });
                    }
                });
                queries_per_pass
            },
        );
        let median = w.median;
        out.push(w);
        // The amortization signal: one plan/program build total across
        // all workers and passes, everything after the cold pass a hit.
        let cs = graph.cache_stats();
        println!(
            "    shared-graph caches: plans {} built / {} hit | dense {} built / {} hit | \
             scratch {} built / {} hit | conv {}",
            cs.plan_builds,
            cs.plan_hits,
            cs.dense_program_builds,
            cs.dense_program_hits,
            cs.scratch_program_builds,
            cs.scratch_program_hits,
            cs.conversion_builds,
        );
        service.shutdown();
        median
    };

    // 2. The same client load with zero sharing: each query pays graph
    //    ingestion, layout/CSC and plan construction from scratch.
    {
        let lat = Mutex::new(Vec::new());
        let w = measure_with(
            "independent_mixed_qps_8c",
            "query",
            warmup,
            repeats,
            Some(&lat),
            || {
                std::thread::scope(|s| {
                    for _ in 0..CLIENTS {
                        let adj = &adj;
                        let lat = &lat;
                        s.spawn(move || {
                            for _ in 0..rounds {
                                for q in query_mix() {
                                    let t0 = Instant::now();
                                    let graph =
                                        Engine::shared_graph(adj, geometry, MicroArch::paper());
                                    let mut session = graph.session();
                                    session.set_backend(ExecBackend::Host);
                                    q.run(&mut session).expect("query");
                                    lat.lock()
                                        .expect("latency sink")
                                        .push(t0.elapsed().as_secs_f64() * 1e3);
                                }
                            }
                        });
                    }
                });
                queries_per_pass
            },
        );
        if w.median > 0.0 {
            println!(
                "    serve vs independent: {:.2}x QPS from the shared graph",
                serve_median / w.median
            );
        }
        out.push(w);
    }
}

/// Simulated cycles of one warm SpMV under a pinned
/// (dataflow, hardware, format) triple — the plan bind, format pack and
/// reconfiguration are paid on a discarded cold call, so the number is
/// the steady-state kernel cost the decision tree weighs.
fn warm_cycles(
    m: &CooMatrix,
    x: &Frontier,
    sw: SwConfig,
    hw: HwConfig,
    format: Option<FormatKind>,
) -> u64 {
    warm_report(m, x, sw, hw, format, None).cycles
}

/// Full [`transmuter::SimReport`] of one warm SpMV under a pinned
/// (dataflow, hardware, format, reorder) quadruple — the reorder sweep
/// reads `stats.l1_misses` and `stats.conflict_cycles` off this, not
/// just the cycle count.
fn warm_report(
    m: &CooMatrix,
    x: &Frontier,
    sw: SwConfig,
    hw: HwConfig,
    format: Option<FormatKind>,
    reorder: Option<ReorderKind>,
) -> transmuter::SimReport {
    let mut rt = CoSparse::new(m, machine());
    rt.set_policy(Policy::Fixed(sw, hw));
    rt.set_format_override(format);
    rt.set_reorder_override(reorder);
    let _cold = rt.spmv(x).expect("sweep spmv");
    rt.spmv(x).expect("sweep spmv").report
}

/// The crossover table: simulated cycles per SpMV for every storage
/// format × dataflow over three matrix families and a frontier-density
/// ramp. This is where the format axis earns its place in the decision
/// tree — the banded family's bitmap column and the blocked family's
/// BCSR column undercut both the COO stream and the OP/CSC merge on
/// dense frontiers, while the uniform family stays cheapest on the
/// paper's resident COO/CSC pair.
fn format_crossover_table(smoke: bool) {
    let n = if smoke { 512 } else { 2048 };
    let families: [(&str, CooMatrix); 3] = [
        ("uniform", synthetic(n, n * 8, 4)),
        ("banded", banded(n)),
        ("blocked", blocked(n)),
    ];
    println!(
        "\nformat_sweep: simulated cycles per warm SpMV (family x density x format x dataflow)"
    );
    println!(
        "  {:<8} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "family", "density", "IP/coo", "IP/bitmap", "IP/bcsr", "OP/csc"
    );
    let mut banded_dense = (0u64, 0u64); // (bitmap, csc) for the summary line
    for (name, m) in &families {
        for density in [0.01, 0.1, 1.0] {
            let x = if density >= 1.0 {
                Frontier::Dense(sparse::generate::random_dense_vector(n, 1))
            } else {
                Frontier::Sparse(
                    sparse::generate::random_sparse_vector(n, density, 9).expect("valid density"),
                )
            };
            let coo = warm_cycles(
                m,
                &x,
                SwConfig::InnerProduct,
                HwConfig::Sc,
                Some(FormatKind::Coo),
            );
            let bitmap = warm_cycles(
                m,
                &x,
                SwConfig::InnerProduct,
                HwConfig::Sc,
                Some(FormatKind::Bitmap),
            );
            let bcsr = warm_cycles(
                m,
                &x,
                SwConfig::InnerProduct,
                HwConfig::Sc,
                Some(FormatKind::Bcsr),
            );
            let csc = warm_cycles(m, &x, SwConfig::OuterProduct, HwConfig::Pc, None);
            println!("  {name:<8} {density:>8.2} {coo:>12} {bitmap:>12} {bcsr:>12} {csc:>12}");
            if *name == "banded" && density >= 1.0 {
                banded_dense = (bitmap, csc);
            }
        }
    }
    let (bitmap, csc) = banded_dense;
    if bitmap > 0 {
        println!(
            "  crossover: banded/dense bitmap at {:.2}x the OP/CSC cycles \
             ({} vs {} — the non-resident format wins the family)",
            bitmap as f64 / csc.max(1) as f64,
            bitmap,
            csc,
        );
    }
}

/// The format-sweep workload section: the crossover table above, then
/// throughput workloads pinning each format's kernel path on the matrix
/// family its probe picks it for — `fmt_csc_banded_2048` is the CSC
/// regression gate (`--check` fails it like any other workload), the
/// bitmap/BCSR pairs cover both the simulate and host backends.
fn run_format_workloads(smoke: bool, out: &mut Vec<Workload>) {
    format_crossover_table(smoke);
    let (warmup, repeats) = if smoke { (1, 3) } else { (4, 7) };
    let calls = if smoke { 3 } else { 10 };
    let host_calls = if smoke { 10 } else { 200 };
    println!();

    // 1. The OP/CSC merge on the banded family — the resident sparse
    //    path the new formats have to beat, gated against regression.
    {
        let m = banded(2048);
        let mut rt = CoSparse::new(&m, machine());
        rt.set_policy(Policy::Fixed(SwConfig::OuterProduct, HwConfig::Pc));
        let sv = sparse::generate::random_sparse_vector(2048, 0.02, 9).expect("valid density");
        let x = Frontier::Sparse(sv);
        let mut w = measure("fmt_csc_banded_2048", "spmv", warmup, repeats, || {
            spmv_pass(&mut rt, &x, calls)
        });
        w.epochs = rt.cache_stats().epochs;
        out.push(w);
        print_cache_stats(&rt);
    }

    // 2/3. The bitmap kernel on the banded family, simulate + host.
    for (name, backend) in [
        ("fmt_bitmap_banded_2048", ExecBackend::Simulate),
        ("host_fmt_bitmap_banded_2048", ExecBackend::Host),
    ] {
        let m = banded(2048);
        let mut rt = CoSparse::new(&m, machine());
        rt.set_backend(backend);
        rt.set_policy(Policy::Fixed(SwConfig::InnerProduct, HwConfig::Sc));
        rt.set_format_override(Some(FormatKind::Bitmap));
        let x = Frontier::Dense(sparse::generate::random_dense_vector(2048, 1));
        let c = if backend == ExecBackend::Host {
            host_calls
        } else {
            calls
        };
        let mut w = measure(name, "spmv", warmup, repeats, || spmv_pass(&mut rt, &x, c));
        w.epochs = rt.cache_stats().epochs;
        out.push(w);
        print_cache_stats(&rt);
    }

    // 4/5. The BCSR kernel on the blocked family, simulate + host.
    for (name, backend) in [
        ("fmt_bcsr_blocked_2048", ExecBackend::Simulate),
        ("host_fmt_bcsr_blocked_2048", ExecBackend::Host),
    ] {
        let m = blocked(2048);
        let mut rt = CoSparse::new(&m, machine());
        rt.set_backend(backend);
        rt.set_policy(Policy::Fixed(SwConfig::InnerProduct, HwConfig::Sc));
        rt.set_format_override(Some(FormatKind::Bcsr));
        let x = Frontier::Dense(sparse::generate::random_dense_vector(2048, 1));
        let c = if backend == ExecBackend::Host {
            host_calls
        } else {
            calls
        };
        let mut w = measure(name, "spmv", warmup, repeats, || spmv_pass(&mut rt, &x, c));
        w.epochs = rt.cache_stats().epochs;
        out.push(w);
        print_cache_stats(&rt);
    }
}

/// The reorder × format crossover table: simulated cycles, L1 misses
/// and bank-conflict cycles of a warm SpMV under every [`ReorderKind`],
/// for the IP/COO stream (dense frontier) and the OP/CSC merge (sparse
/// frontier), on an RMAT and a power-law family. This is the
/// evaluation harness for the fourth reconfiguration axis: the summary
/// line reports the best locality win each family shows over arrival
/// order, which is what the acceptance criterion gates on.
fn reorder_crossover_table(smoke: bool) {
    let families: [(&str, CooMatrix); 2] = if smoke {
        [
            (
                "rmat",
                sparse::generate::rmat(11, 30_000, Default::default(), 0xC0).unwrap(),
            ),
            ("power_law", pokec_like(2048, 16_000)),
        ]
    } else {
        [
            (
                "rmat",
                sparse::generate::rmat(14, 240_000, Default::default(), 0xC0).unwrap(),
            ),
            (
                "power_law",
                sparse::generate::power_law(16384, 16384, 240_000, 1.1, 42).unwrap(),
            ),
        ]
    };
    println!("\nreorder_sweep: simulated warm SpMV (family x format x reorder)");
    println!(
        "  {:<10} {:<8} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "family", "reorder", "IP/coo cyc", "IP l1_miss", "OP/csc cyc", "OP l1_miss", "OP conflict"
    );
    for (name, m) in &families {
        let n = m.cols();
        let dense = Frontier::Dense(sparse::generate::random_dense_vector(n, 1));
        let sv = sparse::generate::random_sparse_vector(n, 0.02, 9).expect("valid density");
        let sparse_x = Frontier::Sparse(sv);
        // (l1_misses under IP, conflict_cycles under OP) per kind, for
        // the summary reduction below.
        let mut ip_miss = [0u64; 4];
        let mut op_conflict = [0u64; 4];
        let mut op_miss = [0u64; 4];
        for (slot, kind) in ReorderKind::ALL.into_iter().enumerate() {
            let ip = warm_report(
                m,
                &dense,
                SwConfig::InnerProduct,
                HwConfig::Sc,
                Some(FormatKind::Coo),
                Some(kind),
            );
            let op = warm_report(
                m,
                &sparse_x,
                SwConfig::OuterProduct,
                HwConfig::Pc,
                None,
                Some(kind),
            );
            ip_miss[slot] = ip.stats.l1_misses;
            op_miss[slot] = op.stats.l1_misses;
            op_conflict[slot] = op.stats.conflict_cycles;
            println!(
                "  {name:<10} {:<8} {:>12} {:>12} {:>12} {:>12} {:>12}",
                kind.name(),
                ip.cycles,
                ip.stats.l1_misses,
                op.cycles,
                op.stats.l1_misses,
                op.stats.conflict_cycles,
            );
        }
        // The acceptance line: best candidate's miss/conflict reduction
        // against arrival order.
        let best = |xs: &[u64; 4]| {
            ReorderKind::ALL[1..]
                .iter()
                .zip(&xs[1..])
                .min_by_key(|&(_, v)| *v)
                .map(|(k, &v)| (k.name(), v))
                .expect("three candidates")
        };
        let (ip_kind, ip_best) = best(&ip_miss);
        let (op_kind, op_best) = best(&op_conflict);
        let pct = |arrival: u64, v: u64| {
            if arrival == 0 {
                0.0
            } else {
                100.0 * (arrival as f64 - v as f64) / arrival as f64
            }
        };
        println!(
            "  locality: {name} IP l1-miss {:+.1}% ({ip_kind} vs arrival), \
             OP conflict-cycles {:+.1}% ({op_kind} vs arrival)",
            pct(ip_miss[0], ip_best),
            pct(op_conflict[0], op_best),
        );
    }
}

/// The reorder workload section: the crossover table above, then
/// throughput workloads with a pinned reordering so the vector-permute
/// entry cost and the reordered-operand cache stay under the `--check`
/// regression gate in both backends.
fn run_reorder_workloads(smoke: bool, out: &mut Vec<Workload>) {
    reorder_crossover_table(smoke);
    let (warmup, repeats) = if smoke { (1, 3) } else { (4, 7) };
    let calls = if smoke { 3 } else { 10 };
    let host_calls = if smoke { 10 } else { 200 };
    println!();

    // 1. RCM-pinned IP/COO stream on the power-law family, simulate:
    //    gates the reordered image build + permuted dense stream.
    {
        let m = pokec_like(2048, 16_000);
        let mut rt = CoSparse::new(&m, machine());
        rt.set_policy(Policy::Fixed(SwConfig::InnerProduct, HwConfig::Sc));
        rt.set_reorder_override(Some(ReorderKind::Rcm));
        let x = Frontier::Dense(sparse::generate::random_dense_vector(2048, 1));
        let mut w = measure("reorder_rcm_ip_pokec_2048", "spmv", warmup, repeats, || {
            spmv_pass(&mut rt, &x, calls)
        });
        w.epochs = rt.cache_stats().epochs;
        out.push(w);
        print_cache_stats(&rt);
    }

    // 2. Window-cluster-pinned OP/CSC merge with a sparse frontier,
    //    simulate: gates the active-list permutation on the hot path
    //    (every call maps and re-sorts the frontier's indices).
    {
        let m = pokec_like(2048, 16_000);
        let mut rt = CoSparse::new(&m, machine());
        rt.set_policy(Policy::Fixed(SwConfig::OuterProduct, HwConfig::Pc));
        rt.set_reorder_override(Some(ReorderKind::WindowCluster));
        let sv = sparse::generate::random_sparse_vector(2048, 0.02, 9).expect("valid density");
        let x = Frontier::Sparse(sv);
        let mut w = measure(
            "reorder_window_op_pokec_2048",
            "spmv",
            warmup,
            repeats,
            || spmv_pass(&mut rt, &x, calls),
        );
        w.epochs = rt.cache_stats().epochs;
        out.push(w);
        print_cache_stats(&rt);
    }

    // 3. RCM-pinned host-backend SpMV: the host path computes in the
    //    original index space, so this workload gates the pure
    //    plan-rekey + permute overhead a reordering adds to real
    //    answers.
    {
        let m = pokec_like(2048, 16_000);
        let mut rt = CoSparse::new(&m, machine());
        rt.set_backend(ExecBackend::Host);
        rt.set_policy(Policy::Fixed(SwConfig::InnerProduct, HwConfig::Sc));
        rt.set_reorder_override(Some(ReorderKind::Rcm));
        let x = Frontier::Dense(sparse::generate::random_dense_vector(2048, 1));
        let w = measure(
            "host_reorder_rcm_pokec_2048",
            "spmv",
            warmup,
            repeats,
            || spmv_pass(&mut rt, &x, host_calls),
        );
        out.push(w);
        print_cache_stats(&rt);
    }
}

#[allow(clippy::fn_params_excessive_bools)]
fn run_workloads(
    smoke: bool,
    sim: bool,
    host: bool,
    serve: bool,
    formats: bool,
    reorder: bool,
) -> Vec<Workload> {
    let mut out = Vec::new();
    if sim {
        run_sim_workloads(smoke, &mut out);
    }
    if host {
        run_host_workloads(smoke, &mut out);
    }
    if serve {
        run_serve_workloads(smoke, &mut out);
    }
    if formats {
        run_format_workloads(smoke, &mut out);
    }
    if reorder {
        run_reorder_workloads(smoke, &mut out);
    }
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn workloads_json(workloads: &[Workload], indent: &str) -> String {
    let mut s = String::from("[\n");
    for (i, w) in workloads.iter().enumerate() {
        let comma = if i + 1 < workloads.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "{indent}  {{\"name\": \"{}\", \"unit\": \"{}\", \"work_per_pass\": {}, \
             \"median_per_sec\": {:.3}, \"min_per_sec\": {:.3}, \"max_per_sec\": {:.3}, \
             \"cold_per_sec\": {:.3}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \
             \"epochs_proven\": {}, \"epochs_replayed\": {}, \"epochs_rolled_back\": {}}}{comma}",
            json_escape(w.name),
            json_escape(w.unit),
            w.work,
            w.median,
            w.min,
            w.max,
            w.cold,
            w.p50_ms,
            w.p99_ms,
            w.epochs.proven,
            w.epochs.replayed,
            w.epochs.rolled_back,
        );
    }
    let _ = write!(s, "{indent}]");
    s
}

/// Pulls the `"workloads"` array out of a previously written report so
/// it can be embedded verbatim as the new report's baseline.
fn extract_workloads(report: &str) -> Option<String> {
    let key = "\"workloads\":";
    let start = report.find(key)? + key.len();
    let rest = &report[start..];
    let open = rest.find('[')?;
    let mut depth = 0usize;
    for (i, c) in rest[open..].char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(rest[open..open + i + 1].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// One baseline entry: `(name, median_per_sec, p50_ms)`. `p50_ms` is 0
/// for reports written before schema 2.
fn parse_medians(report: &str) -> Vec<(String, f64, f64)> {
    let Some(arr) = extract_workloads(report) else {
        return Vec::new();
    };
    let num_field = |obj: &str, key: &str| {
        obj.split(key)
            .nth(1)
            .and_then(|s| s.split([',', '}']).next())
            .and_then(|s| s.trim().parse::<f64>().ok())
    };
    let mut out = Vec::new();
    for obj in arr.split('{').skip(1) {
        let name = obj
            .split("\"name\": \"")
            .nth(1)
            .and_then(|s| s.split('"').next());
        let median = num_field(obj, "\"median_per_sec\": ");
        let p50 = num_field(obj, "\"p50_ms\": ").unwrap_or(0.0);
        if let (Some(n), Some(m)) = (name, median) {
            out.push((n.to_string(), m, p50));
        }
    }
    out
}

/// Compares measured medians against a committed report; returns false
/// when any shared workload's throughput regressed by more than 20%,
/// or when a `serve_*` workload's p50 latency grew by more than 50%
/// (tenants feel latency, not just aggregate QPS; the wider margin
/// absorbs queue-wait noise under closed-loop load).
fn check_against(workloads: &[Workload], path: &str) -> bool {
    let base = std::fs::read_to_string(path).expect("read check baseline");
    let medians = parse_medians(&base);
    assert!(!medians.is_empty(), "no workloads found in {path}");
    println!("\nchecking against {path} (fail below 0.8x baseline median; serve_* also above 1.5x baseline p50):");
    let mut ok = true;
    for w in workloads {
        match medians.iter().find(|(n, _, _)| n == w.name) {
            Some((_, base_median, base_p50)) if *base_median > 0.0 => {
                let ratio = w.median / base_median;
                let mut pass = ratio >= 0.8;
                let mut detail = String::new();
                if w.name.starts_with("serve_") && *base_p50 > 0.0 && w.p50_ms > 0.0 {
                    let lat_ratio = w.p50_ms / base_p50;
                    let _ = write!(detail, ", p50 {lat_ratio:.3}x");
                    pass &= lat_ratio <= 1.5;
                }
                println!(
                    "  {:<28} {ratio:>7.3}x baseline{detail}  {}",
                    w.name,
                    if pass { "ok" } else { "REGRESSION" }
                );
                ok &= pass;
            }
            _ => println!("  {:<28} (no baseline entry, skipped)", w.name),
        }
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let host_only = args.iter().any(|a| a == "--host-only");
    let sim_only = args.iter().any(|a| a == "--sim-only");
    let serve_only = args.iter().any(|a| a == "--serve-only");
    let formats_only = args.iter().any(|a| a == "--formats-only");
    let reorder_only = args.iter().any(|a| a == "--reorder-only");
    assert!(
        [host_only, sim_only, serve_only, formats_only, reorder_only]
            .iter()
            .filter(|b| **b)
            .count()
            <= 1,
        "--host-only, --sim-only, --serve-only, --formats-only and --reorder-only \
         are mutually exclusive"
    );
    let arg_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_host.json".to_string());
    let baseline = arg_value("--baseline")
        .and_then(|p| std::fs::read_to_string(p).ok())
        .and_then(|s| extract_workloads(&s));

    println!(
        "cosparse-perf ({}): wall-clock host throughput, median of repeated passes",
        if smoke { "smoke" } else { "full" }
    );
    let workloads = run_workloads(
        smoke,
        !host_only && !serve_only && !formats_only && !reorder_only,
        !sim_only && !serve_only && !formats_only && !reorder_only,
        !sim_only && !host_only && !formats_only && !reorder_only,
        !sim_only && !host_only && !serve_only && !reorder_only,
        !sim_only && !host_only && !serve_only && !formats_only,
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"cosparse-perf/3\",");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    if let Some(base) = baseline {
        let _ = writeln!(json, "  \"baseline\": {base},");
    }
    let _ = writeln!(
        json,
        "  \"workloads\": {}",
        workloads_json(&workloads, "  ")
    );
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write report");
    println!("\nwrote {out_path}");

    if let Some(path) = arg_value("--check") {
        if smoke {
            eprintln!(
                "--check needs full mode: smoke passes too few calls to reach the \
                 steady state the committed full-mode baseline measures"
            );
            std::process::exit(2);
        }
        if !check_against(&workloads, &path) {
            eprintln!("perf check failed: median regression >20% against {path}");
            std::process::exit(1);
        }
    }
}
