//! Ablations of the design choices DESIGN.md §5 calls out (beyond the
//! paper's own Figure 7 balancing ablation):
//!
//! 1. vblock (vertical) tiling on/off for the inner product in SC mode;
//! 2. the L2 stride prefetcher on/off (Table II lists it; this shows
//!    how much of IP's streaming performance it carries);
//! 3. the outer product's SPM spill threshold (how much of the merge
//!    heap must live in SPM before PS stops paying off).
//!
//! Usage: `cargo run --release -p bench --bin ablation`

use bench::{print_table, scale};
use cosparse::balance::{ip_partitions, op_tile_partitions, Balancing};
use cosparse::kernels::{ip, op};
use cosparse::{Layout, OpProfile};
use sparse::partition::VBlocks;
use sparse::{CscMatrix, Idx};
use transmuter::{Geometry, HwConfig, Machine, MicroArch};

fn main() {
    let s = scale();
    let n = 524_288 / s;
    let nnz = 4_000_000 / s;
    let matrix = sparse::generate::uniform(n, n, nnz, 0xAB1).expect("generator");
    let geometry = Geometry::new(4, 8);
    println!("ablations on N={n}, nnz={nnz}, 4x8 system (scale = {s})");

    // --- 1. vblock tiling for IP/SC -------------------------------------
    let layout = Layout::new(n, n, nnz, geometry, 1);
    let partition = ip_partitions(&matrix.row_counts(), geometry, Balancing::NnzBalanced);
    let mut rows = Vec::new();
    let cache_words = geometry.pes_per_tile() * 4096 / 4;
    for (name, vblocks) in [
        ("no tiling", VBlocks::whole(n)),
        ("L1-sized vblocks", VBlocks::new(n, cache_words)),
        ("half-L1 vblocks", VBlocks::new(n, cache_words / 2)),
        ("quarter-L1 vblocks", VBlocks::new(n, cache_words / 4)),
    ] {
        let mut machine = Machine::new(geometry, MicroArch::paper());
        machine.reconfigure(HwConfig::Sc);
        let params = ip::IpParams {
            layout: &layout,
            partition: &partition,
            vblocks: &vblocks,
            use_spm: false,
            active: None,
            profile: OpProfile::scalar(),
        };
        let r = machine
            .run(ip::streams(&matrix, geometry, params))
            .expect("run");
        rows.push(vec![
            name.to_string(),
            r.cycles.to_string(),
            format!("{:.3}", r.stats.l1_hit_rate()),
            format!("{:.3}", r.stats.l2_hit_rate()),
            r.stats.hbm_line_reads.to_string(),
        ]);
    }
    print_table(
        "Ablation 1 | IP/SC vertical tiling (paper §III-B: \"not required for SC but beneficial\")",
        &["vblocks", "cycles", "l1 hit", "l2 hit", "hbm lines"],
        &rows,
    );

    // --- 2. stride prefetcher on/off ------------------------------------
    let mut rows = Vec::new();
    for (name, prefetch) in [("prefetch on", true), ("prefetch off", false)] {
        let mut ua = MicroArch::paper();
        ua.prefetch = prefetch;
        let mut machine = Machine::new(geometry, ua);
        machine.reconfigure(HwConfig::Sc);
        let vblocks = VBlocks::new(n, cache_words);
        let params = ip::IpParams {
            layout: &layout,
            partition: &partition,
            vblocks: &vblocks,
            use_spm: false,
            active: None,
            profile: OpProfile::scalar(),
        };
        let r = machine
            .run(ip::streams(&matrix, geometry, params))
            .expect("run");
        rows.push(vec![
            name.to_string(),
            r.cycles.to_string(),
            r.stats.prefetches.to_string(),
            r.stats.mem_stall_cycles.to_string(),
        ]);
    }
    print_table(
        "Ablation 2 | L2 stride prefetcher (IP/SC streaming)",
        &["config", "cycles", "prefetches", "mem stalls"],
        &rows,
    );

    // --- 3. OP SPM spill threshold --------------------------------------
    let csc = CscMatrix::from(&matrix);
    let tile_parts = op_tile_partitions(&matrix.row_counts(), geometry, Balancing::NnzBalanced);
    let frontier: Vec<Idx> = sparse::generate::random_sparse_vector(n, 0.04, 0xAB2)
        .expect("generator")
        .iter()
        .map(|(i, _)| i)
        .collect();
    let mut rows = Vec::new();
    for (name, cap) in [
        ("full 4 kB SPM (512 nodes)", 512usize),
        ("half SPM (256 nodes)", 256),
        ("64 nodes", 64),
        ("no SPM (all spill)", 0),
    ] {
        let mut machine = Machine::new(geometry, MicroArch::paper());
        machine.reconfigure(HwConfig::Ps);
        let params = op::OpParams {
            layout: &layout,
            tile_parts: &tile_parts,
            frontier: &frontier,
            heap_in_spm: true,
            spm_node_cap: cap,
            profile: OpProfile::scalar(),
        };
        let r = machine
            .run(op::streams(&csc, geometry, params))
            .expect("run");
        rows.push(vec![
            name.to_string(),
            r.cycles.to_string(),
            r.stats.spm_accesses.to_string(),
            (r.stats.loads + r.stats.stores).to_string(),
        ]);
    }
    print_table(
        "Ablation 3 | OP/PS merge-heap SPM capacity (frontier density 0.04)",
        &["spm budget", "cycles", "spm accesses", "global accesses"],
        &rows,
    );
}
