//! §IV-C.2's headline claim: "The combined software and hardware
//! reconfiguration achieves a speedup of up to 2.0× across different
//! algorithms and input graphs" (over the no-reconfiguration IP/SC
//! baseline).
//!
//! Runs BFS and SSSP under the automatic runtime and under a pinned
//! IP/SC runtime on several suite analogues and reports the net gains.
//!
//! Usage: `cargo run --release -p bench --bin reconfig_gain`

use bench::{print_table, scale};
use cosparse::{Policy, SwConfig};
use graph::{bfs::Bfs, sssp::Sssp, Engine};
use sparse::generate::SuiteGraph;
use sparse::Idx;
use transmuter::{Geometry, HwConfig, Machine, MicroArch};

fn main() {
    let geometry = Geometry::new(16, 16);
    let divisor_boost = if scale() == 1 { 1 } else { 4 };
    println!(
        "reconfig_gain: auto vs pinned IP/SC on 16x16; scale = {}",
        scale()
    );

    let mut rows = Vec::new();
    let mut max_gain: f64 = 0.0;
    for g in [
        SuiteGraph::Vsp,
        SuiteGraph::Twitter,
        SuiteGraph::Youtube,
        SuiteGraph::Pokec,
    ] {
        let spec = g
            .spec()
            .scaled(g.spec().default_scale_divisor * divisor_boost);
        let adjacency = spec.generate(0xC6).expect("suite generator");
        let root: Idx = adjacency
            .row_counts()
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .map(|(v, _)| v as Idx)
            .unwrap_or(0);
        for alg in ["bfs", "sssp"] {
            let run = |policy: Policy| {
                let mut engine =
                    Engine::new(&adjacency, Machine::new(geometry, MicroArch::paper()));
                engine.runtime_mut().set_policy(policy);
                match alg {
                    "bfs" => engine.run(&Bfs::new(root)).expect("run").total_cycles(),
                    _ => engine.run(&Sssp::new(root)).expect("run").total_cycles(),
                }
            };
            let auto = run(Policy::Auto);
            let pinned = run(Policy::Fixed(SwConfig::InnerProduct, HwConfig::Sc));
            let gain = pinned as f64 / auto.max(1) as f64;
            max_gain = max_gain.max(gain);
            rows.push(vec![
                alg.to_string(),
                g.name().to_string(),
                pinned.to_string(),
                auto.to_string(),
                format!("{gain:.2}x"),
            ]);
        }
    }
    print_table(
        "§IV-C.2 | net reconfiguration gain over pinned IP/SC",
        &["alg", "graph", "IP/SC cycles", "auto cycles", "gain"],
        &rows,
    );
    println!("\nmax gain: {max_gain:.2}x (paper: up to 2.0x)");
}
