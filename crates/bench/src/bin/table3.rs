//! Table III: the real-graph suite — paper specifications next to the
//! synthetic analogues this reproduction generates (vertex count, edge
//! count, directedness, density), at the active scale.
//!
//! Usage: `cargo run --release -p bench --bin table3`
//! (`COSPARSE_FULL_SCALE=1` generates at paper scale).

use bench::print_table;
use sparse::generate::SuiteGraph;
use sparse::stats::MatrixStats;

fn main() {
    let mut rows = Vec::new();
    for g in SuiteGraph::ALL {
        let full = g.spec();
        let matrix = g.adjacency(0xAB).expect("suite generator");
        let stats = MatrixStats::of(&matrix);
        rows.push(vec![
            g.name().to_string(),
            full.vertices.to_string(),
            full.edges.to_string(),
            if full.directed {
                "directed"
            } else {
                "undirected"
            }
            .to_string(),
            format!("{:.1e}", full.density()),
            stats.rows.to_string(),
            stats.nnz.to_string(),
            format!("{:.1e}", stats.density),
            format!("{:.2}", stats.row_gini),
        ]);
    }
    print_table(
        "Table III | paper spec vs generated synthetic analogue",
        &[
            "graph",
            "paper |V|",
            "paper |E|",
            "kind",
            "paper dens",
            "gen |V|",
            "gen nnz",
            "gen dens",
            "gini",
        ],
        &rows,
    );
    println!(
        "\nanalogues preserve directedness, avg degree and the degree-distribution\n\
         family (R-MAT for social graphs, uniform for vsp); see DESIGN.md §2."
    );
}
