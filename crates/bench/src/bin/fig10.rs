//! Figure 10: graph analytics — speedup and energy-efficiency gain of
//! CoSPARSE (16x16) over Ligra on a 48-core Xeon, for PR, CF, BFS and
//! SSSP across the real-graph suite.
//!
//! Paper shape to reproduce: CoSPARSE wins in most cases (up to ~3.5×)
//! and loses slightly only where the Xeon's huge memory system helps
//! (pokec on BFS/SSSP); energy-efficiency gains are two to three orders
//! of magnitude (avg ~404×).
//!
//! Usage: `cargo run --release -p bench --bin fig10`

use baselines::ligra::Ligra;
use baselines::xeon::XeonModel;
use bench::{geomean, print_table, scale};
use graph::{bfs::Bfs, cf::Cf, pagerank::PageRank, sssp::Sssp, Engine};
use sparse::generate::SuiteGraph;
use sparse::Idx;
use transmuter::{Geometry, Machine, MicroArch};

const PR_ROUNDS: usize = 5;
const CF_ROUNDS: usize = 3;

fn main() {
    let geometry = Geometry::new(16, 16);
    println!(
        "fig10: CoSPARSE (16x16) vs Ligra (Xeon model); scale = {}",
        scale()
    );

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let mut gains = Vec::new();

    // Additional shrink on top of each graph's default divisor: CF's
    // 8-word values make full-scale vsp/twitter dominate the wall time.
    let boost = scale();
    for g in SuiteGraph::ALL {
        // livejournal only appears in the PR column of Fig 10; skip the
        // frontier algorithms there to bound runtime.
        let spec = g.spec().scaled(g.spec().default_scale_divisor * boost);
        let adjacency = spec.generate(0xF10).expect("suite generator");
        let root: Idx = adjacency
            .row_counts()
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .map(|(v, _)| v as Idx)
            .unwrap_or(0);
        let ligra = Ligra::new(&adjacency, XeonModel::e7_4860());

        let algorithms: Vec<&str> = if g == SuiteGraph::LiveJournal {
            vec!["pr"]
        } else {
            vec!["pr", "cf", "bfs", "sssp"]
        };
        for alg in algorithms {
            let mut engine = Engine::new(&adjacency, Machine::new(geometry, MicroArch::paper()));
            let (ours_s, ours_j, iters) = match alg {
                "pr" => {
                    let r = engine.run(&PageRank::new(0.15, PR_ROUNDS)).expect("run");
                    (r.total_seconds(), r.total_joules(), r.iterations.len())
                }
                "cf" => {
                    let r = engine.run(&Cf::new(0.01, 0.05, CF_ROUNDS)).expect("run");
                    (r.total_seconds(), r.total_joules(), r.iterations.len())
                }
                "bfs" => {
                    let r = engine.run(&Bfs::new(root)).expect("run");
                    (r.total_seconds(), r.total_joules(), r.iterations.len())
                }
                "sssp" => {
                    let r = engine.run(&Sssp::new(root)).expect("run");
                    (r.total_seconds(), r.total_joules(), r.iterations.len())
                }
                _ => unreachable!(),
            };
            let theirs = match alg {
                "pr" => ligra.pagerank(0.15, PR_ROUNDS).total(),
                "cf" => ligra.cf(0.01, 0.05, CF_ROUNDS, graph::cf::FEATURES).total(),
                "bfs" => ligra.bfs(root).total(),
                "sssp" => ligra.sssp(root).total(),
                _ => unreachable!(),
            };
            let speedup = theirs.seconds / ours_s.max(1e-12);
            let gain = theirs.joules / ours_j.max(1e-12);
            speedups.push(speedup);
            gains.push(gain);
            rows.push(vec![
                alg.to_string(),
                g.name().to_string(),
                iters.to_string(),
                format!("{:.2}x", speedup),
                format!("{:.0}x", gain),
            ]);
        }
    }
    print_table(
        "Fig 10 | CoSPARSE vs Ligra (synthetic Table III analogues, scaled)",
        &["alg", "graph", "iters", "speedup", "energy gain"],
        &rows,
    );
    println!(
        "\ngeomean speedup: {:.2}x (paper geomean ~1.5x, max 3.5x); \
         geomean energy gain: {:.0}x (paper avg 404x)",
        geomean(&speedups),
        geomean(&gains)
    );
}
