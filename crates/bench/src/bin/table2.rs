//! Table II: the microarchitectural parameters of the simulated
//! machine, printed from the single source of truth
//! ([`transmuter::MicroArch::paper`]).
//!
//! Usage: `cargo run --release -p bench --bin table2`

use bench::print_table;
use transmuter::MicroArch;

fn main() {
    let ua = MicroArch::paper();
    let rows = vec![
        vec!["PE/LCP".into(), format!("in-order core @ {:.1} GHz", ua.freq_hz / 1e9)],
        vec![
            "RCache (per bank)".into(),
            format!(
                "{} kB, {}-way, {} B lines, word-granular, stride prefetcher: {}",
                ua.bank_bytes / 1024,
                ua.ways,
                ua.line_bytes,
                if ua.prefetch { "on" } else { "off" }
            ),
        ],
        vec![
            "RXBar".into(),
            format!(
                "{}-cycle response; shared: +{}-cycle arbitration + 0..Nsrc-1 serialization; private: direct",
                ua.xbar_latency, ua.arbitration_latency
            ),
        ],
        vec![
            "Main memory".into(),
            format!(
                "1 HBM2 stack: {} pseudo-channels @ {} B/cycle, {}-{} cycle latency",
                ua.hbm_channels, ua.hbm_bytes_per_cycle, ua.hbm_latency_min, ua.hbm_latency_max
            ),
        ],
        vec![
            "Reconfiguration".into(),
            format!("{} cycles + dirty-line drain", ua.reconfig_cycles),
        ],
        vec![
            "L1/L2 latency".into(),
            format!("{} / {} cycles per bank access", ua.l1_latency, ua.l2_latency),
        ],
    ];
    print_table(
        "Table II | gem5-model microarchitectural parameters",
        &["module", "parameters"],
        &rows,
    );
}
