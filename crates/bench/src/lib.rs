//! Shared harness for the figure/table regenerator binaries.
//!
//! Each binary under `src/bin/` reproduces one table or figure of the
//! paper (see DESIGN.md §4 for the index). Everything here is plumbing:
//! environment-controlled scaling, fixed-configuration SpMV runs, and
//! aligned table printing.
//!
//! Scaling: the paper's calibration matrices are ~4M nonzeros on
//! dimensions 131k–1M, and its application graphs reach 69M edges —
//! hours of single-core simulation. By default every binary shrinks
//! dimensions and nonzero counts by [`scale`] (default 4); set
//! `COSPARSE_SCALE=1` (or `COSPARSE_FULL_SCALE=1`) to reproduce at
//! paper scale. Crossovers and who-wins shapes are stable across
//! scales; absolute cycle counts are not.

use cosparse::{CoSparse, Frontier, Policy, SwConfig, Thresholds};
use sparse::CooMatrix;
use transmuter::{Geometry, HwConfig, Machine, MicroArch, SimReport};

/// Matrix-dimension divisor taken from the environment
/// (`COSPARSE_SCALE`, default 4; `COSPARSE_FULL_SCALE=1` forces 1).
pub fn scale() -> usize {
    if std::env::var("COSPARSE_FULL_SCALE")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        return 1;
    }
    std::env::var("COSPARSE_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(4)
}

/// The paper's calibration matrix dimensions (Figures 4–6), scaled.
pub fn fig_matrix_dims() -> Vec<usize> {
    let s = scale();
    [131_072usize, 262_144, 524_288, 1_048_576]
        .iter()
        .map(|n| n / s)
        .collect()
}

/// The paper's fixed nonzero budget (~4M across Figures 4–6), scaled.
pub fn fig_nnz() -> usize {
    4_000_000 / scale()
}

/// The vector-density sweep of Figures 4–6.
pub const DENSITIES: [f64; 5] = [0.0025, 0.005, 0.01, 0.02, 0.04];

/// Geometries swept in Figure 4.
pub fn fig4_geometries() -> Vec<Geometry> {
    vec![
        Geometry::new(4, 8),
        Geometry::new(4, 16),
        Geometry::new(4, 32),
        Geometry::new(8, 8),
        Geometry::new(8, 16),
        Geometry::new(8, 32),
    ]
}

/// Geometries swept in Figures 5 and 6.
pub fn fig56_geometries() -> Vec<Geometry> {
    vec![
        Geometry::new(4, 8),
        Geometry::new(4, 16),
        Geometry::new(8, 8),
        Geometry::new(8, 16),
    ]
}

/// Runs one SpMV with a fixed software/hardware configuration on a
/// fresh machine (cold caches — identical starting conditions for every
/// configuration under comparison).
///
/// The frontier representation is matched to the dataflow so no
/// conversion cost is charged.
///
/// # Panics
///
/// Panics on simulator errors (these binaries are harnesses).
pub fn run_spmv_fixed(
    matrix: &CooMatrix,
    geometry: Geometry,
    sw: SwConfig,
    hw: HwConfig,
    vector_density: f64,
    seed: u64,
) -> SimReport {
    let machine = Machine::new(geometry, MicroArch::paper());
    let mut rt = CoSparse::new(matrix, machine);
    rt.set_policy(Policy::Fixed(sw, hw));
    let sv = sparse::generate::random_sparse_vector(matrix.cols(), vector_density, seed)
        .expect("valid density");
    let frontier = match sw {
        SwConfig::OuterProduct => Frontier::Sparse(sv),
        SwConfig::InnerProduct => Frontier::Dense(sv.to_dense(0.0)),
    };
    rt.spmv(&frontier).expect("simulation succeeds").report
}

/// Runs one SpMV under the automatic decision tree, returning the
/// chosen configuration alongside the report.
///
/// # Panics
///
/// Panics on simulator errors.
pub fn run_spmv_auto(
    matrix: &CooMatrix,
    geometry: Geometry,
    vector_density: f64,
    seed: u64,
) -> cosparse::SpmvOutcome {
    let machine = Machine::new(geometry, MicroArch::paper());
    let mut rt = CoSparse::new(matrix, machine);
    rt.set_thresholds(Thresholds::paper());
    let sv = sparse::generate::random_sparse_vector(matrix.cols(), vector_density, seed)
        .expect("valid density");
    let decision = rt.decide(sv.density(), &cosparse::OpProfile::scalar());
    let frontier = match decision.software {
        SwConfig::OuterProduct => Frontier::Sparse(sv),
        SwConfig::InnerProduct => Frontier::Dense(sv.to_dense(0.0)),
    };
    rt.spmv(&frontier).expect("simulation succeeds")
}

/// Linear interpolation of the density at which a speedup series
/// crosses 1.0 (the paper's *crossover vector density*). Returns `None`
/// if the series never crosses.
pub fn crossover_density(densities: &[f64], speedups: &[f64]) -> Option<f64> {
    for w in 0..densities.len().saturating_sub(1) {
        let (d0, d1) = (densities[w], densities[w + 1]);
        let (s0, s1) = (speedups[w], speedups[w + 1]);
        if (s0 - 1.0) * (s1 - 1.0) <= 0.0 && s0 != s1 {
            let t = (1.0 - s0) / (s1 - s0);
            return Some(d0 + t * (d1 - d0));
        }
    }
    None
}

/// Prints an aligned table with a title line.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Geometric mean of positive values; 0.0 for empty input.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.max(1e-300).ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_interpolates() {
        let d = [0.0025, 0.005, 0.01, 0.02, 0.04];
        let s = [4.0, 2.0, 1.5, 0.5, 0.2];
        let c = crossover_density(&d, &s).unwrap();
        assert!(c > 0.01 && c < 0.02, "crossover {c}");
    }

    #[test]
    fn crossover_none_when_always_above() {
        let d = [0.0025, 0.005];
        let s = [4.0, 2.0];
        assert_eq!(crossover_density(&d, &s), None);
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn fixed_run_is_deterministic() {
        let m = sparse::generate::uniform(1024, 1024, 8000, 3).unwrap();
        let g = Geometry::new(2, 4);
        let a = run_spmv_fixed(&m, g, SwConfig::OuterProduct, HwConfig::Pc, 0.01, 7);
        let b = run_spmv_fixed(&m, g, SwConfig::OuterProduct, HwConfig::Pc, 0.01, 7);
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn auto_run_picks_op_for_sparse_vectors() {
        let m = sparse::generate::uniform(1 << 14, 1 << 14, 200_000, 3).unwrap();
        let out = run_spmv_auto(&m, Geometry::new(2, 4), 0.001, 5);
        assert_eq!(out.software, SwConfig::OuterProduct);
    }
}
