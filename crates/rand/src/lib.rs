//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the `rand 0.8` API its generators use:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`], [`seq::SliceRandom::shuffle`] and
//! [`seq::index::sample`]. The generator is xoshiro256** seeded through
//! SplitMix64 — statistically solid for test-data generation, *not*
//! cryptographic. Streams are deterministic per seed but do not match
//! upstream `rand`'s byte-for-byte.

#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// An RNG constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a deterministically seeded generator.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, uniform for integers and bool).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// Samples uniformly from `range` (which must be non-empty).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    /// Derives a sample from 64 uniform random bits.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for f32 {
    fn from_bits(bits: u64) -> Self {
        // 24 high-quality mantissa bits -> [0, 1).
        ((bits >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> Self {
        ((bits >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> Self {
        bits >> 63 != 0
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_range!(usize, u32, u64);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * f64::from_bits_std(rng.next_u64())
    }
}

impl SampleRange for core::ops::Range<f32> {
    type Output = f32;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        self.start + (self.end - self.start) * f32::from_bits_std(rng.next_u64())
    }
}

/// Internal helper so float range sampling does not collide with
/// `f64::from_bits`.
trait FloatFromBits {
    fn from_bits_std(bits: u64) -> Self;
}
impl FloatFromBits for f32 {
    fn from_bits_std(bits: u64) -> Self {
        <f32 as Standard>::from_bits(bits)
    }
}
impl FloatFromBits for f64 {
    fn from_bits_std(bits: u64) -> Self {
        <f64 as Standard>::from_bits(bits)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (`shuffle`, distinct index sampling).
pub mod seq {
    use super::RngCore;

    /// Slice shuffling, implemented for every `[T]`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }

    /// Distinct-index sampling.
    pub mod index {
        use super::super::RngCore;
        use std::collections::HashSet;

        /// A set of sampled indices.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Consumes into a plain vector (unsorted).
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        /// Samples `amount` distinct indices uniformly from
        /// `0..length` (Floyd's algorithm, O(amount)).
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(amount <= length, "cannot sample {amount} from {length}");
            let mut chosen = HashSet::with_capacity(amount * 2);
            let mut out = Vec::with_capacity(amount);
            for j in length - amount..length {
                let t = (rng.next_u64() % (j as u64 + 1)) as usize;
                let pick = if chosen.insert(t) { t } else { j };
                if pick != t {
                    chosen.insert(pick);
                }
                out.push(pick);
            }
            IndexVec(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{index::sample, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_distribution_covers() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }

    #[test]
    fn sample_distinct_indices() {
        let mut rng = StdRng::seed_from_u64(5);
        for &(n, k) in &[(10usize, 10usize), (1000, 37), (5, 0)] {
            let idx = sample(&mut rng, n, k).into_vec();
            assert_eq!(idx.len(), k);
            let set: std::collections::HashSet<_> = idx.iter().collect();
            assert_eq!(set.len(), k, "duplicates in sample");
            assert!(idx.iter().all(|&i| i < n));
        }
    }
}
