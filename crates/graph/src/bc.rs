//! Single-source Betweenness Centrality (Brandes) on CoSPARSE — an
//! extension beyond the paper's four algorithms, and Ligra's flagship
//! two-phase app.
//!
//! BC needs a forward level/path-count sweep over in-edges and a
//! backward dependency sweep over out-edges, processing one BFS level
//! per SpMV. Both phases are frontier-driven with the same
//! sparse→dense→sparse density trajectory as BFS, so CoSPARSE
//! re-decides the configuration for **every level of both phases**;
//! unweighted path counts and dependencies are evaluated functionally
//! on the host (the standard split — see DESIGN.md §2).

use cosparse::{CoSparse, ExecBackend, OpProfile, SwConfig};
use sparse::{CooMatrix, CsrMatrix, Idx};
use transmuter::{Geometry, HwConfig, Machine, MicroArch, SimError, SimReport};

/// One simulated level of a BC phase.
#[derive(Debug, Clone, PartialEq)]
pub struct BcLevelRecord {
    /// Phase: forward (path counting) or backward (dependencies).
    pub phase: Phase,
    /// BFS depth of the level.
    pub depth: usize,
    /// Frontier density entering the level.
    pub frontier_density: f64,
    /// Configuration the runtime chose.
    pub software: SwConfig,
    /// Hardware configuration.
    pub hardware: HwConfig,
    /// Simulated cost.
    pub report: SimReport,
}

/// BC phase marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Forward breadth-first path counting.
    Forward,
    /// Backward dependency accumulation.
    Backward,
}

/// Result of one single-source BC run.
#[derive(Debug, Clone, PartialEq)]
pub struct BcResult {
    /// Per-vertex dependency scores (the source's contribution to each
    /// vertex's betweenness).
    pub centrality: Vec<f32>,
    /// Per-level simulation records, forward then backward.
    pub levels: Vec<BcLevelRecord>,
}

impl BcResult {
    /// Total simulated cycles over both phases.
    pub fn total_cycles(&self) -> u64 {
        self.levels.iter().map(|l| l.report.cycles).sum()
    }

    /// Total simulated energy in joules.
    pub fn total_joules(&self) -> f64 {
        self.levels.iter().map(|l| l.report.joules()).sum()
    }
}

/// Runs single-source BC from `source` on `adjacency`, simulating on
/// two machines of the given geometry (forward phase operates on
/// in-edges, backward on out-edges; the real system would hold both
/// matrix copies like §III-D.2's COO+CSC pair).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn betweenness(
    adjacency: &CooMatrix,
    source: Idx,
    geometry: Geometry,
) -> Result<BcResult, SimError> {
    betweenness_on(adjacency, source, geometry, ExecBackend::Simulate)
}

/// [`betweenness`] on an explicit execution backend. Under
/// [`ExecBackend::Host`] the per-level `execute` calls skip the
/// simulator (reports carry zero cycles); the path-count and dependency
/// math is host-evaluated either way, so the centrality scores are
/// identical across backends.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn betweenness_on(
    adjacency: &CooMatrix,
    source: Idx,
    geometry: Geometry,
    backend: ExecBackend,
) -> Result<BcResult, SimError> {
    let n = adjacency.rows();
    let out_edges = CsrMatrix::from(adjacency);
    let profile = OpProfile {
        value_words: 1,
        extra_compute_per_edge: 2,
        vector_op_compute: 2,
    };

    let transposed = adjacency.transpose();
    let mut forward_rt = CoSparse::new(&transposed, Machine::new(geometry, MicroArch::paper()));
    let mut backward_rt = CoSparse::new(adjacency, Machine::new(geometry, MicroArch::paper()));
    forward_rt.set_backend(backend);
    backward_rt.set_backend(backend);

    // --- forward: levels + path counts (host math, simulated timing) ---
    let mut level = vec![u32::MAX; n];
    let mut sigma = vec![0.0f64; n];
    let mut levels: Vec<Vec<Idx>> = Vec::new();
    let mut records = Vec::new();
    if (source as usize) < n {
        level[source as usize] = 0;
        sigma[source as usize] = 1.0;
        levels.push(vec![source]);
    }
    let mut depth = 0usize;
    while depth < levels.len() {
        let frontier = levels[depth].clone();
        if frontier.is_empty() {
            break;
        }
        let density = frontier.len() as f64 / n.max(1) as f64;
        let decision = forward_rt.decide(density, &profile);
        let report = forward_rt.execute(decision, &frontier, &profile)?;
        records.push(BcLevelRecord {
            phase: Phase::Forward,
            depth,
            frontier_density: density,
            software: decision.software,
            hardware: decision.hardware,
            report,
        });
        // Host math: extend levels and accumulate path counts.
        let mut next: Vec<Idx> = Vec::new();
        for &u in &frontier {
            let (dsts, _) = out_edges.row(u as usize);
            for &v in dsts {
                if level[v as usize] == u32::MAX {
                    level[v as usize] = depth as u32 + 1;
                    next.push(v);
                }
                if level[v as usize] == depth as u32 + 1 {
                    sigma[v as usize] += sigma[u as usize];
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        if !next.is_empty() {
            levels.push(next);
        }
        depth += 1;
    }

    // --- backward: dependency accumulation, deepest level first -------
    let mut delta = vec![0.0f64; n];
    for depth in (1..levels.len()).rev() {
        let frontier = levels[depth].clone();
        let density = frontier.len() as f64 / n.max(1) as f64;
        let decision = backward_rt.decide(density, &profile);
        let report = backward_rt.execute(decision, &frontier, &profile)?;
        records.push(BcLevelRecord {
            phase: Phase::Backward,
            depth,
            frontier_density: density,
            software: decision.software,
            hardware: decision.hardware,
            report,
        });
        // Host math: predecessors of the frontier accumulate dependency.
        for &u in &levels[depth - 1] {
            let (dsts, _) = out_edges.row(u as usize);
            let mut acc = 0.0f64;
            for &v in dsts {
                if level[v as usize] == depth as u32 && sigma[v as usize] > 0.0 {
                    acc += sigma[u as usize] / sigma[v as usize] * (1.0 + delta[v as usize]);
                }
            }
            delta[u as usize] += acc;
        }
    }
    let mut centrality: Vec<f32> = delta.iter().map(|&d| d as f32).collect();
    if (source as usize) < n {
        centrality[source as usize] = 0.0;
    }
    Ok(BcResult {
        centrality,
        levels: records,
    })
}

/// Host reference: textbook Brandes, single source.
pub fn reference(adjacency: &CsrMatrix, source: Idx) -> Vec<f32> {
    let n = adjacency.rows();
    let mut centrality = vec![0.0f64; n];
    if (source as usize) >= n {
        return centrality.iter().map(|&x| x as f32).collect();
    }
    let mut level = vec![i64::MAX; n];
    let mut sigma = vec![0.0f64; n];
    let mut order: Vec<Idx> = Vec::new();
    level[source as usize] = 0;
    sigma[source as usize] = 1.0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        let (dsts, _) = adjacency.row(u as usize);
        for &v in dsts {
            if level[v as usize] == i64::MAX {
                level[v as usize] = level[u as usize] + 1;
                queue.push_back(v);
            }
            if level[v as usize] == level[u as usize] + 1 {
                sigma[v as usize] += sigma[u as usize];
            }
        }
    }
    let mut delta = vec![0.0f64; n];
    for &u in order.iter().rev() {
        let (dsts, _) = adjacency.row(u as usize);
        for &v in dsts {
            if level[v as usize] == level[u as usize] + 1 && sigma[v as usize] > 0.0 {
                delta[u as usize] +=
                    sigma[u as usize] / sigma[v as usize] * (1.0 + delta[v as usize]);
            }
        }
        if u != source {
            centrality[u as usize] = delta[u as usize];
        }
    }
    centrality.iter().map(|&x| x as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_brandes_on_random_graph() {
        let adj = sparse::generate::rmat(9, 4_000, Default::default(), 12).unwrap();
        let csr = CsrMatrix::from(&adj);
        let want = reference(&csr, 0);
        let got = betweenness(&adj, 0, Geometry::new(2, 4)).unwrap();
        for (v, (&a, &b)) in got.centrality.iter().zip(&want).enumerate() {
            assert!(
                (a - b).abs() < 1e-3 * b.abs().max(1.0),
                "vertex {v}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn path_graph_center_dominates() {
        // 0 → 1 → 2 → 3 → 4: middle vertices carry the paths.
        let adj =
            CooMatrix::from_triplets(5, 5, (0..4u32).map(|v| (v, v + 1, 1.0)).collect()).unwrap();
        let r = betweenness(&adj, 0, Geometry::new(1, 2)).unwrap();
        // Dependencies from source 0: δ(1)=3, δ(2)=2, δ(3)=1.
        assert_eq!(r.centrality, vec![0.0, 3.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn both_phases_recorded_and_cost_cycles() {
        let adj = sparse::generate::rmat(9, 4_000, Default::default(), 3).unwrap();
        let r = betweenness(&adj, 0, Geometry::new(2, 4)).unwrap();
        assert!(r.levels.iter().any(|l| l.phase == Phase::Forward));
        assert!(r.levels.iter().any(|l| l.phase == Phase::Backward));
        assert!(r.total_cycles() > 0);
        assert!(r.total_joules() > 0.0);
        // Backward levels run deepest-first.
        let back: Vec<usize> = r
            .levels
            .iter()
            .filter(|l| l.phase == Phase::Backward)
            .map(|l| l.depth)
            .collect();
        assert!(back.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn diamond_splits_paths() {
        // 0→{1,2}→3: two shortest paths to 3; each middle vertex gets
        // δ = σ-weighted half credit.
        let adj = CooMatrix::from_triplets(
            4,
            4,
            vec![(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)],
        )
        .unwrap();
        let r = betweenness(&adj, 0, Geometry::new(1, 2)).unwrap();
        assert!((r.centrality[1] - 0.5).abs() < 1e-6);
        assert!((r.centrality[2] - 0.5).abs() < 1e-6);
        assert_eq!(r.centrality[3], 0.0);
    }

    #[test]
    fn unreachable_source_is_empty() {
        let adj = CooMatrix::from_triplets(3, 3, vec![(0, 1, 1.0)]).unwrap();
        let r = betweenness(&adj, 2, Geometry::new(1, 1)).unwrap();
        assert!(r.centrality.iter().all(|&c| c == 0.0));
    }
}
