//! PageRank on the SpMV abstraction.
//!
//! Table I: `Matrix_Op = Σ (V_src / deg(src))`,
//! `Vector_Op = α + (1-α) * V_updated`. The frontier is always dense,
//! so CoSPARSE stays on the inner-product dataflow throughout (paper
//! §III-D.2: "PR and CF always use dense vectors").
//!
//! We use the normalized teleport term `α / N` so ranks stay a
//! probability distribution; the paper's unnormalized `α` differs only
//! by a global scale.

use crate::engine::Algorithm;
use cosparse::{GraphOp, OpProfile};
use sparse::Idx;

/// The PageRank op.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRankOp {
    /// Teleport term added to every vertex (already divided by N).
    pub teleport: f32,
    /// Damping factor `1 - α` multiplying the pulled rank mass.
    pub damping: f32,
}

impl GraphOp for PageRankOp {
    type Value = f32;

    fn matrix_op(&self, _w: f32, src_value: f32, _dst: f32, src_degree: u32) -> f32 {
        src_value / src_degree.max(1) as f32
    }

    fn reduce(&self, a: f32, b: f32) -> f32 {
        a + b
    }

    fn vector_op(&self, updated: f32, _old: f32) -> f32 {
        self.teleport + self.damping * updated
    }

    fn is_update(&self, _new: f32, _old: f32) -> bool {
        true
    }

    fn profile(&self) -> OpProfile {
        OpProfile {
            value_words: 1,
            extra_compute_per_edge: 1,
            vector_op_compute: 2,
        }
    }
}

/// PageRank: damped power iteration for a fixed number of rounds
/// (Ligra's PageRank runs a fixed iteration count as well).
#[derive(Debug, Clone, Copy)]
pub struct PageRank {
    alpha: f32,
    iterations: usize,
}

impl PageRank {
    /// PageRank with teleport probability `alpha` (typically 0.15) for
    /// `iterations` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1)` or `iterations == 0`.
    pub fn new(alpha: f32, iterations: usize) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
        assert!(iterations > 0, "need at least one iteration");
        PageRank { alpha, iterations }
    }

    /// The teleport probability.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }
}

impl Default for PageRank {
    /// `alpha = 0.15`, 20 iterations.
    fn default() -> Self {
        PageRank::new(0.15, 20)
    }
}

impl Algorithm for PageRank {
    type Op = PageRankOp;

    fn name(&self) -> &'static str {
        "pr"
    }

    fn op(&self, vertices: usize) -> PageRankOp {
        PageRankOp {
            teleport: self.alpha / vertices.max(1) as f32,
            damping: 1.0 - self.alpha,
        }
    }

    fn initial_state(&self, vertices: usize) -> Vec<f32> {
        vec![1.0 / vertices.max(1) as f32; vertices]
    }

    fn initial_frontier(&self, vertices: usize) -> Vec<(Idx, f32)> {
        let r = 1.0 / vertices.max(1) as f32;
        (0..vertices).map(|v| (v as Idx, r)).collect()
    }

    fn frontier_value(&self, _vertex: Idx, new_value: f32) -> f32 {
        new_value
    }

    fn dense_frontier(&self) -> bool {
        true
    }

    fn background_update(&self, vertices: usize, _old: f32) -> Option<f32> {
        // Vertices with no in-edges hold exactly the teleport mass.
        Some(self.alpha / vertices.max(1) as f32)
    }

    fn max_iterations(&self, _vertices: usize) -> usize {
        self.iterations
    }
}

/// Host reference: dense power iteration with the same formula.
pub fn reference(adjacency: &sparse::CsrMatrix, alpha: f32, iterations: usize) -> Vec<f32> {
    let n = adjacency.rows();
    let degrees = adjacency.out_degrees();
    let mut rank = vec![1.0f32 / n.max(1) as f32; n];
    for _ in 0..iterations {
        let mut next = vec![alpha / n.max(1) as f32; n];
        for u in 0..n {
            if degrees[u] == 0 {
                continue;
            }
            let share = (1.0 - alpha) * rank[u] / degrees[u] as f32;
            let (dsts, _) = adjacency.row(u);
            for &v in dsts {
                next[v as usize] += share;
            }
        }
        rank = next;
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use sparse::CsrMatrix;
    use transmuter::{Geometry, Machine, MicroArch};

    #[test]
    fn matches_reference_power_iteration() {
        let adj = sparse::generate::uniform(256, 256, 2500, 8).unwrap();
        let csr = CsrMatrix::from(&adj);
        let want = reference(&csr, 0.15, 8);
        let mut e = Engine::new(&adj, Machine::new(Geometry::new(2, 4), MicroArch::paper()));
        let r = e.run(&PageRank::new(0.15, 8)).unwrap();
        for (v, (&a, &b)) in r.state.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 1e-5, "vertex {v}: {a} vs {b}");
        }
    }

    #[test]
    fn stays_on_inner_product() {
        let adj = sparse::generate::rmat(10, 10_000, Default::default(), 2).unwrap();
        let mut e = Engine::new(&adj, Machine::new(Geometry::new(2, 4), MicroArch::paper()));
        let r = e.run(&PageRank::new(0.15, 4)).unwrap();
        assert_eq!(r.iterations.len(), 4);
        assert!(r
            .iterations
            .iter()
            .all(|i| i.software == cosparse::SwConfig::InnerProduct));
        assert!(r.iterations.iter().all(|i| i.frontier_density == 1.0));
    }

    #[test]
    fn ranks_sum_stays_bounded() {
        let adj = sparse::generate::uniform(200, 200, 2000, 3).unwrap();
        let mut e = Engine::new(&adj, Machine::new(Geometry::new(2, 4), MicroArch::paper()));
        let r = e.run(&PageRank::new(0.15, 10)).unwrap();
        let total: f32 = r.state.iter().sum();
        assert!(total > 0.15 && total <= 1.001, "total {total}");
    }

    #[test]
    fn high_in_degree_vertices_rank_higher() {
        // Star: everyone points at vertex 0.
        let adj = sparse::CooMatrix::from_triplets(
            10,
            10,
            (1..10u32).map(|u| (u, 0u32, 1.0f32)).collect(),
        )
        .unwrap();
        let mut e = Engine::new(&adj, Machine::new(Geometry::new(1, 2), MicroArch::paper()));
        let r = e.run(&PageRank::new(0.15, 10)).unwrap();
        for v in 1..10 {
            assert!(r.state[0] > r.state[v]);
        }
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_rejected() {
        let _ = PageRank::new(1.5, 10);
    }
}
