//! Collaborative Filtering on the SpMV abstraction.
//!
//! Table I: `Matrix_Op = Σ ((Sp_{src,dst} − V_src·V_dst)·V_src − λ·V_dst)`,
//! `Vector_Op = β·V_updated + V_dst` — one gradient-descent step of
//! matrix factorization per SpMV, with per-vertex latent feature
//! vectors. The frontier is always dense, and the wide value type
//! (`K` words per vertex) exercises the runtime's multi-word vector
//! traffic.

use crate::engine::Algorithm;
use cosparse::{GraphOp, OpProfile};
use sparse::Idx;

/// Latent feature dimension (compile-time, so values stay `Copy`).
pub const FEATURES: usize = 8;

/// A latent feature vector.
pub type FeatureVec = [f32; FEATURES];

fn dot(a: &FeatureVec, b: &FeatureVec) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Deterministic initial features for vertex `v` (shared by the engine
/// and the host reference so results are comparable).
pub fn initial_features(v: Idx) -> FeatureVec {
    let mut f = [0.0f32; FEATURES];
    let mut z = (v as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    for slot in &mut f {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        *slot = 0.1 + 0.1 * ((z >> 40) as f32 / (1u64 << 24) as f32);
    }
    f
}

/// The CF op.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CfOp {
    /// Regularization constant λ.
    pub lambda: f32,
    /// Learning rate β.
    pub beta: f32,
}

impl GraphOp for CfOp {
    type Value = FeatureVec;

    fn matrix_op(
        &self,
        weight: f32,
        src_value: FeatureVec,
        dst_state: FeatureVec,
        _deg: u32,
    ) -> FeatureVec {
        let err = weight - dot(&src_value, &dst_state);
        let mut g = [0.0f32; FEATURES];
        for k in 0..FEATURES {
            g[k] = err * src_value[k] - self.lambda * dst_state[k];
        }
        g
    }

    fn reduce(&self, a: FeatureVec, b: FeatureVec) -> FeatureVec {
        let mut s = a;
        for k in 0..FEATURES {
            s[k] += b[k];
        }
        s
    }

    fn vector_op(&self, updated: FeatureVec, old_state: FeatureVec) -> FeatureVec {
        let mut s = old_state;
        for k in 0..FEATURES {
            s[k] += self.beta * updated[k];
        }
        s
    }

    fn is_update(&self, _new: FeatureVec, _old: FeatureVec) -> bool {
        true
    }

    fn profile(&self) -> OpProfile {
        OpProfile {
            value_words: FEATURES,
            // dot product + axpy per edge: ~3 ops per feature.
            extra_compute_per_edge: (3 * FEATURES) as u32,
            vector_op_compute: (2 * FEATURES) as u32,
        }
    }
}

/// Collaborative filtering: fixed-round gradient descent.
#[derive(Debug, Clone, Copy)]
pub struct Cf {
    lambda: f32,
    beta: f32,
    iterations: usize,
}

impl Cf {
    /// CF with regularization `lambda`, learning rate `beta`, for
    /// `iterations` gradient steps.
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0` or the constants are not positive.
    pub fn new(lambda: f32, beta: f32, iterations: usize) -> Self {
        assert!(
            lambda >= 0.0 && beta > 0.0,
            "constants must be non-negative"
        );
        assert!(iterations > 0, "need at least one iteration");
        Cf {
            lambda,
            beta,
            iterations,
        }
    }
}

impl Default for Cf {
    /// `λ = 0.01`, `β = 0.05`, 10 iterations.
    fn default() -> Self {
        Cf::new(0.01, 0.05, 10)
    }
}

impl Algorithm for Cf {
    type Op = CfOp;

    fn name(&self) -> &'static str {
        "cf"
    }

    fn op(&self, _vertices: usize) -> CfOp {
        CfOp {
            lambda: self.lambda,
            beta: self.beta,
        }
    }

    fn initial_state(&self, vertices: usize) -> Vec<FeatureVec> {
        (0..vertices).map(|v| initial_features(v as Idx)).collect()
    }

    fn initial_frontier(&self, vertices: usize) -> Vec<(Idx, FeatureVec)> {
        (0..vertices)
            .map(|v| (v as Idx, initial_features(v as Idx)))
            .collect()
    }

    fn frontier_value(&self, _vertex: Idx, new_value: FeatureVec) -> FeatureVec {
        new_value
    }

    fn dense_frontier(&self) -> bool {
        true
    }

    fn max_iterations(&self, _vertices: usize) -> usize {
        self.iterations
    }
}

/// Host reference: the same Jacobi-style gradient step applied directly
/// to the adjacency triplets.
pub fn reference(
    adjacency: &sparse::CooMatrix,
    lambda: f32,
    beta: f32,
    iterations: usize,
) -> Vec<FeatureVec> {
    let n = adjacency.rows().max(adjacency.cols());
    let mut x: Vec<FeatureVec> = (0..n).map(|v| initial_features(v as Idx)).collect();
    for _ in 0..iterations {
        let mut grad: Vec<FeatureVec> = vec![[0.0; FEATURES]; n];
        for (u, v, w) in adjacency.iter() {
            let (u, v) = (u as usize, v as usize);
            let err = w - dot(&x[u], &x[v]);
            for k in 0..FEATURES {
                grad[v][k] += err * x[u][k] - lambda * x[v][k];
            }
        }
        for v in 0..n {
            for k in 0..FEATURES {
                x[v][k] += beta * grad[v][k];
            }
        }
    }
    x
}

/// Mean squared rating-reconstruction error, the quantity CF minimizes.
pub fn training_error(adjacency: &sparse::CooMatrix, features: &[FeatureVec]) -> f64 {
    let mut err = 0.0f64;
    for (u, v, w) in adjacency.iter() {
        let e = w - dot(&features[u as usize], &features[v as usize]);
        err += (e * e) as f64;
    }
    err / adjacency.nnz().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use transmuter::{Geometry, Machine, MicroArch};

    fn ratings(n: usize, nnz: usize, seed: u64) -> sparse::CooMatrix {
        // Symmetrized ratings so both "users" and "items" update.
        let base = sparse::generate::uniform(n, n, nnz, seed).unwrap();
        let mut t: Vec<(u32, u32, f32)> = Vec::new();
        for (u, v, w) in base.iter() {
            t.push((u, v, w));
            if u != v {
                t.push((v, u, w));
            }
        }
        sparse::CooMatrix::from_triplets(n, n, t).unwrap()
    }

    #[test]
    fn matches_reference() {
        let adj = ratings(64, 300, 5);
        let want = reference(&adj, 0.01, 0.05, 4);
        let mut e = Engine::new(&adj, Machine::new(Geometry::new(2, 4), MicroArch::paper()));
        let r = e.run(&Cf::new(0.01, 0.05, 4)).unwrap();
        for (v, (got_v, want_v)) in r.state.iter().zip(&want).enumerate() {
            for (k, (&a, &b)) in got_v.iter().zip(want_v).enumerate() {
                assert!((a - b).abs() < 1e-4, "vertex {v} feature {k}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn training_error_decreases() {
        let adj = ratings(128, 800, 9);
        let before = training_error(&adj, &Cf::default().initial_state(128));
        let mut e = Engine::new(&adj, Machine::new(Geometry::new(2, 4), MicroArch::paper()));
        let r = e.run(&Cf::new(0.01, 0.05, 10)).unwrap();
        let after = training_error(&adj, &r.state);
        assert!(after < before, "error should drop: {before} → {after}");
    }

    #[test]
    fn stays_dense_and_inner_product() {
        let adj = ratings(64, 300, 2);
        let mut e = Engine::new(&adj, Machine::new(Geometry::new(2, 4), MicroArch::paper()));
        let r = e.run(&Cf::new(0.01, 0.05, 3)).unwrap();
        assert_eq!(r.iterations.len(), 3);
        assert!(r
            .iterations
            .iter()
            .all(|i| i.software == cosparse::SwConfig::InnerProduct));
    }

    #[test]
    fn wide_values_move_more_data_than_scalar_ops() {
        let adj = ratings(64, 300, 2);
        let mut e = Engine::new(&adj, Machine::new(Geometry::new(2, 4), MicroArch::paper()));
        let cf = e.run(&Cf::new(0.01, 0.05, 1)).unwrap();
        let mut e2 = Engine::new(&adj, Machine::new(Geometry::new(2, 4), MicroArch::paper()));
        let pr = e2.run(&crate::pagerank::PageRank::new(0.15, 1)).unwrap();
        assert!(
            cf.iterations[0].report.stats.loads > 2 * pr.iterations[0].report.stats.loads,
            "CF ({}) should move ≫ data than PR ({})",
            cf.iterations[0].report.stats.loads,
            pr.iterations[0].report.stats.loads
        );
    }

    #[test]
    fn initial_features_deterministic_and_bounded() {
        let a = initial_features(42);
        let b = initial_features(42);
        assert_eq!(a, b);
        assert_ne!(initial_features(1), initial_features(2));
        assert!(a.iter().all(|x| (0.05..0.3).contains(x)));
    }
}
