//! Connected Components via label propagation — an extension beyond the
//! paper's four algorithms, expressed in the same `Matrix_Op` /
//! `Vector_Op` abstraction: `Matrix_Op = min(V_src)`, no `Vector_Op`,
//! starting from an all-active frontier that thins as labels converge.
//!
//! On undirected graphs this computes connected components; on directed
//! graphs it computes the components of the underlying undirected graph
//! only if the input was symmetrized first (see
//! [`crate::cc::symmetrize`]).
//!
//! The frontier trajectory is the *reverse* of BFS/SSSP — it starts
//! fully dense and sparsifies — so CC exercises the IP→OP
//! reconfiguration direction the Figure 9 trace only shows briefly.

use crate::engine::Algorithm;
use cosparse::{GraphOp, OpProfile};
use sparse::{CooMatrix, Idx};

/// The CC op: minimum label propagation.
#[derive(Debug, Clone, Copy, Default)]
pub struct CcOp;

impl GraphOp for CcOp {
    type Value = u32;

    fn matrix_op(&self, _w: f32, src_value: u32, _dst: u32, _deg: u32) -> u32 {
        src_value
    }

    fn reduce(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn is_update(&self, new: u32, old: u32) -> bool {
        new < old
    }

    fn profile(&self) -> OpProfile {
        OpProfile::scalar()
    }
}

/// Connected components by iterative min-label propagation.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConnectedComponents {
    op: CcOp,
}

impl ConnectedComponents {
    /// Creates the algorithm.
    pub fn new() -> Self {
        ConnectedComponents::default()
    }
}

impl Algorithm for ConnectedComponents {
    type Op = CcOp;

    fn name(&self) -> &'static str {
        "cc"
    }

    fn op(&self, _vertices: usize) -> CcOp {
        self.op
    }

    fn initial_state(&self, vertices: usize) -> Vec<u32> {
        (0..vertices as u32).collect()
    }

    fn initial_frontier(&self, vertices: usize) -> Vec<(Idx, u32)> {
        (0..vertices as u32).map(|v| (v, v)).collect()
    }

    fn frontier_value(&self, _vertex: Idx, new_value: u32) -> u32 {
        new_value
    }

    fn max_iterations(&self, vertices: usize) -> usize {
        vertices.max(1)
    }
}

/// Symmetrizes a directed adjacency matrix (adds the reverse of every
/// edge) so CC components match the underlying undirected graph.
pub fn symmetrize(adjacency: &CooMatrix) -> CooMatrix {
    let mut triplets = Vec::with_capacity(adjacency.nnz() * 2);
    for (u, v, w) in adjacency.iter() {
        triplets.push((u, v, w));
        if u != v {
            triplets.push((v, u, w));
        }
    }
    CooMatrix::from_triplets(adjacency.rows(), adjacency.cols(), triplets)
        .expect("symmetrizing preserves bounds")
}

/// Host reference: union-find over the (symmetrized) edge list.
pub fn reference(adjacency: &CooMatrix) -> Vec<u32> {
    let n = adjacency.rows();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], v: u32) -> u32 {
        let mut root = v;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = v;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for (u, v, _) in adjacency.iter() {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            let (lo, hi) = (ru.min(rv), ru.max(rv));
            parent[hi as usize] = lo;
        }
    }
    // Canonical labels: minimum vertex id in each component.
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

/// Number of distinct labels in a component assignment.
pub fn component_count(labels: &[u32]) -> usize {
    let mut sorted: Vec<u32> = labels.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use transmuter::{Geometry, Machine, MicroArch};

    fn engine(adj: &CooMatrix) -> Engine {
        Engine::new(adj, Machine::new(Geometry::new(2, 4), MicroArch::paper()))
    }

    #[test]
    fn two_components() {
        // {0,1,2} ring and {3,4} pair, symmetrized.
        let adj = symmetrize(
            &CooMatrix::from_triplets(
                5,
                5,
                vec![(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0), (3, 4, 1.0)],
            )
            .unwrap(),
        );
        let mut e = engine(&adj);
        let r = e.run(&ConnectedComponents::new()).unwrap();
        assert_eq!(r.state, vec![0, 0, 0, 3, 3]);
        assert_eq!(component_count(&r.state), 2);
    }

    #[test]
    fn matches_union_find_on_random_graph() {
        let adj = symmetrize(&sparse::generate::uniform(600, 600, 1200, 3).unwrap());
        let want = reference(&adj);
        let mut e = engine(&adj);
        let r = e.run(&ConnectedComponents::new()).unwrap();
        assert_eq!(r.state, want);
    }

    #[test]
    fn isolated_vertices_keep_own_label() {
        let adj = CooMatrix::from_triplets(4, 4, vec![(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let mut e = engine(&adj);
        let r = e.run(&ConnectedComponents::new()).unwrap();
        assert_eq!(r.state[2], 2);
        assert_eq!(r.state[3], 3);
        assert_eq!(component_count(&r.state), 3);
    }

    #[test]
    fn frontier_starts_dense_and_sparsifies() {
        let adj = symmetrize(&sparse::generate::rmat(10, 6_000, Default::default(), 8).unwrap());
        let mut e = engine(&adj);
        let r = e.run(&ConnectedComponents::new()).unwrap();
        assert_eq!(r.iterations[0].frontier_density, 1.0);
        let last = r.iterations.last().unwrap();
        assert!(last.frontier_density < 0.5, "frontier should thin out");
        // The dense start must use IP, the sparse tail OP.
        assert_eq!(r.iterations[0].software, cosparse::SwConfig::InnerProduct);
    }

    #[test]
    fn chain_takes_many_iterations() {
        // A path graph propagates the min label one hop per iteration.
        let n = 32;
        let mut t = Vec::new();
        for v in 0..n - 1 {
            t.push((v as u32, v as u32 + 1, 1.0));
            t.push((v as u32 + 1, v as u32, 1.0));
        }
        let adj = CooMatrix::from_triplets(n, n, t).unwrap();
        let mut e = engine(&adj);
        let r = e.run(&ConnectedComponents::new()).unwrap();
        assert!(r.state.iter().all(|&l| l == 0));
        assert!(r.iterations.len() >= n - 2, "label must walk the chain");
    }
}
