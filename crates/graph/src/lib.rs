//! Graph analytics on the CoSPARSE SpMV abstraction (paper §III-D).
//!
//! Four algorithms, each defined by its Table I `Matrix_Op`/`Vector_Op`
//! pair and driven by the iterative [`Engine`]:
//!
//! | algorithm | op | frontier |
//! |---|---|---|
//! | [`bfs::Bfs`] | `min(V_src)` | sparse → dense → sparse |
//! | [`sssp::Sssp`] | `min(V_src + Sp, V_dst)` | sparse → dense → sparse |
//! | [`pagerank::PageRank`] | `Σ V_src/deg(src)`, damped | always dense |
//! | [`cf::Cf`] | factorization gradient | always dense |
//! | [`cc::ConnectedComponents`] | `min(V_src)` label propagation | dense → sparse (extension beyond the paper) |
//! | [`kbfs::KBfs`] | bitwise-OR mask propagation | sparse → dense → sparse (extension) |
//! | [`bc::betweenness`] | two-phase Brandes over per-level frontiers | forward + backward sweeps (extension) |
//!
//! Each iteration the CoSPARSE runtime re-decides the dataflow and
//! memory configuration from the frontier density; the engine records
//! the per-iteration decisions and simulated costs (the machinery
//! behind the paper's Figure 9 case study). Host reference
//! implementations (`reference` in each module) validate every result.
//!
//! # Example
//!
//! ```
//! use graph::{bfs::Bfs, Engine};
//! use transmuter::{Geometry, Machine, MicroArch};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let adj = sparse::generate::rmat(10, 8_000, Default::default(), 42)?;
//! let mut engine = Engine::new(&adj, Machine::new(Geometry::new(2, 4), MicroArch::paper()));
//! let run = engine.run(&Bfs::new(0))?;
//! println!(
//!     "bfs finished in {} iterations, {} cycles",
//!     run.iterations.len(),
//!     run.total_cycles()
//! );
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bc;
pub mod bfs;
pub mod cc;
pub mod cf;
mod engine;
pub mod kbfs;
pub mod pagerank;
pub mod serve;
pub mod sssp;

pub use engine::{run_algorithm, Algorithm, Engine, IterationRecord, RunResult, Value};
