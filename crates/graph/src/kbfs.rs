//! Multi-source BFS (k-BFS) over the OR-semiring — the core of Ligra's
//! radii-estimation app, and another extension showing the Table I
//! abstraction's generality: `Value = u64` visitation bitmask over up
//! to 64 sources, `Matrix_Op = V_src`, `reduce = |`, update when new
//! bits arrive.
//!
//! Each vertex learns which of the `k` sources can reach it and in how
//! many hops (the iteration at which its mask last grew bounds its
//! eccentricity from below — Ligra's radii estimate).

use crate::engine::Algorithm;
use cosparse::{GraphOp, OpProfile};
use sparse::Idx;

/// The k-BFS op: bitwise-OR propagation of source masks.
#[derive(Debug, Clone, Copy, Default)]
pub struct KbfsOp;

impl GraphOp for KbfsOp {
    type Value = u64;

    fn matrix_op(&self, _w: f32, src_value: u64, _dst: u64, _deg: u32) -> u64 {
        src_value
    }

    fn reduce(&self, a: u64, b: u64) -> u64 {
        a | b
    }

    fn is_update(&self, new: u64, old: u64) -> bool {
        new | old != old
    }

    fn profile(&self) -> OpProfile {
        // Two words per mask on the 32-bit-word machine.
        OpProfile {
            value_words: 2,
            extra_compute_per_edge: 0,
            vector_op_compute: 0,
        }
    }
}

/// Simultaneous BFS from up to 64 sources.
#[derive(Debug, Clone)]
pub struct KBfs {
    sources: Vec<Idx>,
    op: KbfsOp,
}

impl KBfs {
    /// k-BFS from `sources` (at most 64; duplicates ignored).
    ///
    /// # Panics
    ///
    /// Panics if more than 64 sources are given or the list is empty.
    pub fn new(sources: Vec<Idx>) -> Self {
        assert!(!sources.is_empty(), "need at least one source");
        assert!(sources.len() <= 64, "a u64 mask holds at most 64 sources");
        KBfs {
            sources,
            op: KbfsOp,
        }
    }

    /// Picks `k` spread-out sources deterministically from `vertices`.
    pub fn with_spread_sources(k: usize, vertices: usize) -> Self {
        let k = k.clamp(1, 64.min(vertices.max(1)));
        let sources = (0..k).map(|i| (i * vertices.max(1) / k) as Idx).collect();
        KBfs::new(sources)
    }

    /// The source list.
    pub fn sources(&self) -> &[Idx] {
        &self.sources
    }
}

impl Algorithm for KBfs {
    type Op = KbfsOp;

    fn name(&self) -> &'static str {
        "kbfs"
    }

    fn op(&self, _vertices: usize) -> KbfsOp {
        self.op
    }

    fn initial_state(&self, vertices: usize) -> Vec<u64> {
        let mut s = vec![0u64; vertices];
        for (bit, &v) in self.sources.iter().enumerate() {
            if (v as usize) < vertices {
                s[v as usize] |= 1u64 << bit;
            }
        }
        s
    }

    fn initial_frontier(&self, vertices: usize) -> Vec<(Idx, u64)> {
        let state = self.initial_state(vertices);
        let mut f: Vec<(Idx, u64)> = state
            .iter()
            .enumerate()
            .filter(|(_, m)| **m != 0)
            .map(|(v, m)| (v as Idx, *m))
            .collect();
        f.sort_unstable_by_key(|&(v, _)| v);
        f
    }

    fn frontier_value(&self, vertex: Idx, _new_value: u64) -> u64 {
        // The next frontier carries the vertex's full accumulated mask;
        // the engine stores it in state before building the frontier, so
        // this is a placeholder overridden below.
        let _ = vertex;
        _new_value
    }

    fn max_iterations(&self, vertices: usize) -> usize {
        vertices.max(1)
    }
}

/// Host reference: `k` independent BFS passes, OR-ed.
pub fn reference(adjacency: &sparse::CsrMatrix, sources: &[Idx]) -> Vec<u64> {
    let n = adjacency.rows();
    let mut mask = vec![0u64; n];
    for (bit, &s) in sources.iter().enumerate() {
        if (s as usize) >= n {
            continue;
        }
        let mut seen = vec![false; n];
        seen[s as usize] = true;
        let mut frontier = vec![s];
        mask[s as usize] |= 1 << bit;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &u in &frontier {
                let (dsts, _) = adjacency.row(u as usize);
                for &v in dsts {
                    if !seen[v as usize] {
                        seen[v as usize] = true;
                        mask[v as usize] |= 1 << bit;
                        next.push(v);
                    }
                }
            }
            frontier = next;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use sparse::{CooMatrix, CsrMatrix};
    use transmuter::{Geometry, Machine, MicroArch};

    fn engine(adj: &CooMatrix) -> Engine {
        Engine::new(adj, Machine::new(Geometry::new(2, 4), MicroArch::paper()))
    }

    #[test]
    fn masks_match_reference_on_random_graph() {
        let adj = sparse::generate::rmat(10, 10_000, Default::default(), 21).unwrap();
        let csr = CsrMatrix::from(&adj);
        let alg = KBfs::with_spread_sources(8, adj.rows());
        let want = reference(&csr, alg.sources());
        let mut e = engine(&adj);
        let r = e.run(&alg).unwrap();
        assert_eq!(r.state, want);
    }

    #[test]
    fn single_source_degenerates_to_bfs_reachability() {
        let adj = sparse::generate::uniform(256, 256, 1500, 4).unwrap();
        let csr = CsrMatrix::from(&adj);
        let (parents, _) = crate::bfs::reference(&csr, 0);
        let mut e = engine(&adj);
        let r = e.run(&KBfs::new(vec![0])).unwrap();
        for (v, (&mask, &parent)) in r.state.iter().zip(&parents).enumerate() {
            assert_eq!(
                mask != 0,
                parent != crate::bfs::UNVISITED,
                "vertex {v} reachability"
            );
        }
    }

    #[test]
    fn bit_per_source() {
        // Two disconnected chains: 0→1, 2→3.
        let adj = CooMatrix::from_triplets(4, 4, vec![(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let mut e = engine(&adj);
        let r = e.run(&KBfs::new(vec![0, 2])).unwrap();
        assert_eq!(r.state, vec![0b01, 0b01, 0b10, 0b10]);
    }

    #[test]
    fn overlapping_reach_sets_or_together() {
        // Both sources reach vertex 2.
        let adj = CooMatrix::from_triplets(3, 3, vec![(0, 2, 1.0), (1, 2, 1.0)]).unwrap();
        let mut e = engine(&adj);
        let r = e.run(&KBfs::new(vec![0, 1])).unwrap();
        assert_eq!(r.state[2], 0b11);
    }

    #[test]
    fn spread_sources_are_distinct_and_bounded() {
        let alg = KBfs::with_spread_sources(16, 1000);
        assert_eq!(alg.sources().len(), 16);
        let set: std::collections::HashSet<_> = alg.sources().iter().collect();
        assert_eq!(set.len(), 16);
        let alg = KBfs::with_spread_sources(100, 10);
        assert!(alg.sources().len() <= 10);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn too_many_sources_rejected() {
        let _ = KBfs::new((0..65).collect());
    }
}
