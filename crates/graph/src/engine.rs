//! The iterative graph-analytics engine.
//!
//! Runs an [`Algorithm`] as repeated CoSPARSE SpMV steps: each
//! iteration the runtime re-decides the software/hardware configuration
//! from the frontier density (`f_next = SpMV(G.T, f)`, paper §III),
//! and the engine records per-iteration densities, chosen
//! configurations and simulated costs — the raw material of the
//! paper's Figure 9 case study.

use cosparse::{CoSparse, ExecBackend, GraphOp, SharedGraph, Update};
use sparse::{CooMatrix, Idx};
use std::sync::Arc;
use transmuter::{Geometry, HwConfig, Machine, MicroArch, SimError, SimReport};

/// Value type of an algorithm.
pub type Value<A> = <<A as Algorithm>::Op as GraphOp>::Value;

/// An iterative graph algorithm expressed over the SpMV abstraction.
pub trait Algorithm {
    /// The Table I op driving each SpMV.
    type Op: GraphOp;

    /// Lower-case display name ("bfs", "pr", ...).
    fn name(&self) -> &'static str;

    /// Builds the op instance for a graph with `vertices` vertices
    /// (PageRank's teleport term needs `N`).
    fn op(&self, vertices: usize) -> Self::Op;

    /// Initial per-vertex state.
    fn initial_state(&self, vertices: usize) -> Vec<Value<Self>>;

    /// Initial frontier `(vertex, frontier value)` pairs, sorted.
    fn initial_frontier(&self, vertices: usize) -> Vec<(Idx, Value<Self>)>;

    /// Frontier value carried by a vertex updated to `new_value`.
    fn frontier_value(&self, vertex: Idx, new_value: Value<Self>) -> Value<Self>;

    /// True for algorithms whose frontier is always every vertex
    /// (PageRank, CF). The engine then rebuilds the full frontier from
    /// state each iteration instead of from the update set.
    fn dense_frontier(&self) -> bool {
        false
    }

    /// Value taken by vertices that received *no* contribution this
    /// iteration (PageRank's teleport term); `None` keeps the old value.
    fn background_update(&self, vertices: usize, old: Value<Self>) -> Option<Value<Self>> {
        let _ = (vertices, old);
        None
    }

    /// Iteration cap.
    fn max_iterations(&self, vertices: usize) -> usize;
}

/// One engine iteration's bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationRecord {
    /// Iteration number (0-based).
    pub iteration: usize,
    /// Frontier density entering the iteration.
    pub frontier_density: f64,
    /// Dataflow the runtime chose.
    pub software: cosparse::SwConfig,
    /// Memory configuration the runtime chose.
    pub hardware: HwConfig,
    /// Locality reordering the runtime chose (simulated address stream
    /// only; `state` is always in the original vertex space).
    pub reorder: cosparse::ReorderKind,
    /// Simulated cost of the iteration.
    pub report: SimReport,
    /// Number of state updates produced.
    pub updates: usize,
}

/// Result of a full algorithm run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult<V> {
    /// Final per-vertex state.
    pub state: Vec<V>,
    /// Per-iteration records.
    pub iterations: Vec<IterationRecord>,
}

impl<V> RunResult<V> {
    /// Total simulated cycles across iterations.
    pub fn total_cycles(&self) -> u64 {
        self.iterations.iter().map(|r| r.report.cycles).sum()
    }

    /// Peak frontier density over the run (0.0 if no iterations ran).
    pub fn peak_density(&self) -> f64 {
        self.iterations
            .iter()
            .map(|r| r.frontier_density)
            .fold(0.0, f64::max)
    }

    /// Number of software (dataflow) switches between consecutive
    /// iterations — BFS/SSSP on social graphs show the paper's
    /// sparse→dense→sparse double switch.
    pub fn software_switches(&self) -> usize {
        self.iterations
            .windows(2)
            .filter(|w| w[0].software != w[1].software)
            .count()
    }

    /// How many iterations ran under each (software, hardware)
    /// configuration, in first-seen order.
    pub fn config_histogram(&self) -> Vec<((cosparse::SwConfig, HwConfig), usize)> {
        let mut hist: Vec<((cosparse::SwConfig, HwConfig), usize)> = Vec::new();
        for it in &self.iterations {
            let key = (it.software, it.hardware);
            match hist.iter_mut().find(|(k, _)| *k == key) {
                Some((_, n)) => *n += 1,
                None => hist.push((key, 1)),
            }
        }
        hist
    }

    /// Total simulated energy in joules.
    pub fn total_joules(&self) -> f64 {
        self.iterations.iter().map(|r| r.report.joules()).sum()
    }

    /// Total simulated seconds.
    pub fn total_seconds(&self) -> f64 {
        self.iterations.iter().map(|r| r.report.seconds).sum()
    }
}

/// The iterative driver binding an adjacency matrix to a CoSPARSE
/// runtime.
#[derive(Debug)]
pub struct Engine {
    runtime: CoSparse,
    vertices: usize,
}

impl Engine {
    /// Builds an engine for `adjacency` (edge `u → v` stored as entry
    /// `(u, v)`) on `machine`. The runtime operates on the transposed
    /// matrix so destinations reduce over in-edges.
    ///
    /// The shared graph state is built privately for this engine; when
    /// several engines (or a [`cosparse::GraphService`]) run over one
    /// graph, build it once with [`Engine::shared_graph`] and open each
    /// engine with [`Engine::with_shared`] so layout/CSC/programs are
    /// derived a single time.
    pub fn new(adjacency: &CooMatrix, machine: Machine) -> Self {
        let shared = Engine::shared_graph(adjacency, machine.geometry(), machine.uarch().clone());
        Engine::with_shared(&shared, machine)
    }

    /// Builds the shared, `Arc`-handed graph state engines run over:
    /// the *transposed* adjacency (so destinations reduce over
    /// in-edges) with all matrix-derived artifacts shared between every
    /// session opened on it.
    pub fn shared_graph(
        adjacency: &CooMatrix,
        geometry: Geometry,
        uarch: MicroArch,
    ) -> Arc<SharedGraph> {
        SharedGraph::new(&adjacency.transpose(), geometry, uarch)
    }

    /// Opens an engine over an already-built shared graph (from
    /// [`Engine::shared_graph`]) with a fresh session machine. N
    /// engines opened this way share one layout/CSC/program cache
    /// (observable via [`SharedGraph::cache_stats`]).
    pub fn with_shared(shared: &Arc<SharedGraph>, machine: Machine) -> Self {
        // The stored matrix is the transposed adjacency: vertices =
        // its column count (= original row count).
        let vertices = shared.matrix().cols();
        Engine {
            runtime: CoSparse::with_shared(Arc::clone(shared), machine),
            vertices,
        }
    }

    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        self.vertices
    }

    /// The underlying runtime (to set policy, thresholds or balancing).
    pub fn runtime_mut(&mut self) -> &mut CoSparse {
        &mut self.runtime
    }

    /// Selects the execution backend ([`ExecBackend::Simulate`] is the
    /// default) — a convenience over [`Engine::runtime_mut`].
    pub fn set_backend(&mut self, backend: ExecBackend) {
        self.runtime.set_backend(backend);
    }

    /// The underlying runtime, immutably.
    pub fn runtime(&self) -> &CoSparse {
        &self.runtime
    }

    /// Runs `algorithm` to convergence (empty frontier / no updates) or
    /// its iteration cap.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn run<A: Algorithm>(&mut self, algorithm: &A) -> Result<RunResult<Value<A>>, SimError> {
        run_algorithm(&mut self.runtime, self.vertices, algorithm)
    }
}

/// Runs `algorithm` over `vertices` vertices on a bare session until
/// convergence (empty frontier / no updates) or its iteration cap —
/// the engine loop, usable without an [`Engine`] wrapper (serve-layer
/// queries drive the worker's session directly).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_algorithm<A: Algorithm>(
    runtime: &mut CoSparse,
    vertices: usize,
    algorithm: &A,
) -> Result<RunResult<Value<A>>, SimError> {
    let n = vertices;
    let op = algorithm.op(n);
    let mut state = algorithm.initial_state(n);
    assert_eq!(state.len(), n, "initial state must cover every vertex");
    let mut frontier = algorithm.initial_frontier(n);
    // Double-buffered frontier: the next iteration's pairs are
    // staged here and swapped in, so the steady state allocates
    // nothing per iteration.
    let mut staged: Vec<(Idx, Value<A>)> = Vec::new();
    let mut iterations = Vec::new();

    for iteration in 0..algorithm.max_iterations(n) {
        if frontier.is_empty() {
            break;
        }
        let density = frontier.len() as f64 / n.max(1) as f64;
        let out = runtime.step(&op, &frontier, &state)?;
        let update_count = out.updates.len();

        apply_updates(algorithm, &mut state, &out.updates);
        iterations.push(IterationRecord {
            iteration,
            frontier_density: density,
            software: out.software,
            hardware: out.hardware,
            reorder: out.reorder,
            report: out.report,
            updates: update_count,
        });

        staged.clear();
        if algorithm.dense_frontier() {
            staged.extend((0..n).map(|v| (v as Idx, algorithm.frontier_value(v as Idx, state[v]))));
            if update_count == 0 {
                break;
            }
        } else {
            staged.extend(
                out.updates
                    .iter()
                    .map(|&(dst, v)| (dst, algorithm.frontier_value(dst, v))),
            );
        }
        std::mem::swap(&mut frontier, &mut staged);
    }
    Ok(RunResult { state, iterations })
}

fn apply_updates<A: Algorithm>(
    algorithm: &A,
    state: &mut [Value<A>],
    updates: &[Update<Value<A>>],
) {
    if state.is_empty() {
        return;
    }
    let n = state.len();
    // Algorithms either always provide a background value (PageRank's
    // teleport term) or never do; probe once.
    let has_background = algorithm.background_update(n, state[0]).is_some();
    if has_background {
        // Walk both sorted sequences: updated vertices take their new
        // value, the rest take the background.
        let mut it = updates.iter().peekable();
        for (v, slot) in state.iter_mut().enumerate() {
            match it.peek() {
                Some(&&(dst, val)) if dst as usize == v => {
                    *slot = val;
                    it.next();
                }
                _ => {
                    if let Some(bg) = algorithm.background_update(n, *slot) {
                        *slot = bg;
                    }
                }
            }
        }
    } else {
        for &(dst, val) in updates {
            state[dst as usize] = val;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::Bfs;
    use transmuter::{Geometry, MicroArch, SimReport};

    fn dummy_record(
        iteration: usize,
        density: f64,
        software: cosparse::SwConfig,
    ) -> IterationRecord {
        let geometry = Geometry::new(1, 1);
        let mut machine = Machine::new(geometry, MicroArch::paper());
        let report: SimReport = machine
            .run(transmuter::StreamSet::new(geometry))
            .expect("empty run");
        IterationRecord {
            iteration,
            frontier_density: density,
            software,
            hardware: HwConfig::Sc,
            reorder: cosparse::ReorderKind::None,
            report,
            updates: 0,
        }
    }

    #[test]
    fn run_result_helpers() {
        use cosparse::SwConfig::{InnerProduct as Ip, OuterProduct as Op};
        let run = RunResult {
            state: vec![0u32],
            iterations: vec![
                dummy_record(0, 0.001, Op),
                dummy_record(1, 0.3, Ip),
                dummy_record(2, 0.5, Ip),
                dummy_record(3, 0.002, Op),
            ],
        };
        assert_eq!(run.peak_density(), 0.5);
        assert_eq!(run.software_switches(), 2);
        let hist = run.config_histogram();
        assert_eq!(hist.len(), 2);
        assert_eq!(hist[0], ((Op, HwConfig::Sc), 2));
        assert_eq!(hist[1], ((Ip, HwConfig::Sc), 2));
    }

    #[test]
    fn empty_run_helpers() {
        let run: RunResult<u32> = RunResult {
            state: vec![],
            iterations: vec![],
        };
        assert_eq!(run.peak_density(), 0.0);
        assert_eq!(run.software_switches(), 0);
        assert!(run.config_histogram().is_empty());
        assert_eq!(run.total_cycles(), 0);
    }

    #[test]
    fn engine_counts_vertices() {
        let adj = sparse::CooMatrix::from_triplets(8, 8, vec![(0, 1, 1.0)]).unwrap();
        let mut e = Engine::new(&adj, Machine::new(Geometry::new(1, 2), MicroArch::paper()));
        assert_eq!(e.vertices(), 8);
        let r = e.run(&Bfs::new(0)).unwrap();
        assert_eq!(r.state.len(), 8);
    }
}
