//! Typed graph queries for the serving layer.
//!
//! [`GraphQuery`] is the wire-level request a multi-tenant
//! [`GraphService`](cosparse::GraphService) answers: a BFS or SSSP from
//! a source vertex, or a PageRank snapshot. Each query runs the full
//! iterative engine loop ([`crate::run_algorithm`]) on whichever worker
//! session picks it up, and returns a [`QueryAnswer`] holding the final
//! per-vertex state — bit-identical to a dedicated [`Engine`] run on
//! the same graph, under every backend.
//!
//! ```
//! use cosparse::{ExecBackend, ServeConfig};
//! use graph::serve::{start_service, GraphQuery};
//! use graph::Engine;
//! use transmuter::{Geometry, MicroArch};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let adj = sparse::generate::rmat(9, 4_000, Default::default(), 42)?;
//! let graph = Engine::shared_graph(&adj, Geometry::new(2, 4), MicroArch::paper());
//! let service = start_service(graph, ServeConfig::default());
//!
//! let bfs = service.submit(GraphQuery::Bfs { source: 0 }.into_job());
//! let pr = service.submit(GraphQuery::PageRank { damping: 0.85, iterations: 10 }.into_job());
//! let parents = bfs.wait()?;
//! let ranks = pr.wait()?;
//! println!("{:?} then {:?}", parents, ranks);
//! service.shutdown();
//! # Ok(())
//! # }
//! ```

use crate::bfs::Bfs;
use crate::engine::run_algorithm;
use crate::pagerank::PageRank;
use crate::sssp::Sssp;
use cosparse::{CoSparse, GraphService, ServeConfig, SharedGraph};
use sparse::Idx;
use std::sync::Arc;
use transmuter::SimError;

#[allow(unused_imports)] // rustdoc link target
use crate::engine::Engine;

/// One serving-layer request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphQuery {
    /// Breadth-first search from `source`; answers parent pointers.
    Bfs {
        /// Root vertex.
        source: Idx,
    },
    /// Single-source shortest paths from `source`; answers distances.
    Sssp {
        /// Source vertex.
        source: Idx,
    },
    /// A PageRank snapshot; answers the rank vector.
    PageRank {
        /// Damping factor `alpha` in `(0, 1)` (the paper uses 0.85).
        damping: f32,
        /// Power iterations to run.
        iterations: usize,
    },
}

/// A query's result: the algorithm's final per-vertex state.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryAnswer {
    /// BFS parent of every vertex (`u32::MAX` = unreached).
    Bfs(Vec<u32>),
    /// SSSP distance of every vertex (`∞` = unreached).
    Sssp(Vec<f32>),
    /// PageRank of every vertex.
    PageRank(Vec<f32>),
}

/// What a ticket resolves to.
pub type Answer = Result<QueryAnswer, SimError>;

impl GraphQuery {
    /// Runs the query's full engine loop on `session` (a worker's, or
    /// any session over the graph the query targets).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors from the underlying steps.
    pub fn run(self, session: &mut CoSparse) -> Answer {
        // The session's matrix is the transposed adjacency, so its
        // column count is the vertex count.
        let n = session.matrix().cols();
        match self {
            GraphQuery::Bfs { source } => {
                run_algorithm(session, n, &Bfs::new(source)).map(|run| QueryAnswer::Bfs(run.state))
            }
            GraphQuery::Sssp { source } => run_algorithm(session, n, &Sssp::new(source))
                .map(|run| QueryAnswer::Sssp(run.state)),
            GraphQuery::PageRank {
                damping,
                iterations,
            } => run_algorithm(session, n, &PageRank::new(damping, iterations))
                .map(|run| QueryAnswer::PageRank(run.state)),
        }
    }

    /// The query as a submittable job closure (the form
    /// [`GraphService::submit`] takes).
    pub fn into_job(self) -> impl FnOnce(&mut CoSparse) -> Answer + Send + 'static {
        move |session| self.run(session)
    }

    /// A key identifying this query's answer over one graph content
    /// epoch, for [`GraphService::submit_cached`]: the variant tag and
    /// every query input bit-packed into a `u64`. Two queries share a
    /// key iff they are the same request, so a cached answer is always
    /// bit-identical to a fresh run (the engines are deterministic).
    pub fn cache_key(self) -> u64 {
        match self {
            GraphQuery::Bfs { source } => (1 << 60) | u64::from(source),
            GraphQuery::Sssp { source } => (2 << 60) | u64::from(source),
            GraphQuery::PageRank {
                damping,
                iterations,
            } => {
                // 4 bits tag | 32 bits damping | 28 bits iterations.
                (3 << 60) | (u64::from(damping.to_bits()) << 28) | (iterations as u64 & 0xFFF_FFFF)
            }
        }
    }

    /// Submits this query through the service's same-source memo:
    /// identical queries on an unchanged graph are answered from cache
    /// (see [`GraphService::submit_cached`] for the counting contract).
    pub fn submit_cached(self, service: &GraphService<Answer>) -> cosparse::Ticket<Answer> {
        service.submit_cached(self.cache_key(), self.into_job())
    }
}

/// Starts a [`GraphService`] answering [`GraphQuery`]s over `graph`
/// (built with [`Engine::shared_graph`] — the service expects the
/// transposed-adjacency convention).
pub fn start_service(graph: Arc<SharedGraph>, config: ServeConfig) -> GraphService<Answer> {
    GraphService::start(graph, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use cosparse::ExecBackend;
    use transmuter::{Geometry, Machine, MicroArch};

    #[test]
    fn query_matches_dedicated_engine() {
        let adj = sparse::generate::rmat(8, 2000, Default::default(), 3).unwrap();
        let geometry = Geometry::new(2, 4);
        let machine = || Machine::new(geometry, MicroArch::paper());

        let mut engine = Engine::new(&adj, machine());
        let want = engine.run(&Bfs::new(1)).unwrap().state;

        let graph = Engine::shared_graph(&adj, geometry, MicroArch::paper());
        let mut session = graph.session();
        session.set_backend(ExecBackend::Simulate);
        let got = GraphQuery::Bfs { source: 1 }.run(&mut session).unwrap();
        assert_eq!(got, QueryAnswer::Bfs(want));
    }
}
