//! Single-Source Shortest Path on the SpMV abstraction.
//!
//! Table I: `Matrix_Op = min(V_src + Sp_{src,dst}, V_dst)`, no
//! `Vector_Op` — Bellman-Ford relaxations over the frontier of
//! vertices whose distance improved last iteration (the Figure 9 case
//! study runs this on pokec).

use crate::engine::Algorithm;
use cosparse::{GraphOp, OpProfile};
use sparse::Idx;

/// The SSSP op: tropical (min, +) semiring with the destination's old
/// distance folded in.
#[derive(Debug, Clone, Copy, Default)]
pub struct SsspOp;

impl GraphOp for SsspOp {
    type Value = f32;

    fn matrix_op(&self, weight: f32, src_value: f32, dst_state: f32, _deg: u32) -> f32 {
        (src_value + weight).min(dst_state)
    }

    fn reduce(&self, a: f32, b: f32) -> f32 {
        a.min(b)
    }

    fn is_update(&self, new: f32, old: f32) -> bool {
        new < old
    }

    fn profile(&self) -> OpProfile {
        OpProfile {
            value_words: 1,
            extra_compute_per_edge: 1,
            vector_op_compute: 0,
        }
    }
}

/// SSSP from a source vertex; state is the distance array
/// (`f32::INFINITY` = unreachable). Edge weights must be non-negative.
#[derive(Debug, Clone, Copy)]
pub struct Sssp {
    source: Idx,
    op: SsspOp,
}

impl Sssp {
    /// SSSP from `source`.
    pub fn new(source: Idx) -> Self {
        Sssp { source, op: SsspOp }
    }

    /// The source vertex.
    pub fn source(&self) -> Idx {
        self.source
    }
}

impl Algorithm for Sssp {
    type Op = SsspOp;

    fn name(&self) -> &'static str {
        "sssp"
    }

    fn op(&self, _vertices: usize) -> SsspOp {
        self.op
    }

    fn initial_state(&self, vertices: usize) -> Vec<f32> {
        let mut s = vec![f32::INFINITY; vertices];
        if (self.source as usize) < vertices {
            s[self.source as usize] = 0.0;
        }
        s
    }

    fn initial_frontier(&self, vertices: usize) -> Vec<(Idx, f32)> {
        if (self.source as usize) < vertices {
            vec![(self.source, 0.0)]
        } else {
            Vec::new()
        }
    }

    fn frontier_value(&self, _vertex: Idx, new_value: f32) -> f32 {
        new_value
    }

    fn max_iterations(&self, vertices: usize) -> usize {
        vertices.max(1)
    }
}

/// Host reference: Dijkstra with a binary heap.
pub fn reference(adjacency: &sparse::CsrMatrix, source: Idx) -> Vec<f32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = adjacency.rows();
    let mut dist = vec![f32::INFINITY; n];
    if (source as usize) >= n {
        return dist;
    }
    dist[source as usize] = 0.0;
    // f32 keys via total-order bits (all distances are non-negative).
    let mut heap: BinaryHeap<Reverse<(u32, Idx)>> = BinaryHeap::new();
    heap.push(Reverse((0, source)));
    while let Some(Reverse((dbits, u))) = heap.pop() {
        let d = f32::from_bits(dbits);
        if d > dist[u as usize] {
            continue;
        }
        let (dsts, weights) = adjacency.row(u as usize);
        for (&v, &w) in dsts.iter().zip(weights) {
            let nd = d + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd.to_bits(), v)));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use sparse::{CooMatrix, CsrMatrix};
    use transmuter::{Geometry, Machine, MicroArch};

    fn engine(adj: &CooMatrix) -> Engine {
        Engine::new(adj, Machine::new(Geometry::new(2, 4), MicroArch::paper()))
    }

    #[test]
    fn triangle_with_shortcut() {
        // 0→1 (5.0), 0→2 (1.0), 2→1 (1.0): best 0→1 path costs 2.
        let adj =
            CooMatrix::from_triplets(3, 3, vec![(0, 1, 5.0), (0, 2, 1.0), (2, 1, 1.0)]).unwrap();
        let mut e = engine(&adj);
        let r = e.run(&Sssp::new(0)).unwrap();
        assert_eq!(r.state, vec![0.0, 2.0, 1.0]);
    }

    #[test]
    fn matches_dijkstra_on_random_graph() {
        let adj = sparse::generate::uniform(400, 400, 4000, 17).unwrap();
        let csr = CsrMatrix::from(&adj);
        let want = reference(&csr, 7);
        let mut e = engine(&adj);
        let r = e.run(&Sssp::new(7)).unwrap();
        for (v, (&a, &b)) in r.state.iter().zip(&want).enumerate() {
            if a.is_infinite() || b.is_infinite() {
                assert_eq!(a.is_infinite(), b.is_infinite(), "vertex {v}: {a} vs {b}");
            } else {
                assert!((a - b).abs() < 1e-4, "vertex {v}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn unreachable_stays_infinite() {
        let adj = CooMatrix::from_triplets(3, 3, vec![(0, 1, 1.0)]).unwrap();
        let mut e = engine(&adj);
        let r = e.run(&Sssp::new(0)).unwrap();
        assert!(r.state[2].is_infinite());
    }

    #[test]
    fn density_profile_matches_fig9_shape() {
        // Paper Fig 9 (pokec): density climbs from <0.1% to ~47% and
        // falls back. On an R-MAT analogue the same rise/fall appears.
        let adj = sparse::generate::rmat(12, 80_000, Default::default(), 5).unwrap();
        let mut e = engine(&adj);
        let r = e.run(&Sssp::new(0)).unwrap();
        let d: Vec<f64> = r.iterations.iter().map(|i| i.frontier_density).collect();
        assert!(d.len() >= 4, "too few iterations: {}", d.len());
        let peak_pos = d
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(
            peak_pos > 0 && peak_pos < d.len() - 1,
            "peak at {peak_pos} of {}",
            d.len()
        );
    }

    #[test]
    fn multiple_relaxations_converge() {
        // A graph where longer hop-count paths are cheaper, forcing
        // several Bellman-Ford rounds.
        let adj = CooMatrix::from_triplets(
            5,
            5,
            vec![
                (0, 4, 10.0),
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
            ],
        )
        .unwrap();
        let mut e = engine(&adj);
        let r = e.run(&Sssp::new(0)).unwrap();
        assert_eq!(r.state[4], 4.0);
        assert!(r.iterations.len() >= 4);
    }
}
