//! Breadth-First Search on the SpMV abstraction.
//!
//! Table I: `Matrix_Op = min(V_src)`, no `Vector_Op`. The frontier
//! carries each frontier vertex's own id; an unvisited destination
//! adopts the smallest frontier id as its parent. The frontier is the
//! classic sparse→dense→sparse shape that drives reconfiguration.

use crate::engine::Algorithm;
use cosparse::{GraphOp, OpProfile};
use sparse::Idx;

/// Sentinel for "not yet visited".
pub const UNVISITED: u32 = u32::MAX;

/// The BFS op: parents via `min` over frontier ids.
#[derive(Debug, Clone, Copy, Default)]
pub struct BfsOp;

impl GraphOp for BfsOp {
    type Value = u32;

    fn matrix_op(&self, _w: f32, src_value: u32, _dst: u32, _deg: u32) -> u32 {
        src_value
    }

    fn reduce(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn is_update(&self, _new: u32, old: u32) -> bool {
        old == UNVISITED
    }

    fn profile(&self) -> OpProfile {
        OpProfile {
            value_words: 1,
            extra_compute_per_edge: 0,
            vector_op_compute: 0,
        }
    }
}

/// BFS from a root vertex; state is the parent array (root's parent is
/// itself, unreached vertices stay [`UNVISITED`]).
#[derive(Debug, Clone, Copy)]
pub struct Bfs {
    root: Idx,
    op: BfsOp,
}

impl Bfs {
    /// BFS from `root`.
    pub fn new(root: Idx) -> Self {
        Bfs { root, op: BfsOp }
    }

    /// The root vertex.
    pub fn root(&self) -> Idx {
        self.root
    }
}

impl Algorithm for Bfs {
    type Op = BfsOp;

    fn name(&self) -> &'static str {
        "bfs"
    }

    fn op(&self, _vertices: usize) -> BfsOp {
        self.op
    }

    fn initial_state(&self, vertices: usize) -> Vec<u32> {
        let mut s = vec![UNVISITED; vertices];
        if (self.root as usize) < vertices {
            s[self.root as usize] = self.root;
        }
        s
    }

    fn initial_frontier(&self, vertices: usize) -> Vec<(Idx, u32)> {
        if (self.root as usize) < vertices {
            vec![(self.root, self.root)]
        } else {
            Vec::new()
        }
    }

    fn frontier_value(&self, vertex: Idx, _new_value: u32) -> u32 {
        // The next frontier advertises the vertex's own id as parent.
        vertex
    }

    fn max_iterations(&self, vertices: usize) -> usize {
        vertices.max(1)
    }
}

/// Host reference BFS: returns `(parents, levels)` with the same
/// min-parent tie-break as the SpMV formulation.
pub fn reference(adjacency: &sparse::CsrMatrix, root: Idx) -> (Vec<u32>, Vec<u32>) {
    let n = adjacency.rows();
    let mut parent = vec![UNVISITED; n];
    let mut level = vec![UNVISITED; n];
    if (root as usize) >= n {
        return (parent, level);
    }
    parent[root as usize] = root;
    level[root as usize] = 0;
    let mut frontier = vec![root];
    let mut depth = 0u32;
    while !frontier.is_empty() {
        depth += 1;
        let mut seen: Vec<(Idx, Idx)> = Vec::new(); // (dst, candidate parent)
        for &u in &frontier {
            let (dsts, _) = adjacency.row(u as usize);
            for &v in dsts {
                if parent[v as usize] == UNVISITED {
                    seen.push((v, u));
                }
            }
        }
        // min-parent tie-break, matching the SpMV reduce.
        seen.sort_unstable();
        let mut next = Vec::new();
        for (v, u) in seen {
            if parent[v as usize] == UNVISITED {
                parent[v as usize] = u;
                level[v as usize] = depth;
                next.push(v);
            } else if u < parent[v as usize] && level[v as usize] == depth {
                parent[v as usize] = u;
            }
        }
        frontier = next;
    }
    (parent, level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use sparse::{CooMatrix, CsrMatrix};
    use transmuter::{Geometry, Machine, MicroArch};

    fn engine(adj: &CooMatrix) -> Engine {
        Engine::new(adj, Machine::new(Geometry::new(2, 4), MicroArch::paper()))
    }

    #[test]
    fn chain_graph_visits_in_order() {
        // 0 → 1 → 2 → 3
        let adj =
            CooMatrix::from_triplets(4, 4, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let mut e = engine(&adj);
        let r = e.run(&Bfs::new(0)).unwrap();
        assert_eq!(r.state, vec![0, 0, 1, 2]);
        // Three discovery iterations plus the final empty-probe one.
        assert_eq!(r.iterations.len(), 4);
        assert_eq!(r.iterations.last().unwrap().updates, 0);
    }

    #[test]
    fn matches_reference_on_random_graph() {
        let adj = sparse::generate::uniform(512, 512, 3000, 33).unwrap();
        let csr = CsrMatrix::from(&adj);
        let (want_parent, _) = reference(&csr, 0);
        let mut e = engine(&adj);
        let r = e.run(&Bfs::new(0)).unwrap();
        assert_eq!(r.state, want_parent);
    }

    #[test]
    fn unreachable_vertices_stay_unvisited() {
        // Two components: {0,1} and {2,3}.
        let adj = CooMatrix::from_triplets(4, 4, vec![(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let mut e = engine(&adj);
        let r = e.run(&Bfs::new(0)).unwrap();
        assert_eq!(r.state[2], UNVISITED);
        assert_eq!(r.state[3], UNVISITED);
        assert_eq!(r.state[1], 0);
    }

    #[test]
    fn frontier_density_rises_then_falls() {
        // R-MAT analogue: BFS frontier should peak mid-run.
        let adj = sparse::generate::rmat(11, 30_000, Default::default(), 3).unwrap();
        let mut e = engine(&adj);
        let r = e.run(&Bfs::new(0)).unwrap();
        let densities: Vec<f64> = r.iterations.iter().map(|i| i.frontier_density).collect();
        let peak = densities.iter().cloned().fold(0.0, f64::max);
        assert!(peak > densities[0], "frontier should grow from the root");
        assert!(
            peak > *densities.last().unwrap(),
            "frontier should shrink at the end"
        );
    }

    #[test]
    fn reconfiguration_happens_for_social_graphs() {
        let adj = sparse::generate::rmat(12, 60_000, Default::default(), 9).unwrap();
        let mut e = engine(&adj);
        let r = e.run(&Bfs::new(0)).unwrap();
        let sws: std::collections::HashSet<_> = r.iterations.iter().map(|i| i.software).collect();
        assert!(
            sws.len() > 1,
            "BFS on a social graph should use both dataflows: {sws:?}"
        );
    }
}
