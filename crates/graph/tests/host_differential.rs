//! Differential suite for the native host execution backend.
//!
//! Every engine runs on several matrices under all three backends:
//!
//! * [`ExecBackend::Differential`] asserts **inside the runtime**, on
//!   every SpMV step, that the host path's updates are bit-equal to the
//!   simulate path's golden-model updates;
//! * a host-only run must then reproduce the simulate-only run's final
//!   state exactly (same fixed point through the engine loop, not just
//!   per-step agreement);
//! * for float-valued algorithms the state comparison is `to_bits`
//!   exact — the host backend's contract is bit-identity, not
//!   tolerance.
//!
//! A property test closes the loop on plain SpMV: random COO matrices
//! and random frontiers, host result bit-equal to the golden model.

use cosparse::{CoSparse, ExecBackend, Frontier};
use graph::bc;
use graph::bfs::Bfs;
use graph::cc::ConnectedComponents;
use graph::kbfs::KBfs;
use graph::pagerank::PageRank;
use graph::sssp::Sssp;
use graph::{Algorithm, Engine, RunResult, Value};
use proptest::prelude::*;
use sparse::{CooMatrix, Idx, SparseVector};
use transmuter::{Geometry, Machine, MicroArch};

fn machine() -> Machine {
    Machine::new(Geometry::new(2, 4), MicroArch::paper())
}

/// The matrices every engine is checked on: a skewed RMAT graph, a
/// uniform random one, and a power-law one — small enough to simulate,
/// shaped differently enough to exercise both dataflows and several
/// partition layouts.
fn matrices() -> Vec<(&'static str, CooMatrix)> {
    vec![
        (
            "rmat_9",
            sparse::generate::rmat(9, 4_000, Default::default(), 42).unwrap(),
        ),
        (
            "uniform_400",
            sparse::generate::uniform(400, 400, 5_000, 7).unwrap(),
        ),
        (
            "power_law_512",
            sparse::generate::power_law(512, 512, 6_000, 2.2, 11).unwrap(),
        ),
    ]
}

fn run_on<A: Algorithm>(adj: &CooMatrix, alg: &A, backend: ExecBackend) -> RunResult<Value<A>> {
    let mut engine = Engine::new(adj, machine());
    engine.set_backend(backend);
    engine.run(alg).unwrap()
}

/// Simulate vs Host vs Differential on every suite matrix. The
/// differential run would panic on any per-step divergence; the
/// state/iteration comparisons additionally pin the engine-level fixed
/// point.
fn check_all_backends<A: Algorithm>(alg: &A) {
    for (name, adj) in matrices() {
        let sim = run_on(&adj, alg, ExecBackend::Simulate);
        let host = run_on(&adj, alg, ExecBackend::Host);
        assert_eq!(
            sim.iterations.len(),
            host.iterations.len(),
            "{}/{name}: host took a different number of iterations",
            alg.name()
        );
        assert_eq!(
            sim.state,
            host.state,
            "{}/{name}: host final state diverged",
            alg.name()
        );
        let diff = run_on(&adj, alg, ExecBackend::Differential);
        assert_eq!(
            diff.state,
            sim.state,
            "{}/{name}: differential final state diverged",
            alg.name()
        );
    }
}

#[test]
fn bfs_host_matches_simulate() {
    check_all_backends(&Bfs::new(0));
}

#[test]
fn sssp_host_matches_simulate() {
    check_all_backends(&Sssp::new(0));
}

#[test]
fn pagerank_host_matches_simulate() {
    check_all_backends(&PageRank::new(0.85, 15));
}

#[test]
fn cc_host_matches_simulate() {
    check_all_backends(&ConnectedComponents::new());
}

#[test]
fn kbfs_host_matches_simulate() {
    check_all_backends(&KBfs::new(vec![0, 3, 11, 42]));
}

/// Float states compared bit-for-bit, not by `==`: SSSP and PageRank
/// are the two f32-valued engines, so their host runs pin the
/// bit-identity contract end-to-end.
#[test]
fn float_engines_are_bit_exact_across_backends() {
    for (name, adj) in matrices() {
        let sim = run_on(&adj, &Sssp::new(0), ExecBackend::Simulate);
        let host = run_on(&adj, &Sssp::new(0), ExecBackend::Host);
        for (v, (a, b)) in sim.state.iter().zip(&host.state).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "sssp/{name} vertex {v}: {a} vs {b}"
            );
        }
        let sim = run_on(&adj, &PageRank::new(0.85, 15), ExecBackend::Simulate);
        let host = run_on(&adj, &PageRank::new(0.85, 15), ExecBackend::Host);
        for (v, (a, b)) in sim.state.iter().zip(&host.state).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "pr/{name} vertex {v}: {a} vs {b}");
        }
    }
}

/// Two host-mode PageRank runs produce bit-identical scores: the
/// parallel partition fan-out concatenates in deterministic partition
/// order and every reduce happens in ascending source order, so nothing
/// about thread scheduling can leak into the result.
#[test]
fn pagerank_host_runs_are_bit_identical() {
    let adj = sparse::generate::power_law(512, 512, 6_000, 2.2, 11).unwrap();
    let pr = PageRank::new(0.85, 20);
    let a = run_on(&adj, &pr, ExecBackend::Host);
    let b = run_on(&adj, &pr, ExecBackend::Host);
    for (v, (x, y)) in a.state.iter().zip(&b.state).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "vertex {v}: {x} vs {y}");
    }
}

/// Betweenness centrality across backends: the per-level SpMV costs
/// differ (host reports carry zero cycles) but the centrality math is
/// host-evaluated either way, so scores are bit-identical; the
/// differential run additionally cross-checks every level's timing
/// path.
#[test]
fn bc_host_matches_simulate() {
    for (name, adj) in matrices() {
        let geometry = Geometry::new(2, 4);
        let sim = bc::betweenness(&adj, 0, geometry).unwrap();
        let host = bc::betweenness_on(&adj, 0, geometry, ExecBackend::Host).unwrap();
        let diff = bc::betweenness_on(&adj, 0, geometry, ExecBackend::Differential).unwrap();
        assert_eq!(
            sim.levels.len(),
            host.levels.len(),
            "bc/{name}: level count"
        );
        for (v, (a, b)) in sim.centrality.iter().zip(&host.centrality).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "bc/{name} vertex {v}: {a} vs {b}");
        }
        assert_eq!(diff.centrality, sim.centrality, "bc/{name}: differential");
        // Host mode really skipped the simulator.
        assert!(host.total_cycles() == 0, "bc/{name}: host run cost cycles");
        assert!(sim.total_cycles() > 0, "bc/{name}: simulate run was free");
    }
}

/// One encoded random SpMV case: a square dimension, raw COO triplets
/// (duplicates summed by the constructor) and raw frontier actives
/// (deduplicated below).
type SpmvCase = (usize, Vec<(u32, u32, f32)>, Vec<(u32, f32)>);

fn arb_spmv_case() -> impl Strategy<Value = SpmvCase> {
    (2usize..40).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0u32..n as u32, 0u32..n as u32, -4.0f32..4.0), 1..120),
            proptest::collection::vec((0u32..n as u32, 0.25f32..4.0), 0..n.min(24)),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Plain SpMV on random COO matrices: the host backend's product is
    /// bit-equal to the simulate backend's golden-model product, and a
    /// differential runtime (asserting internally) agrees with both.
    #[test]
    fn spmv_host_matches_simulate_on_random_coo(case in arb_spmv_case()) {
        let (n, triplets, raw_active) = case;
        let coo = CooMatrix::from_triplets(n, n, triplets).unwrap();
        let mut active: Vec<(Idx, f32)> = raw_active;
        active.sort_unstable_by_key(|&(i, _)| i);
        active.dedup_by_key(|&mut (i, _)| i);
        let frontier = Frontier::Sparse(
            SparseVector::from_sorted(n, active).expect("sorted dedup'd actives"),
        );

        let mut sim = CoSparse::new(&coo, machine());
        let mut host = CoSparse::new(&coo, machine());
        host.set_backend(ExecBackend::Host);
        let mut diff = CoSparse::new(&coo, machine());
        diff.set_backend(ExecBackend::Differential);

        let want = sim.spmv(&frontier).unwrap();
        let got = host.spmv(&frontier).unwrap();
        prop_assert_eq!(&got.software, &want.software);
        let mut want_pairs = Vec::new();
        let mut got_pairs = Vec::new();
        want.result.collect_active(&mut want_pairs);
        got.result.collect_active(&mut got_pairs);
        prop_assert_eq!(want_pairs.len(), got_pairs.len());
        for ((wi, wv), (gi, gv)) in want_pairs.iter().zip(&got_pairs) {
            prop_assert_eq!(wi, gi);
            prop_assert_eq!(wv.to_bits(), gv.to_bits());
        }
        // The differential backend asserts host ≡ simulate internally.
        let checked = diff.spmv(&frontier).unwrap();
        prop_assert_eq!(&checked.result, &want.result);
    }
}
