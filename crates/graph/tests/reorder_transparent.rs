//! Reordering transparency at the algorithm level: pinning any
//! [`ReorderKind`] on the runtime must be invisible in every engine's
//! answer. Reordering only changes the simulated address stream — the
//! functional result stays in the original index space — so BFS
//! parents, SSSP distances and PageRank scores must be bit-identical
//! to an arrival-order run under every execution backend. The
//! Differential backend additionally cross-checks host against the
//! simulate golden model on every SpMV step while the reordered image
//! is streaming.

use cosparse::{ExecBackend, ReorderKind};
use graph::bfs::Bfs;
use graph::pagerank::PageRank;
use graph::sssp::Sssp;
use graph::{Algorithm, Engine, RunResult, Value};
use sparse::CooMatrix;
use transmuter::{Geometry, Machine, MicroArch};

fn machine() -> Machine {
    Machine::new(Geometry::new(2, 4), MicroArch::paper())
}

/// A skewed RMAT graph and a power-law one: both have enough hub
/// structure that every reordering heuristic produces a non-identity
/// permutation, so the pinned runs genuinely stream a permuted image.
fn matrices() -> Vec<(&'static str, CooMatrix)> {
    vec![
        (
            "rmat_9",
            sparse::generate::rmat(9, 4_000, Default::default(), 42).unwrap(),
        ),
        (
            "power_law_512",
            sparse::generate::power_law(512, 512, 6_000, 2.2, 11).unwrap(),
        ),
    ]
}

fn run_pinned<A: Algorithm>(
    adj: &CooMatrix,
    alg: &A,
    backend: ExecBackend,
    reorder: Option<ReorderKind>,
) -> RunResult<Value<A>> {
    let mut engine = Engine::new(adj, machine());
    engine.set_backend(backend);
    engine.runtime_mut().set_reorder_override(reorder);
    engine.run(alg).unwrap()
}

/// Every (reorder, backend) pairing reproduces the arrival-order
/// simulate run: same iteration count, same final state. `PartialEq`
/// on `u32` states is exact; float engines get a separate `to_bits`
/// check below.
fn check_transparent<A: Algorithm>(alg: &A) {
    for (name, adj) in matrices() {
        let want = run_pinned(&adj, alg, ExecBackend::Simulate, None);
        for kind in ReorderKind::ALL {
            for backend in [
                ExecBackend::Simulate,
                ExecBackend::Host,
                ExecBackend::Differential,
            ] {
                let got = run_pinned(&adj, alg, backend, Some(kind));
                assert_eq!(
                    want.iterations.len(),
                    got.iterations.len(),
                    "{}/{name}: {kind}/{backend:?} changed the iteration count",
                    alg.name()
                );
                assert_eq!(
                    want.state,
                    got.state,
                    "{}/{name}: {kind}/{backend:?} perturbed the final state",
                    alg.name()
                );
            }
        }
    }
}

#[test]
fn bfs_is_reorder_transparent() {
    check_transparent(&Bfs::new(0));
}

#[test]
fn sssp_is_reorder_transparent() {
    check_transparent(&Sssp::new(0));
}

#[test]
fn pagerank_is_reorder_transparent() {
    check_transparent(&PageRank::new(0.85, 10));
}

/// The float engines' transparency pinned `to_bits`-exact: a reordered
/// host run and a reordered differential run must not move a single ULP
/// relative to the arrival-order simulate run.
#[test]
fn float_states_are_bit_exact_under_every_reordering() {
    for (name, adj) in matrices() {
        let want = run_pinned(&adj, &Sssp::new(0), ExecBackend::Simulate, None);
        for kind in ReorderKind::CANDIDATES {
            for backend in [ExecBackend::Host, ExecBackend::Differential] {
                let got = run_pinned(&adj, &Sssp::new(0), backend, Some(kind));
                for (v, (a, b)) in want.state.iter().zip(&got.state).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "sssp/{name} {kind}/{backend:?} vertex {v}: {a} vs {b}"
                    );
                }
            }
        }
        let want = run_pinned(&adj, &PageRank::new(0.85, 10), ExecBackend::Simulate, None);
        for kind in ReorderKind::CANDIDATES {
            let got = run_pinned(
                &adj,
                &PageRank::new(0.85, 10),
                ExecBackend::Differential,
                Some(kind),
            );
            for (v, (a, b)) in want.state.iter().zip(&got.state).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "pr/{name} {kind} vertex {v}: {a} vs {b}"
                );
            }
        }
    }
}

/// The pinned runs really do re-key the plan per reordering: a shared
/// graph serving one engine per kind builds one reordered operand set
/// per non-trivial kind, and reports the kind in every outcome.
#[test]
fn pinned_reorderings_rekey_plans_and_report_the_kind() {
    let (_, adj) = matrices().remove(1);
    let graph = Engine::shared_graph(&adj, Geometry::new(2, 4), MicroArch::paper());
    let want = {
        let mut engine = Engine::with_shared(&graph, machine());
        engine.run(&Bfs::new(0)).unwrap().state
    };
    for kind in ReorderKind::CANDIDATES {
        let mut engine = Engine::with_shared(&graph, machine());
        engine.runtime_mut().set_reorder_override(Some(kind));
        let run = engine.run(&Bfs::new(0)).unwrap();
        assert_eq!(run.state, want, "{kind}: state diverged on shared graph");
        assert!(
            run.iterations.iter().all(|it| it.reorder == kind),
            "{kind}: outcome did not report the pinned kind"
        );
    }
    let cs = graph.cache_stats();
    assert_eq!(
        cs.reorder_builds,
        ReorderKind::CANDIDATES.len() as u64,
        "one reordered operand build per non-trivial kind"
    );
}
