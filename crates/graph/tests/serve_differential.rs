//! Differential suite for the serving layer.
//!
//! The multi-tenant contract: an answer produced by a [`GraphService`]
//! worker session is **bit-identical** to a dedicated [`Engine`] run on
//! the same graph — under every execution backend, and regardless of
//! how many clients are submitting concurrently. On top of that, the
//! shared-graph split must actually amortize: N engines over one
//! [`SharedGraph`] handle build each plan exactly once, observable
//! through `cache_stats()`.
//!
//! [`GraphService`]: cosparse::GraphService
//! [`SharedGraph`]: cosparse::SharedGraph

use cosparse::{ExecBackend, ServeConfig};
use graph::bfs::Bfs;
use graph::pagerank::PageRank;
use graph::serve::{start_service, GraphQuery, QueryAnswer};
use graph::sssp::Sssp;
use graph::Engine;
use sparse::CooMatrix;
use std::sync::Arc;
use transmuter::{Geometry, Machine, MicroArch};

fn geometry() -> Geometry {
    Geometry::new(2, 4)
}

fn machine() -> Machine {
    Machine::new(geometry(), MicroArch::paper())
}

fn adjacency() -> CooMatrix {
    sparse::generate::power_law(512, 512, 6_000, 2.2, 11).unwrap()
}

/// The query mix every test serves: two BFS roots, two SSSP sources,
/// one PageRank snapshot — sparse→dense→sparse transitions and an
/// always-dense workload, so every dataflow the decision tree picks
/// gets exercised through the serve path.
fn queries() -> Vec<GraphQuery> {
    vec![
        GraphQuery::Bfs { source: 0 },
        GraphQuery::Bfs { source: 7 },
        GraphQuery::Sssp { source: 0 },
        GraphQuery::Sssp { source: 13 },
        GraphQuery::PageRank {
            damping: 0.85,
            iterations: 15,
        },
    ]
}

/// Ground truth: each query on its own dedicated engine (own machine,
/// own graph state), simulate backend.
fn ground_truth(adj: &CooMatrix) -> Vec<QueryAnswer> {
    queries()
        .into_iter()
        .map(|q| {
            let mut engine = Engine::new(adj, machine());
            match q {
                GraphQuery::Bfs { source } => {
                    QueryAnswer::Bfs(engine.run(&Bfs::new(source)).unwrap().state)
                }
                GraphQuery::Sssp { source } => {
                    QueryAnswer::Sssp(engine.run(&Sssp::new(source)).unwrap().state)
                }
                GraphQuery::PageRank {
                    damping,
                    iterations,
                } => QueryAnswer::PageRank(
                    engine
                        .run(&PageRank::new(damping, iterations))
                        .unwrap()
                        .state,
                ),
            }
        })
        .collect()
}

/// The full query mix answered through a service running `backend`.
fn service_answers(adj: &CooMatrix, backend: ExecBackend) -> Vec<QueryAnswer> {
    let graph = Engine::shared_graph(adj, geometry(), MicroArch::paper());
    let service = start_service(
        Arc::clone(&graph),
        ServeConfig {
            workers: 2,
            batch: 4,
            queue_cap: 256,
            backend,
        },
    );
    let tickets: Vec<_> = queries()
        .into_iter()
        .map(|q| service.submit(q.into_job()))
        .collect();
    let answers = tickets
        .into_iter()
        .map(|t| t.wait().expect("query failed"))
        .collect();
    service.shutdown();
    answers
}

/// Float answers compared `to_bits`-exact: the serve path must not
/// perturb a single ULP relative to a dedicated engine.
fn assert_bits_eq(got: &QueryAnswer, want: &QueryAnswer, ctx: &str) {
    match (got, want) {
        (QueryAnswer::Bfs(g), QueryAnswer::Bfs(w)) => {
            assert_eq!(g, w, "{ctx}: bfs parents diverged");
        }
        (QueryAnswer::Sssp(g), QueryAnswer::Sssp(w))
        | (QueryAnswer::PageRank(g), QueryAnswer::PageRank(w)) => {
            assert_eq!(g.len(), w.len(), "{ctx}: state length");
            for (v, (a, b)) in g.iter().zip(w).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{ctx} vertex {v}: {a} vs {b}");
            }
        }
        _ => panic!("{ctx}: answer variants differ"),
    }
}

/// Simulate, Host and Differential services all answer the query mix
/// bit-identically to dedicated engines. The Differential run
/// additionally cross-checks host against simulate on every SpMV step
/// inside each worker session.
#[test]
fn served_answers_match_dedicated_engines_on_every_backend() {
    let adj = adjacency();
    let want = ground_truth(&adj);
    for backend in [
        ExecBackend::Simulate,
        ExecBackend::Host,
        ExecBackend::Differential,
    ] {
        let got = service_answers(&adj, backend);
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_bits_eq(g, w, &format!("{backend:?} query {i}"));
        }
    }
}

/// Eight client threads submitting the full mix concurrently get the
/// same bit-exact answers a lone client would: per-query state lives in
/// the session, so interleaving queries from many tenants cannot bleed
/// adaptive or frontier state between them.
#[test]
fn concurrent_clients_get_bit_identical_answers() {
    const CLIENTS: usize = 8;
    let adj = adjacency();
    let want = ground_truth(&adj);
    let graph = Engine::shared_graph(&adj, geometry(), MicroArch::paper());
    let service = start_service(
        Arc::clone(&graph),
        ServeConfig {
            workers: 4,
            batch: 4,
            queue_cap: 256,
            backend: ExecBackend::Host,
        },
    );

    let per_client: Vec<Vec<QueryAnswer>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let service = &service;
                s.spawn(move || {
                    // Stagger submission order per client so workers see
                    // genuinely interleaved query types.
                    let mut qs = queries();
                    let shift = c % qs.len();
                    qs.rotate_left(shift);
                    let tickets: Vec<_> = qs.iter().map(|q| service.submit(q.into_job())).collect();
                    let mut answers: Vec<_> = tickets
                        .into_iter()
                        .map(|t| t.wait().expect("query failed"))
                        .collect();
                    answers.rotate_right(shift);
                    answers
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    let stats = service.shutdown();
    assert_eq!(stats.submitted, (CLIENTS * want.len()) as u64);
    assert_eq!(stats.completed, stats.submitted);

    for (c, answers) in per_client.iter().enumerate() {
        for (i, (g, w)) in answers.iter().zip(&want).enumerate() {
            assert_bits_eq(g, w, &format!("client {c} query {i}"));
        }
    }
}

/// The same-source memo must be invisible in the answers: every cached
/// query resolves bit-identically to a fresh `submit` of the same
/// query, and bumping the graph's content epoch invalidates the memo so
/// the next submission recomputes (observable through `cache_hits`).
#[test]
fn cached_answers_are_bit_identical_and_epoch_scoped() {
    let adj = adjacency();
    let graph = Engine::shared_graph(&adj, geometry(), MicroArch::paper());
    let service = start_service(
        Arc::clone(&graph),
        ServeConfig {
            workers: 2,
            batch: 4,
            queue_cap: 256,
            backend: ExecBackend::Differential,
        },
    );

    // Fresh answers through the plain path.
    let fresh: Vec<QueryAnswer> = queries()
        .into_iter()
        .map(|q| service.submit(q.into_job()).wait().expect("query failed"))
        .collect();

    // First cached round warms the memo, second round must hit it.
    for round in 0..2 {
        let got: Vec<QueryAnswer> = queries()
            .into_iter()
            .map(|q| q.submit_cached(&service).wait().expect("query failed"))
            .collect();
        for (i, (g, w)) in got.iter().zip(&fresh).enumerate() {
            assert_bits_eq(g, w, &format!("cached round {round} query {i}"));
        }
    }
    let warm = queries().len() as u64;
    assert_eq!(service.stats().cache_hits, warm, "second round all hits");

    // An epoch bump (graph content changed) empties the memo: the next
    // cached submission recomputes instead of hitting.
    graph.bump_epoch();
    let q = GraphQuery::Bfs { source: 0 };
    let recomputed = q.submit_cached(&service).wait().expect("query failed");
    assert_bits_eq(&recomputed, &fresh[0], "post-epoch recompute");
    let stats = service.shutdown();
    assert_eq!(stats.cache_hits, warm, "epoch bump forced a recompute");
    assert_eq!(stats.completed, stats.submitted - warm);
}

/// Satellite check for the shared-handle constructor: N engines over
/// one `SharedGraph` build layout, CSC and every plan exactly once —
/// `cache_stats()` shows zero additional plan builds after the first
/// engine's run — while producing states identical to N fully
/// independent engines.
#[test]
fn engines_on_one_shared_graph_build_plans_once() {
    const ENGINES: usize = 4;
    let adj = adjacency();
    let want: Vec<Vec<u32>> = (0..ENGINES)
        .map(|_| {
            Engine::new(&adj, machine())
                .run(&Bfs::new(0))
                .unwrap()
                .state
        })
        .collect();

    let graph = Engine::shared_graph(&adj, geometry(), MicroArch::paper());
    let mut builds_after_first = 0;
    for (i, want_state) in want.iter().enumerate() {
        let mut engine = Engine::with_shared(&graph, machine());
        let state = engine.run(&Bfs::new(0)).unwrap().state;
        assert_eq!(&state, want_state, "engine {i} state diverged");
        let cs = graph.cache_stats();
        if i == 0 {
            builds_after_first = cs.plan_builds;
            assert!(builds_after_first >= 1, "first run must build plans");
        } else {
            assert_eq!(
                cs.plan_builds, builds_after_first,
                "engine {i} rebuilt a plan the first engine already built"
            );
        }
    }
    let cs = graph.cache_stats();
    // Later engines re-bound existing plans instead of building:
    // at least one registry hit per additional engine.
    assert!(
        cs.plan_hits >= (ENGINES - 1) as u64,
        "expected registry hits from engines 2..N, got {}",
        cs.plan_hits
    );
}
