//! Format axis under [`ExecBackend::Differential`]: every storage
//! format, on every engine that accepts it, must produce bit-identical
//! results — the backend cross-checks the native host walk against the
//! simulator's golden model on every invocation, and this suite
//! additionally cross-checks the formats against each other.

use cosparse::{
    CoSparse, ExecBackend, FormatKind, Frontier, HwConfig, Policy, SharedGraph, SwConfig,
};
use sparse::{CooMatrix, DenseVector, Idx};
use std::sync::Arc;
use transmuter::{Geometry, Machine, MicroArch};

const N: usize = 384;

/// A banded matrix — 24-entry dense runs per row — whose clustered
/// columns make the probe pick the hierarchical bitmap, and whose
/// aligned 4x4 neighborhoods give BCSR real blocks to find.
fn banded(n: usize) -> CooMatrix {
    let mut triplets = Vec::new();
    for r in 0..n {
        let base = (r / 4) * 4 % (n - 24);
        for k in 0..24 {
            let c = base + k;
            triplets.push((
                r as Idx,
                c as Idx,
                ((r * 31 + c * 7) % 13) as f32 * 0.25 + 0.5,
            ));
        }
    }
    CooMatrix::from_triplets(n, n, triplets).expect("banded in bounds")
}

fn session(graph: &Arc<SharedGraph>) -> CoSparse {
    let machine = Machine::new(Geometry::new(2, 4), MicroArch::paper());
    let mut s = CoSparse::with_shared(Arc::clone(graph), machine);
    s.set_backend(ExecBackend::Differential);
    s
}

/// Result bits in a representation-independent form: sparse results
/// (the OP engine's native output) scatter onto +0.0 before comparison.
fn dense_bits(frontier: &Frontier) -> Vec<u32> {
    match frontier {
        Frontier::Dense(y) => y.iter().map(|v| v.to_bits()).collect(),
        Frontier::Sparse(y) => {
            let mut full = vec![0.0f32; y.dim()];
            for (i, v) in y.iter() {
                full[i as usize] = v;
            }
            full.iter().map(|v| v.to_bits()).collect()
        }
    }
}

/// Every IP format on both IP hardware slots, differentially checked,
/// then compared bit-for-bit against each other and the OP/CSC answer.
#[test]
fn all_formats_and_engines_agree_bit_exactly() {
    let m = banded(N);
    let graph = SharedGraph::new(&m, Geometry::new(2, 4), MicroArch::paper());
    let x = Frontier::Dense(sparse::generate::random_dense_vector(N, 41));

    let mut answers: Vec<(String, Vec<u32>)> = Vec::new();
    for hw in [HwConfig::Sc, HwConfig::Scs] {
        for format in [FormatKind::Coo, FormatKind::Bitmap, FormatKind::Bcsr] {
            let mut s = session(&graph);
            s.set_policy(Policy::Fixed(SwConfig::InnerProduct, hw));
            s.set_format_override(Some(format));
            let out = s.spmv(&x).expect("differential ip spmv");
            assert_eq!(out.format, format, "override must reach the outcome");
            answers.push((format!("IP/{hw}/{format}"), dense_bits(&out.result)));
        }
    }
    // The OP engine always streams CSC; a sparse frontier covering a
    // slice of the columns keeps its merge path honest.
    let active: Vec<(Idx, f32)> = (0..N as Idx).step_by(3).map(|i| (i, 1.0)).collect();
    let sparse_x = {
        let mut v = DenseVector::filled(N, 0.0f32);
        for &(i, w) in &active {
            v[i as usize] = w;
        }
        Frontier::Dense(v)
    };
    for (label, bits) in &answers {
        assert_eq!(
            bits, &answers[0].1,
            "{label} diverged from {}",
            answers[0].0
        );
    }
    let mut op = session(&graph);
    op.set_policy(Policy::Fixed(SwConfig::OuterProduct, HwConfig::Pc));
    let op_out = op.spmv(&sparse_x).expect("differential op spmv");
    assert_eq!(op_out.format, FormatKind::Csc);
    let mut ip = session(&graph);
    ip.set_policy(Policy::Fixed(SwConfig::InnerProduct, HwConfig::Sc));
    ip.set_format_override(Some(FormatKind::Bitmap));
    let ip_out = ip.spmv(&sparse_x).expect("differential ip spmv");
    assert_eq!(
        dense_bits(&op_out.result),
        dense_bits(&ip_out.result),
        "OP/CSC and IP/bitmap disagree on the sparse frontier"
    );
}

/// Auto policy end to end on the clustered matrix: the probe steers the
/// dense-frontier decision to a non-COO format, the differential
/// backend validates the resulting native path, and the outcome is
/// bit-identical to the forced-COO answer.
#[test]
fn auto_policy_picks_probed_format_and_stays_bit_exact() {
    let m = banded(N);
    let graph = SharedGraph::new(&m, Geometry::new(2, 4), MicroArch::paper());
    let x = Frontier::Dense(sparse::generate::random_dense_vector(N, 43));

    let mut auto = session(&graph);
    let out = auto.spmv(&x).expect("differential auto spmv");
    assert_eq!(out.software, SwConfig::InnerProduct);
    assert_ne!(
        out.format,
        FormatKind::Coo,
        "the banded matrix's probe must steer IP off the COO stream"
    );

    let mut coo = session(&graph);
    coo.set_policy(Policy::Fixed(SwConfig::InnerProduct, HwConfig::Sc));
    coo.set_format_override(Some(FormatKind::Coo));
    let baseline = coo.spmv(&x).expect("differential coo spmv");
    assert_eq!(dense_bits(&out.result), dense_bits(&baseline.result));
}
