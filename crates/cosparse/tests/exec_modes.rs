//! Runtime-level equivalence of the execution cores: for every
//! software x hardware pairing, a runtime driving a machine forced into
//! epoch-parallel tile execution must produce bit-identical reports and
//! results to a sequential one — including warm-cache re-runs, which
//! exercise the snapshot/replay/commit machinery against primed state.
//!
//! Sc/Scs pairings are ineligible for tile parallelism (shared L2
//! couples the tiles) and exercise the transparent fallback; Pc/Ps
//! pairings actually fan the tiles out across threads.

use cosparse::{CoSparse, Frontier, HwConfig, Policy, SwConfig};
use transmuter::{ExecMode, Geometry, Machine, MicroArch};

const N: usize = 1024;
const NNZ: usize = 15_000;

fn runtime(mode: ExecMode) -> CoSparse {
    let m = sparse::generate::uniform(N, N, NNZ, 21).unwrap();
    let mut machine = Machine::new(Geometry::new(2, 4), MicroArch::paper());
    machine.set_exec_mode(mode);
    CoSparse::new(&m, machine)
}

#[test]
fn parallel_tiles_matches_sequential_on_all_combos() {
    for sw in [SwConfig::InnerProduct, SwConfig::OuterProduct] {
        for hw in [HwConfig::Sc, HwConfig::Scs, HwConfig::Pc, HwConfig::Ps] {
            let frontier = match sw {
                SwConfig::InnerProduct => {
                    Frontier::Dense(sparse::generate::random_dense_vector(N, 3))
                }
                SwConfig::OuterProduct => {
                    Frontier::Sparse(sparse::generate::random_sparse_vector(N, 0.05, 3).unwrap())
                }
            };
            let mut seq = runtime(ExecMode::Sequential);
            seq.set_policy(Policy::Fixed(sw, hw));
            let mut par = runtime(ExecMode::ParallelTiles);
            par.set_policy(Policy::Fixed(sw, hw));
            // Three calls: cold caches, then two warm replays.
            for call in 0..3 {
                let a = seq.spmv(&frontier).unwrap();
                let b = par.spmv(&frontier).unwrap();
                assert_eq!(
                    a.report, b.report,
                    "{sw:?}/{hw} call {call}: reports diverge"
                );
                assert_eq!(a.result, b.result, "{sw:?}/{hw} call {call}");
                assert_eq!((a.software, a.hardware), (b.software, b.hardware));
            }
        }
    }
}

#[test]
fn exec_mode_survives_graph_engine_iterations() {
    // A BFS-like sweep under the automatic policy switches dataflows
    // and hardware mid-run; both cores must track each other through
    // every reconfiguration and conversion.
    let mut seq = runtime(ExecMode::Sequential);
    let mut par = runtime(ExecMode::ParallelTiles);
    let mut fa = Frontier::Sparse(sparse::generate::random_sparse_vector(N, 0.01, 7).unwrap());
    let mut fb = fa.clone();
    for step in 0..4 {
        let a = seq.spmv(&fa).unwrap();
        let b = par.spmv(&fb).unwrap();
        assert_eq!(a.report, b.report, "step {step}");
        assert_eq!(a.result, b.result, "step {step}");
        fa = a.result;
        fb = b.result;
        if fa.nnz() == 0 {
            break;
        }
    }
}
