//! Golden cycle-count snapshots for all 8 SW x HW combinations.
//!
//! These numbers were captured from the pre-`Program`-IR `Machine::run`
//! event loop on fixed seeded inputs. They pin the simulator's timing
//! model bit-for-bit: any execution-core change (including the compiled
//! `Program` path and the epoch-parallel tile core) must reproduce them
//! exactly. If a PR *intends* to change the timing model, the new
//! numbers must be re-captured deliberately and the change called out.

use cosparse::{CoSparse, Frontier, HwConfig, Policy, SwConfig};
use transmuter::{Geometry, Machine, MicroArch};

const N: usize = 1024;
const NNZ: usize = 15_000;
const SEED: u64 = 21;

fn runtime() -> CoSparse {
    let m = sparse::generate::uniform(N, N, NNZ, SEED).unwrap();
    CoSparse::new(&m, Machine::new(Geometry::new(2, 4), MicroArch::paper()))
}

fn frontier(sw: SwConfig) -> Frontier {
    match sw {
        SwConfig::InnerProduct => Frontier::Dense(sparse::generate::random_dense_vector(N, 3)),
        SwConfig::OuterProduct => {
            Frontier::Sparse(sparse::generate::random_sparse_vector(N, 0.05, 3).unwrap())
        }
    }
}

/// (sw, hw, expected cycles, expected op count) for every combination.
/// Each entry uses a fresh runtime so no conversion stream is charged.
const GOLDEN: &[(SwConfig, HwConfig, u64, u64)] = &[
    (SwConfig::InnerProduct, HwConfig::Sc, 60856, 61024),
    (SwConfig::InnerProduct, HwConfig::Scs, 63025, 65136),
    (SwConfig::InnerProduct, HwConfig::Pc, 96282, 61024),
    (SwConfig::InnerProduct, HwConfig::Ps, 126694, 61024),
    (SwConfig::OuterProduct, HwConfig::Sc, 7579, 14985),
    (SwConfig::OuterProduct, HwConfig::Scs, 7649, 14985),
    (SwConfig::OuterProduct, HwConfig::Pc, 6598, 14985),
    (SwConfig::OuterProduct, HwConfig::Ps, 6739, 14985),
];

#[test]
fn golden_cycle_counts_all_eight_combos() {
    let mut failures = Vec::new();
    for &(sw, hw, want_cycles, want_ops) in GOLDEN {
        let mut rt = runtime();
        rt.set_policy(Policy::Fixed(sw, hw));
        let f = frontier(sw);
        let out = rt.spmv(&f).unwrap_or_else(|e| panic!("{sw:?}/{hw}: {e}"));
        let (cycles, ops) = (out.report.cycles, out.report.stats.ops);
        println!("    ({sw:?}, {hw:?}, {cycles}, {ops}),");
        if (cycles, ops) != (want_cycles, want_ops) {
            failures.push(format!(
                "{sw:?}/{hw}: cycles {cycles} ops {ops}, golden {want_cycles}/{want_ops}"
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

/// Golden cycles for the *second* invocation on the same runtime: the
/// warm path (plan cache hit, caches primed, no reconfiguration) — the
/// steady-state iterative hot path the compiled-`Program` core serves.
const GOLDEN_WARM: &[(SwConfig, HwConfig, u64)] = &[
    (SwConfig::InnerProduct, HwConfig::Sc, 60372),
    (SwConfig::InnerProduct, HwConfig::Scs, 62898),
    (SwConfig::InnerProduct, HwConfig::Pc, 92261),
    (SwConfig::InnerProduct, HwConfig::Ps, 123789),
    (SwConfig::OuterProduct, HwConfig::Sc, 4032),
    (SwConfig::OuterProduct, HwConfig::Scs, 4197),
    (SwConfig::OuterProduct, HwConfig::Pc, 2497),
    (SwConfig::OuterProduct, HwConfig::Ps, 3231),
];

#[test]
fn golden_warm_cycle_counts_all_eight_combos() {
    let mut failures = Vec::new();
    for &(sw, hw, want) in GOLDEN_WARM {
        let mut rt = runtime();
        rt.set_policy(Policy::Fixed(sw, hw));
        let f = frontier(sw);
        rt.spmv(&f).unwrap();
        let warm = rt.spmv(&f).unwrap().report.cycles;
        println!("    ({sw:?}, {hw:?}, {warm}),");
        if warm != want {
            failures.push(format!("{sw:?}/{hw}: warm cycles {warm}, golden {want}"));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

/// The single-pass pipeline's caches behave as designed: a repeated
/// dense-IP invocation builds its program exactly once, a repeated
/// sparse-OP invocation hits the scratch-program cache, and the warm
/// path reaches the machine's steady-state memo.
#[test]
fn pipeline_caches_hit_on_repeat_invocations() {
    // Dense IP: program cached per hardware slot after the first build.
    let mut rt = runtime();
    rt.set_policy(Policy::Fixed(SwConfig::InnerProduct, HwConfig::Sc));
    let f = frontier(SwConfig::InnerProduct);
    rt.spmv(&f).unwrap();
    rt.spmv(&f).unwrap();
    let cs = rt.cache_stats();
    assert_eq!(cs.plan_builds, 1, "one plan for one matrix");
    assert_eq!(cs.dense_program_builds, 1, "dense program built once");
    assert_eq!(cs.scratch_program_builds, 0);
    assert_eq!(cs.conversion_builds, 0, "no dataflow switch occurred");

    // Sparse OP: identical frontier reuses the scratch program in place.
    let mut rt = runtime();
    rt.set_policy(Policy::Fixed(SwConfig::OuterProduct, HwConfig::Pc));
    let f = frontier(SwConfig::OuterProduct);
    rt.spmv(&f).unwrap();
    rt.spmv(&f).unwrap();
    let cs = rt.cache_stats();
    assert_eq!(cs.scratch_program_builds, 1, "scratch built on first call");
    assert_eq!(cs.scratch_program_hits, 1, "second call reuses it");
    assert_eq!(cs.dense_program_builds, 0);

    // Steady-state memo: keep re-running the identical program until the
    // machine recognizes the recurring steady state. OP/PC reaches its
    // cache-state fixpoint after a handful of calls (measured: 7); the
    // dense-IP working set never converges within the memo's 16-entry
    // ring — see `steady_memo_wanders_past_ring_capacity` in the
    // transmuter machine tests for the characterization.
    let mut rt = runtime();
    rt.set_policy(Policy::Fixed(SwConfig::OuterProduct, HwConfig::Pc));
    let f = frontier(SwConfig::OuterProduct);
    for _ in 0..8 {
        rt.spmv(&f).unwrap();
    }
    let cs = rt.cache_stats();
    assert!(
        cs.steady_memo.hits >= 1,
        "repeated identical program should reach the steady memo: {:?}",
        cs.steady_memo
    );
    assert!(cs.steady_memo.hit_rate() > 0.0);
}

/// Two identical fresh runtimes must agree exactly: the simulator is
/// deterministic end to end (matrix generation, planning, execution).
#[test]
fn fresh_runtimes_are_bit_identical() {
    for &(sw, hw, ..) in GOLDEN {
        let f = frontier(sw);
        let run = |_: ()| {
            let mut rt = runtime();
            rt.set_policy(Policy::Fixed(sw, hw));
            rt.spmv(&f).unwrap().report
        };
        let (a, b) = (run(()), run(()));
        assert_eq!(a.cycles, b.cycles, "{sw:?}/{hw}: cycles diverged");
        assert_eq!(a.stats, b.stats, "{sw:?}/{hw}: stats diverged");
    }
}
