//! `cache_stats()` under contention: many client threads hammering one
//! `GraphService` must leave the shared graph's counters exactly
//! consistent — every plan bind and every dense-IP invocation counted
//! once, dense programs built exactly once per (sw, hw) pairing no
//! matter the interleaving.

use cosparse::{
    ExecBackend, Frontier, GraphService, HwConfig, Policy, ServeConfig, SharedGraph, SwConfig,
};
use sparse::DenseVector;
use std::sync::Arc;
use transmuter::{Geometry, MicroArch};

const N: usize = 512;
const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 4;
const SPMVS_PER_QUERY: u64 = 2;

/// One query: pin the session to `(InnerProduct, hw)`, run the same
/// fully-dense SpMV twice (both land on the shared dense-IP program for
/// that hardware slot), answer the result bits.
fn query(hw: HwConfig) -> impl FnOnce(&mut cosparse::CoSparse) -> Vec<u32> + Send + 'static {
    move |session| {
        session.set_policy(Policy::Fixed(SwConfig::InnerProduct, hw));
        let x = Frontier::Dense(DenseVector::filled(N, 1.0f32));
        let mut out = session.spmv(&x).expect("spmv");
        for _ in 1..SPMVS_PER_QUERY {
            out = session.spmv(&x).expect("spmv");
        }
        match out.result {
            Frontier::Dense(y) => y.iter().map(|v| v.to_bits()).collect(),
            other => panic!("IP must produce a dense result, got {other:?}"),
        }
    }
}

#[test]
fn contended_service_counts_exactly() {
    let m = sparse::generate::uniform(N, N, 6000, 23).unwrap();
    let graph = SharedGraph::new(&m, Geometry::new(2, 4), MicroArch::paper());
    let service = GraphService::start(
        Arc::clone(&graph),
        ServeConfig {
            workers: 4,
            batch: 4,
            queue_cap: 256,
            backend: ExecBackend::Simulate,
        },
    );
    let service = Arc::new(service);

    // CLIENTS submitter threads, each issuing queries alternating
    // between the two IP hardware slots.
    let answers: Vec<Vec<u32>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let service = Arc::clone(&service);
                s.spawn(move || {
                    (0..QUERIES_PER_CLIENT)
                        .map(|q| {
                            let hw = if (c + q) % 2 == 0 {
                                HwConfig::Sc
                            } else {
                                HwConfig::Scs
                            };
                            service.submit(query(hw)).wait()
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });

    // Every query answered, and every answer bit-identical: the SpMV
    // result does not depend on the hardware slot or the worker.
    assert_eq!(answers.len(), CLIENTS * QUERIES_PER_CLIENT);
    for a in &answers {
        assert_eq!(a, &answers[0], "answers must be bit-identical");
    }

    let service = Arc::into_inner(service).expect("all clients joined");
    let workers = service.workers() as u64;
    let stats = service.shutdown();
    assert_eq!(stats.submitted, (CLIENTS * QUERIES_PER_CLIENT) as u64);
    assert_eq!(stats.completed, stats.submitted);
    assert!(stats.batches >= 1 && stats.batches <= stats.completed);

    let cs = graph.cache_stats();
    // One (profile, balancing) key ⇒ exactly one plan build, ever; each
    // worker that served at least one query bound it exactly once.
    assert_eq!(cs.plan_builds, 1);
    assert!(
        cs.plan_hits < workers,
        "at most one bind per worker: {} hits, {workers} workers",
        cs.plan_hits
    );
    // Two hardware slots were exercised ⇒ exactly two dense programs
    // built across all workers, and builds + hits account for every
    // single dense invocation — no lost or double counts under races.
    assert_eq!(cs.dense_program_builds, 2, "one build per (sw, hw) slot");
    assert_eq!(
        cs.dense_program_builds + cs.dense_program_hits,
        (CLIENTS * QUERIES_PER_CLIENT) as u64 * SPMVS_PER_QUERY,
        "every dense invocation counted exactly once"
    );
    // All-dense IP workload: no frontier-dependent or conversion
    // programs anywhere.
    assert_eq!(cs.scratch_program_builds, 0);
    assert_eq!(cs.scratch_program_hits, 0);
    assert_eq!(cs.conversion_builds, 0);
}

/// Backpressure bookkeeping under contention: many clients hammering
/// `try_submit` against a tiny queue must leave `submitted + rejected`
/// exactly equal to the attempts, every accepted query completed, and
/// every delivered answer bit-identical — shedding load never corrupts
/// results or loses a counter.
#[test]
fn overloaded_service_sheds_load_with_exact_counters() {
    const ATTEMPTS_PER_CLIENT: usize = 16;
    let m = sparse::generate::uniform(N, N, 6000, 31).unwrap();
    let graph = SharedGraph::new(&m, Geometry::new(2, 4), MicroArch::paper());
    let service = GraphService::start(
        Arc::clone(&graph),
        ServeConfig {
            workers: 2,
            batch: 2,
            queue_cap: 3,
            backend: ExecBackend::Simulate,
        },
    );
    let service = Arc::new(service);

    let (answers, shed): (Vec<Vec<u32>>, u64) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let service = Arc::clone(&service);
                s.spawn(move || {
                    let mut got = Vec::new();
                    let mut shed = 0u64;
                    for _ in 0..ATTEMPTS_PER_CLIENT {
                        match service.try_submit(query(HwConfig::Sc)) {
                            Ok(ticket) => got.push(ticket.wait()),
                            Err(cosparse::ServeError::Overloaded) => shed += 1,
                        }
                    }
                    (got, shed)
                })
            })
            .collect();
        let mut answers = Vec::new();
        let mut shed = 0;
        for h in handles {
            let (got, s) = h.join().expect("client thread");
            answers.extend(got);
            shed += s;
        }
        (answers, shed)
    });

    for a in &answers {
        assert_eq!(a, &answers[0], "shed load must not perturb answers");
    }

    let service = Arc::into_inner(service).expect("all clients joined");
    let stats = service.shutdown();
    let attempts = (CLIENTS * ATTEMPTS_PER_CLIENT) as u64;
    assert_eq!(stats.submitted, answers.len() as u64);
    assert_eq!(stats.rejected, shed);
    assert_eq!(
        stats.submitted + stats.rejected,
        attempts,
        "every attempt either accepted or shed, never both or neither"
    );
    assert_eq!(stats.completed, stats.submitted);
}

/// Same-source query memo under contention: after one warm run, every
/// concurrent identical submission must be a cache hit — exactly one
/// query ever reaches a worker, and every hit's answer is bit-identical
/// to the worker-computed one.
#[test]
fn cached_queries_count_and_answer_exactly_under_contention() {
    const KEY: u64 = 0xC05;
    let m = sparse::generate::uniform(N, N, 6000, 37).unwrap();
    let graph = SharedGraph::new(&m, Geometry::new(2, 4), MicroArch::paper());
    let service = GraphService::start(
        Arc::clone(&graph),
        ServeConfig {
            workers: 4,
            batch: 4,
            queue_cap: 256,
            backend: ExecBackend::Simulate,
        },
    );
    let service = Arc::new(service);

    // Warm the memo with one completed run before any client races.
    let want = service.submit_cached(KEY, query(HwConfig::Sc)).wait();

    let answers: Vec<Vec<u32>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let service = Arc::clone(&service);
                s.spawn(move || {
                    (0..QUERIES_PER_CLIENT)
                        .map(|_| service.submit_cached(KEY, query(HwConfig::Sc)).wait())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });

    for a in &answers {
        assert_eq!(a, &want, "cached answers must be bit-identical");
    }

    let service = Arc::into_inner(service).expect("all clients joined");
    let stats = service.shutdown();
    let hits = (CLIENTS * QUERIES_PER_CLIENT) as u64;
    assert_eq!(stats.submitted, hits + 1);
    assert_eq!(stats.completed, 1, "only the warm run reached a worker");
    assert_eq!(stats.cache_hits, hits);
}

#[test]
fn contended_sessions_without_service_count_exactly() {
    // Same counting contract with raw sessions (no queue in between):
    // 8 threads each open a session over one graph and run the dense
    // workload directly.
    let m = sparse::generate::uniform(N, N, 6000, 29).unwrap();
    let graph = SharedGraph::new(&m, Geometry::new(2, 4), MicroArch::paper());
    std::thread::scope(|s| {
        for t in 0..CLIENTS {
            let graph = Arc::clone(&graph);
            s.spawn(move || {
                let hw = if t % 2 == 0 {
                    HwConfig::Sc
                } else {
                    HwConfig::Scs
                };
                let mut session = graph.session();
                query(hw)(&mut session);
            });
        }
    });
    let cs = graph.cache_stats();
    assert_eq!(cs.plan_builds, 1);
    assert_eq!(cs.plan_hits, CLIENTS as u64 - 1, "one bind per session");
    assert_eq!(cs.dense_program_builds, 2);
    assert_eq!(
        cs.dense_program_builds + cs.dense_program_hits,
        CLIENTS as u64 * SPMVS_PER_QUERY
    );
}
