//! End-to-end verification of the shipped kernels: under every legal
//! software x hardware pairing, the generated streams must lint clean
//! against the layout's address map and produce race-free traces.

use cosparse::{CoSparse, Frontier, HwConfig, Policy, SwConfig};
use transmuter::{Geometry, Machine, MicroArch};

fn runtime(n: usize, nnz: usize, geom: Geometry) -> CoSparse {
    let m = sparse::generate::uniform(n, n, nnz, 17).unwrap();
    let mut rt = CoSparse::new(&m, Machine::new(geom, MicroArch::paper()));
    rt.set_verify(true);
    rt
}

fn check(sw: SwConfig, hw: HwConfig, density: f64) {
    let geom = Geometry::new(2, 4);
    let n = 256;
    let mut rt = runtime(n, 2000, geom);
    rt.set_policy(Policy::Fixed(sw, hw));
    let frontier = match sw {
        SwConfig::InnerProduct => Frontier::Dense(sparse::generate::random_dense_vector(n, 5)),
        SwConfig::OuterProduct => {
            Frontier::Sparse(sparse::generate::random_sparse_vector(n, density, 5).unwrap())
        }
    };
    let out = rt
        .spmv(&frontier)
        .unwrap_or_else(|e| panic!("{sw:?}/{hw}: {e}"));
    assert!(out.report.cycles > 0);
    let report = rt.verification();
    assert!(report.runs >= 1, "{sw:?}/{hw}: nothing was verified");
    assert!(!report.truncated, "{sw:?}/{hw}: trace truncated");
    assert!(
        report.races.is_empty(),
        "{sw:?}/{hw}: shipped kernel races: {:?}",
        report.races
    );
}

#[test]
fn ip_sc_verifies_clean() {
    check(SwConfig::InnerProduct, HwConfig::Sc, 1.0);
}

#[test]
fn ip_scs_verifies_clean() {
    check(SwConfig::InnerProduct, HwConfig::Scs, 1.0);
}

#[test]
fn op_pc_verifies_clean() {
    check(SwConfig::OuterProduct, HwConfig::Pc, 0.05);
}

#[test]
fn op_ps_verifies_clean() {
    check(SwConfig::OuterProduct, HwConfig::Ps, 0.05);
}

#[test]
fn dataflow_switch_verifies_both_kernels() {
    let geom = Geometry::new(2, 4);
    let n = 256;
    let mut rt = runtime(n, 2000, geom);
    rt.set_policy(Policy::Fixed(SwConfig::InnerProduct, HwConfig::Sc));
    let dense = Frontier::Dense(sparse::generate::random_dense_vector(n, 5));
    rt.spmv(&dense).unwrap();
    rt.set_policy(Policy::Fixed(SwConfig::OuterProduct, HwConfig::Pc));
    let sparse_f = Frontier::Sparse(sparse::generate::random_sparse_vector(n, 0.05, 6).unwrap());
    rt.spmv(&sparse_f).unwrap();
    let report = rt.verification();
    assert!(report.runs >= 2, "two spmvs, got {}", report.runs);
    assert!(report.races.is_empty(), "{:?}", report.races);
}

#[test]
fn conversion_kernels_verify_clean() {
    use cosparse::kernels::convert::{self, Direction};
    use cosparse::{run_checked, Layout, OpProfile, VerifyReport};

    let geom = Geometry::new(2, 4);
    let n = 256;
    let layout = Layout::new(n, n, 2000, geom, 1);
    for dir in [Direction::DenseToSparse, Direction::SparseToDense] {
        let mut machine = Machine::new(geom, MicroArch::paper());
        let mut report = VerifyReport::default();
        let streams = convert::streams(&layout, geom, n, 40, dir, OpProfile::scalar());
        run_checked(&mut machine, streams, &layout.regions(), &mut report)
            .unwrap_or_else(|e| panic!("{dir:?}: {e}"));
        assert!(report.races.is_empty(), "{dir:?}: {:?}", report.races);
        assert!(!report.truncated);
    }
}

#[test]
fn auto_policy_verifies_across_iterations() {
    // A BFS-like frontier sweep under the decision tree: every chosen
    // configuration must verify.
    let geom = Geometry::new(2, 2);
    let n = 512;
    let mut rt = runtime(n, 4000, geom);
    let mut frontier =
        Frontier::Sparse(sparse::generate::random_sparse_vector(n, 0.01, 7).unwrap());
    for _ in 0..3 {
        let out = rt.spmv(&frontier).unwrap();
        frontier = out.result;
        if frontier.nnz() == 0 {
            break;
        }
    }
    let report = rt.verification();
    assert!(report.runs >= 3);
    assert!(report.races.is_empty(), "{:?}", report.races);
}

#[test]
fn scs_on_single_pe_geometry_rejected_not_panicking() {
    // The machine cannot even reconfigure into SCS on a 1-PE-per-tile
    // geometry; a verified runtime must reject statically instead.
    let geom = Geometry::new(2, 1);
    let mut rt = runtime(64, 300, geom);
    rt.set_policy(Policy::Fixed(SwConfig::InnerProduct, HwConfig::Scs));
    let x = Frontier::Dense(sparse::generate::random_dense_vector(64, 2));
    let err = rt.spmv(&x).unwrap_err();
    assert!(
        matches!(err, transmuter::SimError::Rejected { .. }),
        "{err}"
    );
}

#[test]
fn verification_report_resets_on_toggle() {
    let geom = Geometry::new(1, 2);
    let mut rt = runtime(64, 300, geom);
    rt.set_policy(Policy::Fixed(SwConfig::InnerProduct, HwConfig::Sc));
    let x = Frontier::Dense(sparse::generate::random_dense_vector(64, 2));
    rt.spmv(&x).unwrap();
    assert!(rt.verification().runs >= 1);
    rt.set_verify(true);
    assert_eq!(rt.verification().runs, 0);
}

#[test]
fn verification_off_records_nothing() {
    let geom = Geometry::new(1, 2);
    let m = sparse::generate::uniform(64, 64, 300, 17).unwrap();
    let mut rt = CoSparse::new(&m, Machine::new(geom, MicroArch::paper()));
    let x = Frontier::Dense(sparse::generate::random_dense_vector(64, 2));
    rt.spmv(&x).unwrap();
    assert_eq!(rt.verification().runs, 0);
}
