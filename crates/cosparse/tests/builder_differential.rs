//! Kernel-level differential suite for the single-pass pipeline: every
//! SW x HW combination is emitted twice from the same kernel emitter —
//! once into legacy per-worker op buffers (run through the machine's
//! event loop) and once straight into a [`ProgramBuilder`] (run through
//! the compiled-program core) — and the two executions must agree bit
//! for bit on cycles and traffic statistics.
//!
//! One builder instance is reused across every combination, mirroring
//! how the runtime's `Plan` repurposes its builder between dense,
//! conversion and scratch builds.

use cosparse::balance::{ip_partitions, op_tile_partitions, Balancing};
use cosparse::kernels::convert::{self, Direction};
use cosparse::kernels::{ip, op};
use cosparse::{Layout, OpProfile};
use sparse::partition::VBlocks;
use sparse::{CooMatrix, CscMatrix, Idx};
use transmuter::{Geometry, HwConfig, Machine, MicroArch, ProgramBuilder, SimReport};

const N: usize = 1024;
const NNZ: usize = 15_000;

fn geometry() -> Geometry {
    Geometry::new(2, 4)
}

fn machine(hw: HwConfig) -> Machine {
    let mut m = Machine::new(geometry(), MicroArch::paper());
    m.reconfigure(hw);
    m
}

fn matrix() -> CooMatrix {
    sparse::generate::uniform(N, N, NNZ, 21).unwrap()
}

fn sparse_frontier() -> Vec<Idx> {
    sparse::generate::random_sparse_vector(N, 0.05, 3)
        .unwrap()
        .iter()
        .map(|(i, _)| i)
        .collect()
}

/// Asserts the two pipeline outputs are indistinguishable.
fn assert_identical(label: &str, legacy: SimReport, built: SimReport) {
    assert_eq!(
        legacy.cycles, built.cycles,
        "{label}: cycles diverged (legacy {} vs builder {})",
        legacy.cycles, built.cycles
    );
    assert_eq!(legacy.stats, built.stats, "{label}: stats diverged");
}

#[test]
fn ip_builder_matches_legacy_event_loop_on_all_hw() {
    let coo = matrix();
    let g = geometry();
    let layout = Layout::new(N, N, NNZ, g, 1);
    let partition = ip_partitions(&coo.row_counts(), g, Balancing::NnzBalanced);
    let ua = MicroArch::paper();
    let spm_words = ua.spm_bytes_per_tile(g.pes_per_tile(), HwConfig::Scs.l1()) / 4;
    let mut builder = ProgramBuilder::new();

    for hw in HwConfig::ALL {
        let use_spm = hw == HwConfig::Scs;
        let vblocks = if use_spm {
            VBlocks::new(N, spm_words.min(N))
        } else {
            VBlocks::whole(N)
        };
        let params = ip::IpParams {
            layout: &layout,
            partition: &partition,
            vblocks: &vblocks,
            use_spm,
            active: None,
            profile: OpProfile::scalar(),
        };

        let legacy = machine(hw).run(ip::streams(&coo, g, params)).unwrap();

        builder.begin(g, hw, &ua);
        ip::build(&coo, g, params, &mut builder);
        let prog = builder.finish();
        assert_eq!(prog.lint_clean(), Some(true), "IP/{hw}: kernel not clean");
        let built = machine(hw).run_program(prog).unwrap();

        assert_identical(&format!("IP/{hw}"), legacy, built);
    }
}

#[test]
fn masked_ip_builder_matches_legacy_event_loop() {
    let coo = matrix();
    let g = geometry();
    let layout = Layout::new(N, N, NNZ, g, 1);
    let partition = ip_partitions(&coo.row_counts(), g, Balancing::NnzBalanced);
    let vblocks = VBlocks::whole(N);
    let mut active = vec![false; N];
    for idx in sparse_frontier() {
        active[idx as usize] = true;
    }
    let params = ip::IpParams {
        layout: &layout,
        partition: &partition,
        vblocks: &vblocks,
        use_spm: false,
        active: Some(&active),
        profile: OpProfile::scalar(),
    };
    let ua = MicroArch::paper();
    let mut builder = ProgramBuilder::new();

    for hw in [HwConfig::Sc, HwConfig::Pc] {
        let legacy = machine(hw).run(ip::streams(&coo, g, params)).unwrap();
        builder.begin(g, hw, &ua);
        ip::build(&coo, g, params, &mut builder);
        let built = machine(hw).run_program(builder.finish()).unwrap();
        assert_identical(&format!("masked IP/{hw}"), legacy, built);
    }
}

#[test]
fn op_builder_matches_legacy_event_loop_on_all_hw() {
    let coo = matrix();
    let csc = CscMatrix::from(&coo);
    let g = geometry();
    let layout = Layout::new(N, N, NNZ, g, 1);
    let counts = {
        let mut c = vec![0usize; csc.rows()];
        for &r in csc.row_idx() {
            c[r as usize] += 1;
        }
        c
    };
    let tile_parts = op_tile_partitions(&counts, g, Balancing::NnzBalanced);
    let sub = op::subruns(&csc, &tile_parts);
    let frontier = sparse_frontier();
    let ua = MicroArch::paper();
    let mut builder = ProgramBuilder::new();

    for hw in HwConfig::ALL {
        let params = op::OpParams {
            layout: &layout,
            tile_parts: &tile_parts,
            frontier: &frontier,
            heap_in_spm: hw == HwConfig::Ps,
            spm_node_cap: 512,
            profile: OpProfile::scalar(),
        };

        let legacy = machine(hw).run(op::streams(&csc, g, params)).unwrap();

        builder.begin(g, hw, &ua);
        op::build(&csc, g, params, &sub, &mut builder);
        let prog = builder.finish();
        assert_eq!(prog.lint_clean(), Some(true), "OP/{hw}: kernel not clean");
        let built = machine(hw).run_program(prog).unwrap();

        assert_identical(&format!("OP/{hw}"), legacy, built);
    }
}

#[test]
fn conversion_builder_matches_legacy_event_loop() {
    let g = geometry();
    let layout = Layout::new(N, N, NNZ, g, 1);
    let ua = MicroArch::paper();
    let mut builder = ProgramBuilder::new();
    let active_nnz = sparse_frontier().len();

    for dir in [Direction::DenseToSparse, Direction::SparseToDense] {
        let legacy = machine(HwConfig::Sc)
            .run(convert::streams(
                &layout,
                g,
                N,
                active_nnz,
                dir,
                OpProfile::scalar(),
            ))
            .unwrap();

        builder.begin(g, HwConfig::Sc, &ua);
        convert::build(
            &layout,
            g,
            N,
            active_nnz,
            dir,
            OpProfile::scalar(),
            &mut builder,
        );
        let prog = builder.finish();
        assert_eq!(
            prog.lint_clean(),
            Some(true),
            "convert/{dir:?}: kernel not clean"
        );
        let built = machine(HwConfig::Sc).run_program(prog).unwrap();

        assert_identical(&format!("convert/{dir:?}"), legacy, built);
    }
}
