//! The multi-tenant serving layer: many client threads, one shared
//! graph, a pool of worker sessions.
//!
//! A [`GraphService`] accepts queries (arbitrary closures over a
//! [`CoSparse`] session — BFS/SSSP sources, PageRank snapshots, raw
//! SpMVs) from any number of threads and executes them on a fixed pool
//! of worker threads, each owning one long-lived session over the same
//! `Arc`-shared [`SharedGraph`]. Because sessions are cheap and the
//! expensive per-matrix artifacts (formats, layout, partitions,
//! compiled dense-IP programs) live in the graph, N workers serving
//! thousands of queries build each artifact once — the amortization is
//! visible in [`SharedGraph::cache_stats`] and is what the
//! `cosparse-perf` serve workload measures as queries/sec.
//!
//! Same-graph queries are *batched*: a worker drains up to
//! [`ServeConfig::batch`] queued queries in one lock acquisition and
//! runs them back-to-back on its warm session, so consecutive queries
//! reuse the session's frontier scratch and builder without returning
//! to the queue lock in between.
//!
//! ```
//! use cosparse::{Frontier, GraphService, ServeConfig, SharedGraph};
//! use transmuter::{Geometry, MicroArch};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let matrix = sparse::generate::uniform(512, 512, 4000, 7)?;
//! let graph = SharedGraph::new(&matrix, Geometry::new(2, 4), MicroArch::paper());
//! let service = GraphService::start(graph, ServeConfig::default());
//!
//! // Submit from any thread; `wait` blocks for this query's answer.
//! let frontier = Frontier::Dense(sparse::generate::random_dense_vector(512, 3));
//! let ticket = service.submit(move |session| session.spmv(&frontier));
//! let outcome = ticket.wait()?;
//! println!("served under {}/{}", outcome.software, outcome.hardware);
//! service.shutdown();
//! # Ok(())
//! # }
//! ```

use crate::host::ExecBackend;
use crate::runtime::CoSparse;
use crate::shared::SharedGraph;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A boxed query: runs on a worker's session, produces the answer sent
/// back through the ticket.
type QueryFn<T> = Box<dyn FnOnce(&mut CoSparse) -> T + Send + 'static>;

struct Job<T> {
    run: QueryFn<T>,
    reply: mpsc::Sender<T>,
}

struct QueueState<T> {
    jobs: VecDeque<Job<T>>,
    shutdown: bool,
}

/// Cumulative counters of a running service (all relaxed atomics;
/// consistent once the submitting threads have joined).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Queries accepted by [`GraphService::submit`] or
    /// [`GraphService::try_submit`].
    pub submitted: u64,
    /// Queries whose closure ran to completion on a worker.
    pub completed: u64,
    /// Queue drains — each drain ran 1..=batch queries back-to-back on
    /// one warm session. `completed / batches` is the achieved batching
    /// factor.
    pub batches: u64,
    /// Queries shed by [`GraphService::try_submit`] because the queue
    /// sat at [`ServeConfig::queue_cap`].
    pub rejected: u64,
    /// [`GraphService::submit_cached`] submissions answered from the
    /// same-source memo without running on a worker (counted in
    /// `submitted`, never in `completed` or `batches`).
    pub cache_hits: u64,
}

#[derive(Default)]
struct ServeCounters {
    submitted: AtomicU64,
    completed: AtomicU64,
    batches: AtomicU64,
    rejected: AtomicU64,
    cache_hits: AtomicU64,
}

/// The same-source query memo behind [`GraphService::submit_cached`]:
/// answers keyed by the caller's query key, valid for exactly one graph
/// content epoch — the whole map is dropped the first time an access
/// sees a newer [`SharedGraph::epoch`].
struct QueryCache<T> {
    epoch: u64,
    answers: HashMap<u64, T>,
}

impl<T> Default for QueryCache<T> {
    fn default() -> Self {
        QueryCache {
            epoch: 0,
            answers: HashMap::new(),
        }
    }
}

struct ServeShared<T> {
    state: Mutex<QueueState<T>>,
    available: Condvar,
    /// Signalled whenever a drain frees queue slots; blocking
    /// [`GraphService::submit`] callers wait here under backpressure.
    space: Condvar,
    queue_cap: usize,
    counters: ServeCounters,
    cache: Mutex<QueryCache<T>>,
}

/// Why a non-blocking submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The queue already holds [`ServeConfig::queue_cap`] undrained
    /// queries; the caller should back off, retry, or fall back to the
    /// blocking [`GraphService::submit`].
    Overloaded,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "service queue is at capacity"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Locks the queue, recovering from poison: the queue state is a plain
/// job list that is never left half-mutated by the panicking sections
/// (a submit assert, a query closure), so the service keeps draining
/// and shutting down cleanly after a client panic.
fn lock_queue<T>(mutex: &Mutex<QueueState<T>>) -> std::sync::MutexGuard<'_, QueueState<T>> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Locks the query memo, recovering from poison for the same reason as
/// [`lock_queue`]: a clone/insert never leaves the map half-mutated.
fn lock_cache<T>(mutex: &Mutex<QueryCache<T>>) -> std::sync::MutexGuard<'_, QueryCache<T>> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Configuration of a [`GraphService`] worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads (each owns one session). Default: the host's
    /// available parallelism, capped at 8.
    pub workers: usize,
    /// Maximum queries a worker drains per queue lock acquisition.
    /// Default 16.
    pub batch: usize,
    /// Maximum undrained queries the queue holds before backpressure
    /// kicks in: [`GraphService::submit`] blocks for a slot,
    /// [`GraphService::try_submit`] sheds the query with
    /// [`ServeError::Overloaded`]. Default 256.
    pub queue_cap: usize,
    /// Backend every worker session runs under. Default
    /// [`ExecBackend::Host`] — the serving layer exists to answer real
    /// queries fast; pick [`ExecBackend::Simulate`] to serve simulated
    /// timings or [`ExecBackend::Differential`] to cross-check every
    /// answer.
    pub backend: ExecBackend,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8);
        ServeConfig {
            workers,
            batch: 16,
            queue_cap: 256,
            backend: ExecBackend::Host,
        }
    }
}

/// A pending query's handle: [`Ticket::wait`] blocks until a worker has
/// run the query and returns its answer.
#[derive(Debug)]
pub struct Ticket<T> {
    rx: mpsc::Receiver<T>,
}

impl<T> Ticket<T> {
    /// Blocks until the query's answer arrives.
    ///
    /// # Panics
    ///
    /// Panics if the service shut down (or a worker died) before
    /// answering — submitting after [`GraphService::shutdown`] began,
    /// or a query closure that panicked on the worker.
    pub fn wait(self) -> T {
        self.rx
            .recv()
            .expect("query dropped: service shut down or worker panicked before answering")
    }
}

/// A multi-tenant query service over one shared graph: a pool of worker
/// threads, each owning a warm [`CoSparse`] session, draining a shared
/// queue in batches. See the module docs for the contract, and
/// [`GraphService::submit`] for the query form.
///
/// All answers are produced by ordinary sessions over the same
/// [`SharedGraph`], so per-query results are bit-identical to a
/// dedicated single-session runtime under every backend.
pub struct GraphService<T: Send + 'static> {
    graph: Arc<SharedGraph>,
    shared: Arc<ServeShared<T>>,
    workers: Vec<JoinHandle<()>>,
}

impl<T: Send + 'static> std::fmt::Debug for GraphService<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphService")
            .field("workers", &self.workers.len())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl<T: Send + 'static> GraphService<T> {
    /// Spawns the worker pool: `config.workers` threads, each opening
    /// one session over `graph` (fresh machine, `config.backend`) and
    /// looping on the shared queue until [`GraphService::shutdown`].
    pub fn start(graph: Arc<SharedGraph>, config: ServeConfig) -> Self {
        let workers = config.workers.max(1);
        let batch = config.batch.max(1);
        let shared = Arc::new(ServeShared {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            space: Condvar::new(),
            queue_cap: config.queue_cap.max(1),
            counters: ServeCounters::default(),
            cache: Mutex::new(QueryCache::default()),
        });
        let handles = (0..workers)
            .map(|i| {
                let mut session = graph.session();
                session.set_backend(config.backend);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cosparse-serve-{i}"))
                    .spawn(move || worker_loop(session, &shared, batch))
                    .expect("spawn serve worker")
            })
            .collect();
        GraphService {
            graph,
            shared,
            workers: handles,
        }
    }

    /// Enqueues a query — any closure over a worker's session — and
    /// returns its [`Ticket`]. The closure sets whatever per-query
    /// session state it needs (policy, thresholds, verification) and
    /// runs steps/SpMVs; session scratch persists across queries on the
    /// same worker, shared artifacts across all of them.
    ///
    /// When the queue sits at [`ServeConfig::queue_cap`] this call
    /// *blocks* until a worker drain frees a slot — backpressure
    /// propagates to the submitting thread instead of letting the queue
    /// grow without bound. Use [`GraphService::try_submit`] to shed
    /// load instead of waiting.
    pub fn submit<F>(&self, query: F) -> Ticket<T>
    where
        F: FnOnce(&mut CoSparse) -> T + Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        {
            let mut state = lock_queue(&self.shared.state);
            while state.jobs.len() >= self.shared.queue_cap && !state.shutdown {
                state = self
                    .shared
                    .space
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            assert!(!state.shutdown, "submit after GraphService::shutdown");
            state.jobs.push_back(Job {
                run: Box::new(query),
                reply: tx,
            });
        }
        self.shared
            .counters
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        self.shared.available.notify_one();
        Ticket { rx }
    }

    /// Non-blocking [`GraphService::submit`]: enqueues the query if the
    /// queue has room, otherwise returns [`ServeError::Overloaded`]
    /// immediately (counted in [`ServeStats::rejected`]) so the caller
    /// can shed or defer the work.
    pub fn try_submit<F>(&self, query: F) -> Result<Ticket<T>, ServeError>
    where
        F: FnOnce(&mut CoSparse) -> T + Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        {
            let mut state = lock_queue(&self.shared.state);
            assert!(!state.shutdown, "submit after GraphService::shutdown");
            if state.jobs.len() >= self.shared.queue_cap {
                drop(state);
                self.shared
                    .counters
                    .rejected
                    .fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded);
            }
            state.jobs.push_back(Job {
                run: Box::new(query),
                reply: tx,
            });
        }
        self.shared
            .counters
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        self.shared.available.notify_one();
        Ok(Ticket { rx })
    }

    /// [`GraphService::submit`] with a same-source memo: submissions
    /// sharing `key` on the same graph content epoch run once — later
    /// ones are answered from the cached value without touching a
    /// worker, resolving the [`Ticket`] immediately. The caller
    /// guarantees `key` fully identifies the query's answer over the
    /// current graph (deterministic closure, key covering every input);
    /// a [`SharedGraph::bump_epoch`] invalidates every cached answer.
    ///
    /// Hits count in [`ServeStats::submitted`] and
    /// [`ServeStats::cache_hits`] but not in [`ServeStats::completed`]
    /// or [`ServeStats::batches`] — no query ran. Concurrent misses on
    /// one key may each run the query (a memo, not a deduplicator);
    /// last completion wins the cache slot.
    pub fn submit_cached<F>(&self, key: u64, query: F) -> Ticket<T>
    where
        T: Clone,
        F: FnOnce(&mut CoSparse) -> T + Send + 'static,
    {
        let epoch = self.graph.epoch();
        {
            let cache = lock_cache(&self.shared.cache);
            if cache.epoch == epoch {
                if let Some(answer) = cache.answers.get(&key) {
                    let answer = answer.clone();
                    drop(cache);
                    let c = &self.shared.counters;
                    c.submitted.fetch_add(1, Ordering::Relaxed);
                    c.cache_hits.fetch_add(1, Ordering::Relaxed);
                    // Resolve the ticket directly: the cached answer
                    // travels on a fresh channel, no worker involved.
                    let (tx, rx) = mpsc::channel();
                    tx.send(answer).expect("receiver held");
                    return Ticket { rx };
                }
            }
        }
        let shared = Arc::clone(&self.shared);
        self.submit(move |session| {
            let answer = query(session);
            let epoch = session.shared().epoch();
            let mut cache = lock_cache(&shared.cache);
            if cache.epoch != epoch {
                cache.answers.clear();
                cache.epoch = epoch;
            }
            cache.answers.insert(key, answer.clone());
            answer
        })
    }

    /// The shared graph the workers serve.
    pub fn graph(&self) -> &Arc<SharedGraph> {
        &self.graph
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Current service counters.
    pub fn stats(&self) -> ServeStats {
        let c = &self.shared.counters;
        ServeStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
        }
    }

    /// Drains the queue, stops the workers and joins them, returning
    /// the final counters.
    ///
    /// # Panics
    ///
    /// Propagates a worker thread's panic (a panicking query closure).
    pub fn shutdown(mut self) -> ServeStats {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
        self.stats()
    }

    fn begin_shutdown(&self) {
        let mut state = lock_queue(&self.shared.state);
        state.shutdown = true;
        drop(state);
        self.shared.available.notify_all();
        // Submitters blocked on a full queue wake into the
        // submit-after-shutdown panic rather than hanging forever.
        self.shared.space.notify_all();
    }
}

impl<T: Send + 'static> Drop for GraphService<T> {
    fn drop(&mut self) {
        // Explicit `shutdown` already drained `workers`; otherwise stop
        // and join quietly (worker panics surface as poisoned tickets).
        if self.workers.is_empty() {
            return;
        }
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One worker: wait for work, drain up to `batch` jobs in one lock
/// acquisition, run them back-to-back on the warm session, repeat.
/// Exits once shutdown is flagged and the queue is empty.
fn worker_loop<T: Send + 'static>(mut session: CoSparse, shared: &ServeShared<T>, batch: usize) {
    let mut drained: Vec<Job<T>> = Vec::with_capacity(batch);
    loop {
        {
            let mut state = lock_queue(&shared.state);
            while state.jobs.is_empty() && !state.shutdown {
                state = shared
                    .available
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            if state.jobs.is_empty() {
                return; // shutdown with nothing left to do
            }
            let take = state.jobs.len().min(batch);
            drained.extend(state.jobs.drain(..take));
            // More work may remain for the other workers.
            if !state.jobs.is_empty() {
                shared.available.notify_one();
            }
            // The drain freed `take` slots; wake every submitter blocked
            // on backpressure (they re-check capacity under the lock).
            shared.space.notify_all();
        }
        shared.counters.batches.fetch_add(1, Ordering::Relaxed);
        for job in drained.drain(..) {
            let answer = (job.run)(&mut session);
            shared.counters.completed.fetch_add(1, Ordering::Relaxed);
            // A dropped Ticket (client gave up) is fine; the work is done.
            let _ = job.reply.send(answer);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Frontier;
    use transmuter::{Geometry, MicroArch};

    fn graph(n: usize, nnz: usize) -> Arc<SharedGraph> {
        let m = sparse::generate::uniform(n, n, nnz, 11).unwrap();
        SharedGraph::new(&m, Geometry::new(2, 4), MicroArch::paper())
    }

    fn config(workers: usize, backend: ExecBackend) -> ServeConfig {
        ServeConfig {
            workers,
            batch: 4,
            queue_cap: 256,
            backend,
        }
    }

    #[test]
    fn serves_queries_and_counts_them() {
        let g = graph(256, 2000);
        let service = GraphService::start(Arc::clone(&g), config(2, ExecBackend::Host));
        let tickets: Vec<_> = (0..10)
            .map(|_| {
                service.submit(|session| {
                    let x = Frontier::Dense(sparse::generate::random_dense_vector(256, 5));
                    session.spmv(&x).map(|out| out.result)
                })
            })
            .collect();
        let answers: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
        assert!(answers.iter().all(|a| a.is_ok()));
        let first = answers[0].as_ref().unwrap();
        assert!(answers.iter().all(|a| a.as_ref().unwrap() == first));
        let stats = service.shutdown();
        assert_eq!(stats.submitted, 10);
        assert_eq!(stats.completed, 10);
        assert!(stats.batches >= 1 && stats.batches <= 10);
    }

    #[test]
    fn workers_share_one_plan_cache() {
        let g = graph(256, 2000);
        let service = GraphService::start(Arc::clone(&g), config(4, ExecBackend::Simulate));
        let tickets: Vec<_> = (0..8)
            .map(|_| {
                service.submit(|session| {
                    let x = Frontier::Dense(sparse::generate::random_dense_vector(256, 5));
                    session.spmv(&x).map(|out| out.report.cycles)
                })
            })
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        service.shutdown();
        let cs = g.cache_stats();
        assert_eq!(cs.plan_builds, 1, "one plan for every worker");
        // Auto policy on a dense frontier always lands on one (sw, hw),
        // so exactly one dense program exists no matter the interleave.
        assert_eq!(cs.dense_program_builds, 1);
        assert_eq!(cs.dense_program_builds + cs.dense_program_hits, 8);
    }

    #[test]
    #[should_panic(expected = "submit after GraphService::shutdown")]
    fn submit_after_shutdown_panics() {
        let g = graph(64, 300);
        let service: GraphService<u32> =
            GraphService::start(Arc::clone(&g), config(1, ExecBackend::Host));
        service.begin_shutdown();
        let _ = service.submit(|_| 1);
    }

    #[test]
    fn try_submit_sheds_when_full_and_recovers() {
        let g = graph(64, 300);
        let service: GraphService<usize> = GraphService::start(
            Arc::clone(&g),
            ServeConfig {
                workers: 1,
                batch: 1,
                queue_cap: 2,
                backend: ExecBackend::Host,
            },
        );
        // Park the lone worker inside a gated query; once `batches`
        // ticks the queue itself is empty again.
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let blocker = service.submit(move |_| {
            gate_rx.recv().unwrap();
            0usize
        });
        while service.stats().batches == 0 {
            std::thread::yield_now();
        }
        let q1 = service.try_submit(|s| s.matrix().nnz()).expect("slot 1");
        let q2 = service.try_submit(|s| s.matrix().nnz()).expect("slot 2");
        let overflow = service.try_submit(|_| 0usize);
        assert_eq!(overflow.unwrap_err(), ServeError::Overloaded);
        gate_tx.send(()).unwrap();
        assert_eq!(blocker.wait(), 0);
        assert_eq!(q1.wait(), 300);
        assert_eq!(q2.wait(), 300);
        // The queue drained; capacity is available again.
        let q3 = service.try_submit(|s| s.matrix().nnz()).expect("recovered");
        assert_eq!(q3.wait(), 300);
        let stats = service.shutdown();
        assert_eq!(stats.submitted, 4);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.completed, 4);
    }

    #[test]
    fn blocking_submit_waits_for_space() {
        let g = graph(64, 300);
        let service: GraphService<usize> = GraphService::start(
            Arc::clone(&g),
            ServeConfig {
                workers: 1,
                batch: 1,
                queue_cap: 1,
                backend: ExecBackend::Host,
            },
        );
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let blocker = service.submit(move |_| {
            gate_rx.recv().unwrap();
            1usize
        });
        while service.stats().batches == 0 {
            std::thread::yield_now();
        }
        // Fill the single slot, then submit from another thread: it
        // must block (not panic, not shed) until the worker drains.
        let filler = service.try_submit(|_| 2usize).expect("slot");
        std::thread::scope(|s| {
            let late = s.spawn(|| service.submit(|_| 3usize).wait());
            gate_tx.send(()).unwrap();
            assert_eq!(late.join().expect("late submitter"), 3);
        });
        assert_eq!(blocker.wait(), 1);
        assert_eq!(filler.wait(), 2);
        let stats = service.shutdown();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn submit_cached_memoizes_per_epoch() {
        let g = graph(256, 2000);
        let service: GraphService<usize> =
            GraphService::start(Arc::clone(&g), config(2, ExecBackend::Host));
        let ran = Arc::new(AtomicU64::new(0));
        let run = |ran: &Arc<AtomicU64>| {
            let ran = Arc::clone(ran);
            move |s: &mut CoSparse| {
                ran.fetch_add(1, Ordering::Relaxed);
                s.matrix().nnz()
            }
        };
        assert_eq!(service.submit_cached(7, run(&ran)).wait(), 2000);
        for _ in 0..5 {
            assert_eq!(service.submit_cached(7, run(&ran)).wait(), 2000);
        }
        // A different key misses.
        assert_eq!(service.submit_cached(8, run(&ran)).wait(), 2000);
        assert_eq!(ran.load(Ordering::Relaxed), 2, "two keys, two runs");
        // Bumping the content epoch invalidates every cached answer.
        g.bump_epoch();
        assert_eq!(service.submit_cached(7, run(&ran)).wait(), 2000);
        assert_eq!(ran.load(Ordering::Relaxed), 3);
        let stats = service.shutdown();
        assert_eq!(stats.submitted, 8);
        assert_eq!(stats.completed, 3, "hits never reach a worker");
        assert_eq!(stats.cache_hits, 5);
    }

    #[test]
    fn drop_joins_workers() {
        let g = graph(64, 300);
        let service: GraphService<usize> =
            GraphService::start(Arc::clone(&g), config(2, ExecBackend::Host));
        let t = service.submit(|session| session.matrix().nnz());
        assert_eq!(t.wait(), 300);
        drop(service); // must not hang or leak threads
    }
}
