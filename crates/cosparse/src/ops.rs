//! The `Matrix_Op` / `Vector_Op` abstraction (paper Table I).
//!
//! A graph algorithm is defined by how an edge combines the source's
//! frontier value with the destination's state (`matrix_op`), how
//! contributions reduce (`reduce`), and an optional element-wise
//! post-step (`vector_op`). CoSPARSE schedules the same access pattern
//! regardless of the op; only the host-side functional evaluation and
//! the per-edge compute cost differ.

use sparse::{CscMatrix, Idx};
use std::collections::BTreeMap;

/// A graph-algorithm definition in CoSPARSE's SpMV abstraction.
///
/// `Value` is the per-vertex state (a level for BFS, a distance for
/// SSSP, a rank for PR, a latent-feature vector for CF).
///
/// Ops and their values must be shareable across threads (`Sync` /
/// `Send + Sync`): the host execution backend ([`crate::host`])
/// evaluates row partitions on parallel host threads with the op
/// inlined in the inner loop. Every op is a plain value-semantics
/// struct over scalar state, so the bounds are satisfied automatically.
pub trait GraphOp: Sync {
    /// Per-vertex value type.
    type Value: Copy + PartialEq + Send + Sync + std::fmt::Debug;

    /// `Matrix_Op(Sp, V)`: the contribution of edge `src → dst` with
    /// weight `weight`, given the source's frontier value and the
    /// destination's current state. `src_degree` is the source's
    /// out-degree in the original graph (PageRank divides by it).
    fn matrix_op(
        &self,
        weight: f32,
        src_value: Self::Value,
        dst_state: Self::Value,
        src_degree: u32,
    ) -> Self::Value;

    /// Reduction over contributions to the same destination (sum for
    /// SpMV/PR/CF, min for BFS/SSSP). Must be associative and
    /// commutative.
    fn reduce(&self, a: Self::Value, b: Self::Value) -> Self::Value;

    /// `Vector_Op(V)`: element-wise post-step on the reduced value
    /// (identity for SpMV/BFS/SSSP; damping for PR; the gradient step
    /// for CF).
    fn vector_op(&self, updated: Self::Value, old_state: Self::Value) -> Self::Value {
        let _ = old_state;
        updated
    }

    /// Whether the new value constitutes an update that should activate
    /// `dst` in the next frontier (strict improvement for BFS/SSSP;
    /// always true for PR/CF which run dense).
    fn is_update(&self, new_value: Self::Value, old_state: Self::Value) -> bool {
        new_value != old_state
    }

    /// Structural cost profile for the timing model.
    fn profile(&self) -> OpProfile {
        OpProfile::scalar()
    }
}

/// Structural properties of an op that the timing kernels need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpProfile {
    /// Words per vector element (1 for scalars, K for CF's features).
    pub value_words: usize,
    /// Extra compute cycles per processed matrix element beyond the
    /// baseline multiply-accumulate.
    pub extra_compute_per_edge: u32,
    /// Compute cycles for `Vector_Op` per updated element (0 when not
    /// applicable).
    pub vector_op_compute: u32,
}

impl OpProfile {
    /// Scalar op: one word per value, plain MAC, no vector op.
    pub fn scalar() -> Self {
        OpProfile {
            value_words: 1,
            extra_compute_per_edge: 0,
            vector_op_compute: 0,
        }
    }
}

/// One state update produced by an SpMV step: `dst` takes `value`.
pub type Update<V> = (Idx, V);

/// Functionally evaluates one SpMV step over the *transposed* adjacency
/// matrix in CSC form (`csc_t.col(src)` lists the destinations of
/// `src`'s out-edges).
///
/// `active` holds `(src, frontier value)` pairs; `state` is the full
/// per-vertex state vector; `degrees[src]` is the out-degree. Returns
/// the updates that passed [`GraphOp::is_update`], sorted by
/// destination.
///
/// This is the golden model that drives algorithm iteration; the
/// simulator times the equivalent access pattern separately.
///
/// # Panics
///
/// Panics if an active index or a matrix row index is out of bounds of
/// `state`/`degrees`.
pub fn apply<O: GraphOp>(
    op: &O,
    csc_t: &CscMatrix,
    active: &[(Idx, O::Value)],
    state: &[O::Value],
    degrees: &[u32],
) -> Vec<Update<O::Value>> {
    // Dense frontiers touch most destinations, so a direct-indexed
    // accumulator beats a map; sparse frontiers use an ordered map to
    // stay O(touched · log touched). Either path reduces contributions
    // in the same per-edge order (ascending active source, then that
    // source's column order), so the results are bit-identical — and
    // deterministic: no structure anywhere in this function iterates in
    // a run-dependent order, which matters because float `reduce` (the
    // PR/CF sums) is not associative.
    if active.len() * 4 >= state.len() && !state.is_empty() {
        let mut acc: Vec<Option<O::Value>> = vec![None; state.len()];
        for &(src, fval) in active {
            let deg = degrees[src as usize];
            let (dsts, weights) = csc_t.col(src as usize);
            for (dst, w) in dsts.iter().zip(weights) {
                let contrib = op.matrix_op(*w, fval, state[*dst as usize], deg);
                let slot = &mut acc[*dst as usize];
                *slot = Some(match *slot {
                    Some(a) => op.reduce(a, contrib),
                    None => contrib,
                });
            }
        }
        return acc
            .into_iter()
            .enumerate()
            .filter_map(|(dst, reduced)| {
                let old = state[dst];
                let new = op.vector_op(reduced?, old);
                op.is_update(new, old).then_some((dst as Idx, new))
            })
            .collect();
    }
    let mut acc: BTreeMap<Idx, O::Value> = BTreeMap::new();
    for &(src, fval) in active {
        let deg = degrees[src as usize];
        let (dsts, weights) = csc_t.col(src as usize);
        for (dst, w) in dsts.iter().zip(weights) {
            let contrib = op.matrix_op(*w, fval, state[*dst as usize], deg);
            acc.entry(*dst)
                .and_modify(|a| *a = op.reduce(*a, contrib))
                .or_insert(contrib);
        }
    }
    // BTreeMap iterates in key order: the updates come out sorted by
    // destination with no post-hoc sort and no hash-order anywhere.
    acc.into_iter()
        .filter_map(|(dst, reduced)| {
            let old = state[dst as usize];
            let new = op.vector_op(reduced, old);
            op.is_update(new, old).then_some((dst, new))
        })
        .collect()
}

/// Plain SpMV (Table I, first row): `y = Σ Sp[src,dst] * V[src]`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpmvOp;

impl GraphOp for SpmvOp {
    type Value = f32;

    fn matrix_op(&self, weight: f32, src_value: f32, _dst: f32, _deg: u32) -> f32 {
        weight * src_value
    }

    fn reduce(&self, a: f32, b: f32) -> f32 {
        a + b
    }

    fn is_update(&self, new_value: f32, _old: f32) -> bool {
        new_value != 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::{CooMatrix, DenseVector};

    fn csc_t_of(adj: &CooMatrix) -> CscMatrix {
        CscMatrix::from(&adj.transpose())
    }

    #[test]
    fn spmv_op_matches_reference() {
        let adj = sparse::generate::uniform(64, 64, 400, 3).unwrap();
        let t = adj.transpose();
        let csc_t = CscMatrix::from(&t);
        let x = sparse::generate::random_dense_vector(64, 7);
        let want = t.spmv_dense(&x).unwrap();

        let active: Vec<(Idx, f32)> = (0..64)
            .map(|i| (i as Idx, x[i]))
            .filter(|&(_, v)| v != 0.0)
            .collect();
        let state = vec![0.0f32; 64];
        let degrees = vec![0u32; 64];
        let updates = apply(&SpmvOp, &csc_t, &active, &state, &degrees);

        let mut got = DenseVector::filled(64, 0.0f32);
        for (dst, v) in updates {
            got[dst as usize] = v;
        }
        for i in 0..64 {
            assert!(
                (got[i] - want[i]).abs() < 1e-3 * want[i].abs().max(1.0),
                "row {i}: {} vs {}",
                got[i],
                want[i]
            );
        }
    }

    #[test]
    fn apply_skips_inactive_columns() {
        let adj =
            CooMatrix::from_triplets(3, 3, vec![(0, 1, 2.0), (1, 2, 3.0), (2, 0, 4.0)]).unwrap();
        let csc_t = csc_t_of(&adj);
        // Only vertex 0 active: its lone out-edge 0→1 contributes.
        let updates = apply(&SpmvOp, &csc_t, &[(0, 1.0)], &[0.0; 3], &[1, 1, 1]);
        assert_eq!(updates, vec![(1, 2.0)]);
    }

    #[test]
    fn reductions_combine_parallel_edges() {
        // Two sources converge on dst 2.
        let adj = CooMatrix::from_triplets(3, 3, vec![(0, 2, 1.0), (1, 2, 10.0)]).unwrap();
        let csc_t = csc_t_of(&adj);
        let updates = apply(
            &SpmvOp,
            &csc_t,
            &[(0, 2.0), (1, 3.0)],
            &[0.0; 3],
            &[1, 1, 1],
        );
        assert_eq!(updates, vec![(2, 32.0)]);
    }

    #[test]
    fn zero_results_filtered_for_spmv() {
        let adj = CooMatrix::from_triplets(2, 2, vec![(0, 1, 0.0)]).unwrap();
        let csc_t = csc_t_of(&adj);
        let updates = apply(&SpmvOp, &csc_t, &[(0, 5.0)], &[0.0; 2], &[1, 1]);
        assert!(updates.is_empty());
    }

    #[test]
    fn sparse_and_dense_accumulators_agree() {
        // A frontier below the 1/4-density cutoff takes the HashMap
        // path; the same frontier against a smaller state takes the
        // direct-indexed path. Both must match the naive reduction.
        let adj = sparse::generate::uniform(200, 200, 2000, 11).unwrap();
        let csc_t = csc_t_of(&adj);
        let active: Vec<(Idx, f32)> = (0..10).map(|i| (i * 17 as Idx, 1.5 + i as f32)).collect();
        let state = vec![0.0f32; 200];
        let degrees = vec![1u32; 200];
        assert!(active.len() * 4 < state.len(), "must hit the map path");
        let got = apply(&SpmvOp, &csc_t, &active, &state, &degrees);

        let mut want = vec![0.0f32; 200];
        for &(src, fval) in &active {
            let (dsts, weights) = csc_t.col(src as usize);
            for (dst, w) in dsts.iter().zip(weights) {
                want[*dst as usize] += w * fval;
            }
        }
        let want: Vec<Update<f32>> = want
            .iter()
            .enumerate()
            .filter(|&(_, v)| *v != 0.0)
            .map(|(dst, v)| (dst as Idx, *v))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn sparse_path_float_reductions_are_bit_deterministic() {
        // PR-style float sums over a skewed matrix through the map
        // (sparse-frontier) path: two applications of the same input
        // must produce bit-identical f32 results. This pins the
        // determinism contract — no accumulation structure with a
        // run-dependent iteration order is allowed in the golden model.
        let adj = sparse::generate::power_law(400, 400, 6000, 1.1, 8).unwrap();
        let csc_t = csc_t_of(&adj);
        let active: Vec<(Idx, f32)> = (0..40)
            .map(|i| ((i * 9) as Idx, 0.1 + 0.37 * i as f32))
            .collect();
        assert!(active.len() * 4 < 400, "must exercise the map path");
        let state = vec![0.0f32; 400];
        let degrees: Vec<u32> = adj.col_counts().into_iter().map(|c| c as u32).collect();
        let a = apply(&SpmvOp, &csc_t, &active, &state, &degrees);
        let b = apply(&SpmvOp, &csc_t, &active, &state, &degrees);
        assert_eq!(a.len(), b.len());
        for ((da, va), (db, vb)) in a.iter().zip(&b) {
            assert_eq!(da, db);
            assert_eq!(va.to_bits(), vb.to_bits(), "bitwise equal at dst {da}");
        }
    }

    #[test]
    fn scalar_profile_defaults() {
        let p = SpmvOp.profile();
        assert_eq!(p.value_words, 1);
        assert_eq!(p.extra_compute_per_edge, 0);
    }
}
