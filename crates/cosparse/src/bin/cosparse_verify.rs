//! `cosparse-verify`: static-analysis sweep of the shipped SpMV kernels.
//!
//! For every software x hardware pairing (IP/OP x SC/SCS/PC/PS) the tool
//! generates kernel streams on a synthetic matrix, lints them against
//! the machine configuration and the layout's address map, runs them
//! under tracing, and feeds the trace through the race detector.
//!
//! Each combination is additionally cross-checked against the
//! single-pass `ProgramBuilder` pipeline (verification off): both
//! paths must report identical simulated cycles.
//!
//! Exit status is nonzero if any combination is rejected by the linter,
//! produces a race, truncates its trace, or diverges from the builder
//! pipeline.
//!
//! With `--explain`, each combination additionally prints the static
//! epoch-dependence analyzer's verdict (epochs proven replay-free
//! versus dynamically checked) and, when parallel execution is denied,
//! the first blocking interference witness — which epoch's tiles
//! interfere, and on what address.
//!
//! ```text
//! cosparse-verify [--tiles A] [--pes B] [--n N] [--nnz M]
//!                 [--density D] [--seed S] [--explain]
//! ```

use cosparse::{CoSparse, Frontier, HwConfig, Policy, SwConfig};
use sparse::CooMatrix;
use transmuter::{Geometry, Machine, MicroArch, ParCommit};

struct Opts {
    tiles: usize,
    pes: usize,
    n: usize,
    nnz: usize,
    density: f64,
    seed: u64,
    explain: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            tiles: 2,
            pes: 4,
            n: 512,
            nnz: 4096,
            density: 0.05,
            seed: 17,
            explain: false,
        }
    }
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            println!(
                "usage: cosparse-verify [--tiles A] [--pes B] [--n N] \
                 [--nnz M] [--density D] [--seed S] [--explain]"
            );
            std::process::exit(0);
        }
        if flag == "--explain" {
            opts.explain = true;
            continue;
        }
        let value = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
        fn set<T: std::str::FromStr>(slot: &mut T, flag: &str, value: &str) -> Result<(), String> {
            *slot = value
                .parse()
                .map_err(|_| format!("bad value for {flag}: {value}"))?;
            Ok(())
        }
        match flag.as_str() {
            "--tiles" => set(&mut opts.tiles, &flag, &value)?,
            "--pes" => set(&mut opts.pes, &flag, &value)?,
            "--n" => set(&mut opts.n, &flag, &value)?,
            "--nnz" => set(&mut opts.nnz, &flag, &value)?,
            "--density" => set(&mut opts.density, &flag, &value)?,
            "--seed" => set(&mut opts.seed, &flag, &value)?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if opts.tiles == 0 || opts.pes == 0 {
        return Err("--tiles and --pes must be positive".into());
    }
    Ok(opts)
}

fn frontier_for(sw: SwConfig, opts: &Opts) -> Frontier {
    match sw {
        SwConfig::InnerProduct => {
            Frontier::Dense(sparse::generate::random_dense_vector(opts.n, opts.seed))
        }
        SwConfig::OuterProduct => Frontier::Sparse(
            sparse::generate::random_sparse_vector(opts.n, opts.density, opts.seed)
                .expect("sparse frontier"),
        ),
    }
}

fn check_combo(matrix: &CooMatrix, sw: SwConfig, hw: HwConfig, opts: &Opts) -> bool {
    let geom = Geometry::new(opts.tiles, opts.pes);
    if hw == HwConfig::Scs && geom.pes_per_tile() < 2 {
        println!("{sw:?} x {hw:24} SKIPPED: SCS needs >= 2 PEs per tile");
        return true;
    }
    let machine = Machine::new(geom, MicroArch::paper());
    let mut rt = CoSparse::new(matrix, machine);
    rt.set_verify(true);
    rt.set_policy(Policy::Fixed(sw, hw));
    let label = format!("{sw:?} x {hw}");
    match rt.spmv(&frontier_for(sw, opts)) {
        Ok(out) => {
            let report = rt.verification();
            let clean = report.is_clean();
            // The header names all four chosen axes: dataflow, hardware,
            // storage format, and locality reordering.
            let label = format!("{label} [{}/{}]", out.format, out.reorder);
            println!(
                "{:36} {:>12} cycles  {} warning(s)  {} race(s){}",
                label,
                out.report.cycles,
                report.warnings.len(),
                report.races.len(),
                if report.truncated {
                    "  [trace truncated]"
                } else {
                    ""
                }
            );
            for w in &report.warnings {
                println!("    warning: {w}");
            }
            for race in &report.races {
                println!("    RACE: {race}");
            }
            // Cross-check: the single-pass builder pipeline (verify
            // off) must time identically to the checked op-stream path.
            let mut rt2 = CoSparse::new(matrix, Machine::new(geom, MicroArch::paper()));
            rt2.set_policy(Policy::Fixed(sw, hw));
            if opts.explain {
                // Analyze one-shot scratch/conversion builds too, so
                // every combo has a verdict to explain.
                rt2.set_deep_analysis(true);
            }
            let agree = match rt2.spmv(&frontier_for(sw, opts)) {
                Ok(o2) if o2.report.cycles == out.report.cycles => true,
                Ok(o2) => {
                    println!(
                        "    PIPELINE DIVERGENCE: builder path {} cycles vs checked {}",
                        o2.report.cycles, out.report.cycles
                    );
                    false
                }
                Err(e) => {
                    println!("    builder path error: {e}");
                    false
                }
            };
            if opts.explain {
                explain_analysis(&rt2);
            }
            clean && agree
        }
        Err(e) => {
            println!("{label:24} REJECTED: {e}");
            false
        }
    }
}

/// Prints the analyzer verdict of the combo's last executed program:
/// the per-epoch commit tally and, when replay-free parallel commit was
/// denied for some epoch, the first blocking interference witness.
fn explain_analysis(rt: &CoSparse) {
    let Some(a) = rt.last_analysis() else {
        println!("    analyzer: no compiled program executed");
        return;
    };
    if !a.congruent() {
        println!("    analyzer: inapplicable (incongruent, poisoned or unsupported program)");
        return;
    }
    let total = a.epochs().len();
    let proven = a
        .epochs()
        .iter()
        .filter(|e| matches!(e, ParCommit::Proven(_)))
        .count();
    println!(
        "    analyzer: {total} epoch(s): {proven} proven replay-free, {} dynamically checked",
        total - proven
    );
    if proven < total {
        match a.conflict() {
            Some(c) => println!("    analyzer: parallel commit denied: {c}"),
            None => println!("    analyzer: parallel commit denied (no single witness)"),
        }
    }
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("cosparse-verify: {e}");
            std::process::exit(2);
        }
    };
    let matrix =
        sparse::generate::uniform(opts.n, opts.n, opts.nnz, opts.seed).expect("synthetic matrix");
    println!(
        "cosparse-verify: {} tiles x {} PEs, n={}, nnz={}",
        opts.tiles, opts.pes, opts.n, opts.nnz
    );

    let mut failures = 0usize;
    for sw in [SwConfig::InnerProduct, SwConfig::OuterProduct] {
        for hw in [HwConfig::Sc, HwConfig::Scs, HwConfig::Pc, HwConfig::Ps] {
            if !check_combo(&matrix, sw, hw, &opts) {
                failures += 1;
            }
        }
    }
    if failures > 0 {
        println!("FAIL: {failures} combination(s) with findings");
        std::process::exit(1);
    }
    println!("OK: all 8 combinations lint clean and race-free");
}
