//! The CoSPARSE runtime: owns the dual-format matrix, drives the
//! decision tree, triggers hardware reconfiguration, generates kernel
//! streams, and pairs the simulated timing with the functional result.

use crate::adaptive::AdaptiveState;
use crate::balance::{self, Balancing};
use crate::heuristics::{decide, Decision, MatrixSummary, SwConfig, Thresholds};
use crate::kernels::convert::{self, Direction};
use crate::kernels::{ip, op};
use crate::layout::Layout;
use crate::ops::{apply, GraphOp, OpProfile, SpmvOp, Update};
use crate::verify::{run_checked, VerifyReport};
use sparse::partition::VBlocks;
use sparse::{CooMatrix, CscMatrix, DenseVector, Idx, SparseVector};
use transmuter::{HwConfig, Machine, SimError, SimReport};

/// A frontier (input vector) in one of the two representations the
/// runtime converts between.
#[derive(Debug, Clone, PartialEq)]
pub enum Frontier {
    /// Dense representation (inner-product dataflow).
    Dense(DenseVector<f32>),
    /// Sparse representation (outer-product dataflow).
    Sparse(SparseVector<f32>),
}

impl Frontier {
    /// Dimension of the vector.
    pub fn dim(&self) -> usize {
        match self {
            Frontier::Dense(v) => v.len(),
            Frontier::Sparse(v) => v.dim(),
        }
    }

    /// Number of nonzero (active) elements.
    pub fn nnz(&self) -> usize {
        match self {
            Frontier::Dense(v) => v.iter().filter(|x| **x != 0.0).count(),
            Frontier::Sparse(v) => v.nnz(),
        }
    }

    /// Active fraction — the quantity the decision tree keys on.
    pub fn density(&self) -> f64 {
        let d = self.dim();
        if d == 0 {
            0.0
        } else {
            self.nnz() as f64 / d as f64
        }
    }

    /// Sorted `(index, value)` pairs of the active elements.
    pub fn active_entries(&self) -> Vec<(Idx, f32)> {
        match self {
            Frontier::Dense(v) => v
                .iter()
                .enumerate()
                .filter(|(_, x)| **x != 0.0)
                .map(|(i, x)| (i as Idx, *x))
                .collect(),
            Frontier::Sparse(v) => v.iter().collect(),
        }
    }

    /// True for the sparse representation.
    pub fn is_sparse(&self) -> bool {
        matches!(self, Frontier::Sparse(_))
    }
}

/// How the runtime chooses configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// The paper's automatic decision tree (the default).
    Auto,
    /// A fixed software/hardware pair — used for baselines and for the
    /// per-configuration columns of Figure 9.
    Fixed(SwConfig, HwConfig),
    /// The decision tree refined online from observed iteration costs
    /// (see [`crate::adaptive::AdaptiveState`]; extension beyond the
    /// paper).
    Adaptive,
}

/// Outcome of one plain SpMV invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct SpmvOutcome {
    /// Chosen dataflow.
    pub software: SwConfig,
    /// Chosen memory configuration.
    pub hardware: HwConfig,
    /// Simulated timing/energy (reconfiguration and any frontier
    /// conversion included).
    pub report: SimReport,
    /// The product vector, in the representation the dataflow produces
    /// (dense for IP, sparse for OP).
    pub result: Frontier,
}

/// Outcome of one generic graph-op step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepOutcome<V> {
    /// Chosen dataflow.
    pub software: SwConfig,
    /// Chosen memory configuration.
    pub hardware: HwConfig,
    /// Simulated timing/energy.
    pub report: SimReport,
    /// State updates that passed [`GraphOp::is_update`], sorted by
    /// destination.
    pub updates: Vec<Update<V>>,
}

/// The CoSPARSE runtime for one operand matrix.
///
/// Computes `y = M * x` under the generalized semiring of a
/// [`GraphOp`]. Graph engines pass the *transposed* adjacency matrix so
/// that `y[dst]` reduces over in-edges (`f_next = SpMV(G.T, f)`,
/// §III).
#[derive(Debug)]
pub struct CoSparse {
    coo: CooMatrix,
    csc: CscMatrix,
    /// Out-degree of each frontier index in the original graph
    /// (= column counts of the operand matrix).
    degrees: Vec<u32>,
    row_counts: Vec<usize>,
    machine: Machine,
    thresholds: Thresholds,
    balancing: Balancing,
    policy: Policy,
    prev_sw: Option<SwConfig>,
    adaptive: AdaptiveState,
    verify: bool,
    verify_report: VerifyReport,
}

impl CoSparse {
    /// Creates a runtime for `matrix` on `machine`, storing the COO and
    /// CSC copies (§III-D.2) and precomputing partitioning metadata.
    pub fn new(matrix: &CooMatrix, machine: Machine) -> Self {
        let csc = CscMatrix::from(matrix);
        let degrees = matrix.col_counts().into_iter().map(|c| c as u32).collect();
        let row_counts = matrix.row_counts();
        CoSparse {
            coo: matrix.clone(),
            csc,
            degrees,
            row_counts,
            machine,
            thresholds: Thresholds::paper(),
            balancing: Balancing::NnzBalanced,
            policy: Policy::Auto,
            prev_sw: None,
            adaptive: AdaptiveState::new(),
            verify: false,
            verify_report: VerifyReport::default(),
        }
    }

    /// Enables (or disables) kernel verification: every subsequent
    /// invocation is statically linted against the layout's address map
    /// before running (rejected with [`SimError::Rejected`] on error)
    /// and its trace is checked for data races, accumulated in
    /// [`CoSparse::verification`]. Off by default — verification
    /// materializes streams and records full traces.
    pub fn set_verify(&mut self, on: bool) {
        self.verify = on;
        self.verify_report = VerifyReport::default();
    }

    /// Findings accumulated since verification was enabled.
    pub fn verification(&self) -> &VerifyReport {
        &self.verify_report
    }

    /// Overrides the decision thresholds.
    pub fn set_thresholds(&mut self, thresholds: Thresholds) {
        self.thresholds = thresholds;
    }

    /// Selects the workload-balancing scheme (default: nnz-balanced).
    pub fn set_balancing(&mut self, balancing: Balancing) {
        self.balancing = balancing;
    }

    /// Selects the configuration policy (default: [`Policy::Auto`]).
    /// Switching policy clears any adaptive observations.
    pub fn set_policy(&mut self, policy: Policy) {
        self.policy = policy;
        self.prev_sw = None;
        self.adaptive = AdaptiveState::new();
    }

    /// Observations collected so far under [`Policy::Adaptive`].
    pub fn adaptive_observations(&self) -> usize {
        self.adaptive.observations()
    }

    /// The operand matrix (COO copy).
    pub fn matrix(&self) -> &CooMatrix {
        &self.coo
    }

    /// The operand matrix (CSC copy).
    pub fn matrix_csc(&self) -> &CscMatrix {
        &self.csc
    }

    /// The simulated machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Structural summary used by the decision tree.
    pub fn summary(&self) -> MatrixSummary {
        MatrixSummary {
            rows: self.coo.rows(),
            cols: self.coo.cols(),
            nnz: self.coo.nnz(),
        }
    }

    /// Runs the decision tree for a frontier of the given density
    /// (respecting a fixed policy when one is set).
    pub fn decide(&self, vector_density: f64, profile: &OpProfile) -> Decision {
        let tree = || {
            decide(
                self.summary(),
                vector_density,
                self.machine.geometry(),
                self.machine.uarch(),
                &self.thresholds,
                profile,
            )
        };
        match self.policy {
            Policy::Auto => tree(),
            Policy::Fixed(sw, hw) => Decision {
                software: sw,
                hardware: hw,
                cvd: f64::NAN,
            },
            Policy::Adaptive => self.adaptive.choose(vector_density, tree()),
        }
    }

    /// Simulates one SpMV's access pattern for the given active indices
    /// under `decision`, including reconfiguration and (when the
    /// dataflow changed representation) frontier conversion cost.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors ([`SimError`]).
    pub fn execute(
        &mut self,
        decision: Decision,
        active: &[Idx],
        profile: &OpProfile,
    ) -> Result<SimReport, SimError> {
        let geometry = self.machine.geometry();
        let layout = Layout::new(
            self.coo.rows(),
            self.coo.cols(),
            self.coo.nnz(),
            geometry,
            profile.value_words,
        );
        // SCS splits each tile's banks between cache and SPM, which
        // needs at least two PEs per tile; the machine cannot even
        // reconfigure into it on a 1-PE geometry. Under verification,
        // reject statically (the same finding the stream linter
        // reports) instead of letting the reconfigure panic.
        if self.verify && decision.hardware == HwConfig::Scs && geometry.pes_per_tile() < 2 {
            return Err(SimError::Rejected {
                diagnostics: vec![transmuter::verify::Diagnostic {
                    worker: 0,
                    position: None,
                    severity: transmuter::verify::Severity::Error,
                    kind: transmuter::verify::LintKind::UnsupportedConfig {
                        config: decision.hardware,
                    },
                }],
            });
        }
        self.machine.reconfigure(decision.hardware);

        // Frontier representation conversion (§III-D.2) when the
        // dataflow changed since the previous invocation.
        let conversion = match (self.prev_sw, decision.software) {
            (Some(SwConfig::InnerProduct), SwConfig::OuterProduct) => {
                Some(Direction::DenseToSparse)
            }
            (Some(SwConfig::OuterProduct), SwConfig::InnerProduct) => {
                Some(Direction::SparseToDense)
            }
            _ => None,
        };
        let mut conversion_report = None;
        if let Some(direction) = conversion {
            let streams = convert::streams(
                &layout,
                geometry,
                self.coo.cols(),
                active.len(),
                direction,
                *profile,
            );
            conversion_report = Some(if self.verify {
                run_checked(
                    &mut self.machine,
                    streams,
                    &layout.regions(),
                    &mut self.verify_report,
                )?
            } else {
                self.machine.run(streams)?
            });
        }
        self.prev_sw = Some(decision.software);

        let mut report = match decision.software {
            SwConfig::InnerProduct => {
                let partition = balance::ip_partitions(&self.row_counts, geometry, self.balancing);
                let use_spm = decision.hardware == HwConfig::Scs;
                let vblocks = self.ip_vblocks(use_spm, profile);
                // §IV-C.1: IP inspects every vector element but skips the
                // MAC and output accesses for zeros.
                let mask: Option<Vec<bool>> = if active.len() < self.coo.cols() {
                    let mut m = vec![false; self.coo.cols()];
                    for &i in active {
                        m[i as usize] = true;
                    }
                    Some(m)
                } else {
                    None
                };
                let params = ip::IpParams {
                    layout: &layout,
                    partition: &partition,
                    vblocks: &vblocks,
                    use_spm,
                    active: mask.as_deref(),
                    profile: *profile,
                };
                let streams = ip::streams(&self.coo, geometry, params);
                if self.verify {
                    run_checked(
                        &mut self.machine,
                        streams,
                        &layout.regions(),
                        &mut self.verify_report,
                    )?
                } else {
                    self.machine.run(streams)?
                }
            }
            SwConfig::OuterProduct => {
                let tile_parts =
                    balance::op_tile_partitions(&self.row_counts, geometry, self.balancing);
                let heap_in_spm = decision.hardware == HwConfig::Ps;
                let spm_node_cap = self.machine.uarch().bank_bytes / 8;
                let params = op::OpParams {
                    layout: &layout,
                    tile_parts: &tile_parts,
                    frontier: active,
                    heap_in_spm,
                    spm_node_cap,
                    profile: *profile,
                };
                let streams = op::streams(&self.csc, geometry, params);
                if self.verify {
                    run_checked(
                        &mut self.machine,
                        streams,
                        &layout.regions(),
                        &mut self.verify_report,
                    )?
                } else {
                    self.machine.run(streams)?
                }
            }
        };
        if let Some(conv) = conversion_report {
            report.accumulate(&conv);
        }
        Ok(report)
    }

    /// Picks the vblock width for an IP pass: the SPM capacity per tile
    /// in SCS mode, or the L1 cache capacity in SC mode (vertical
    /// partitioning "is not required for the SC mode but can still be
    /// beneficial", §III-B).
    fn ip_vblocks(&self, use_spm: bool, profile: &OpProfile) -> VBlocks {
        let ua = self.machine.uarch();
        let b = self.machine.geometry().pes_per_tile();
        let bytes = if use_spm {
            ua.spm_bytes_per_tile(b, HwConfig::Scs.l1())
        } else {
            // SC: all B banks are cache.
            b * ua.bank_bytes
        };
        let elems = (bytes / 4 / profile.value_words).max(1);
        if elems >= self.coo.cols() {
            VBlocks::whole(self.coo.cols())
        } else {
            VBlocks::new(self.coo.cols(), elems)
        }
    }

    /// One reconfigured SpMV: decides configurations from the frontier's
    /// density, simulates the access pattern, and computes `y = M * x`
    /// functionally.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    ///
    /// # Panics
    ///
    /// Panics if the frontier dimension does not match the matrix
    /// column count.
    pub fn spmv(&mut self, frontier: &Frontier) -> Result<SpmvOutcome, SimError> {
        assert_eq!(
            frontier.dim(),
            self.coo.cols(),
            "frontier dimension mismatch"
        );
        let profile = OpProfile::scalar();
        let density = frontier.density();
        let decision = self.decide(density, &profile);
        let entries = frontier.active_entries();
        let active: Vec<Idx> = entries.iter().map(|&(i, _)| i).collect();
        let report = self.execute(decision, &active, &profile)?;
        if self.policy == Policy::Adaptive {
            self.adaptive
                .record(density, decision.software, decision.hardware, report.cycles);
        }

        // Functional product (golden model).
        let state = vec![0.0f32; self.coo.rows()];
        let updates = apply(&SpmvOp, &self.csc, &entries, &state, &self.degrees);
        let result = match decision.software {
            SwConfig::InnerProduct => {
                let mut y = DenseVector::filled(self.coo.rows(), 0.0f32);
                for (dst, v) in updates {
                    y[dst as usize] = v;
                }
                Frontier::Dense(y)
            }
            SwConfig::OuterProduct => Frontier::Sparse(
                SparseVector::from_sorted(self.coo.rows(), updates)
                    .expect("apply returns sorted unique destinations"),
            ),
        };
        Ok(SpmvOutcome {
            software: decision.software,
            hardware: decision.hardware,
            report,
            result,
        })
    }

    /// One reconfigured step of a graph algorithm: `active` holds the
    /// frontier's `(index, value)` pairs, `state` the per-vertex state.
    /// Returns the updates and the simulated timing.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn step<O: GraphOp>(
        &mut self,
        op: &O,
        active: &[(Idx, O::Value)],
        state: &[O::Value],
    ) -> Result<StepOutcome<O::Value>, SimError> {
        let profile = op.profile();
        let density = if self.coo.cols() == 0 {
            0.0
        } else {
            active.len() as f64 / self.coo.cols() as f64
        };
        let decision = self.decide(density, &profile);
        let indices: Vec<Idx> = active.iter().map(|&(i, _)| i).collect();
        let report = self.execute(decision, &indices, &profile)?;
        if self.policy == Policy::Adaptive {
            self.adaptive
                .record(density, decision.software, decision.hardware, report.cycles);
        }
        let updates = apply(op, &self.csc, active, state, &self.degrees);
        Ok(StepOutcome {
            software: decision.software,
            hardware: decision.hardware,
            report,
            updates,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transmuter::{Geometry, MicroArch};

    fn runtime(n: usize, nnz: usize) -> CoSparse {
        let m = sparse::generate::uniform(n, n, nnz, 21).unwrap();
        let machine = Machine::new(Geometry::new(2, 4), MicroArch::paper());
        CoSparse::new(&m, machine)
    }

    #[test]
    fn dense_frontier_runs_ip() {
        let mut rt = runtime(512, 8000);
        let x = Frontier::Dense(sparse::generate::random_dense_vector(512, 3));
        let out = rt.spmv(&x).unwrap();
        assert_eq!(out.software, SwConfig::InnerProduct);
        assert!(matches!(out.result, Frontier::Dense(_)));
        assert!(out.report.cycles > 0);
    }

    #[test]
    fn sparse_frontier_runs_op() {
        let mut rt = runtime(4096, 40_000);
        let x = Frontier::Sparse(sparse::generate::random_sparse_vector(4096, 0.002, 5).unwrap());
        let out = rt.spmv(&x).unwrap();
        assert_eq!(out.software, SwConfig::OuterProduct);
        assert!(matches!(out.result, Frontier::Sparse(_)));
    }

    #[test]
    fn result_matches_reference() {
        let m = sparse::generate::uniform(256, 256, 4000, 9).unwrap();
        let machine = Machine::new(Geometry::new(2, 4), MicroArch::paper());
        let mut rt = CoSparse::new(&m, machine);
        let xd = sparse::generate::random_dense_vector(256, 1);
        let want = m.spmv_dense(&xd).unwrap();
        let out = rt.spmv(&Frontier::Dense(xd)).unwrap();
        match out.result {
            Frontier::Dense(y) => {
                for i in 0..256 {
                    assert!((y[i] - want[i]).abs() < 1e-3 * want[i].abs().max(1.0));
                }
            }
            other => panic!("expected dense result, got {other:?}"),
        }
    }

    #[test]
    fn fixed_policy_is_respected() {
        let mut rt = runtime(512, 8000);
        rt.set_policy(Policy::Fixed(SwConfig::OuterProduct, HwConfig::Ps));
        let x = Frontier::Dense(sparse::generate::random_dense_vector(512, 3));
        let out = rt.spmv(&x).unwrap();
        assert_eq!(out.software, SwConfig::OuterProduct);
        assert_eq!(out.hardware, HwConfig::Ps);
    }

    #[test]
    fn dataflow_switch_charges_conversion() {
        let mut rt = runtime(4096, 40_000);
        rt.set_policy(Policy::Fixed(SwConfig::InnerProduct, HwConfig::Sc));
        let dense = Frontier::Dense(sparse::generate::random_dense_vector(4096, 3));
        let first = rt.spmv(&dense).unwrap();
        // Switch to OP: the frontier must be converted dense→sparse.
        rt.policy = Policy::Fixed(SwConfig::OuterProduct, HwConfig::Pc);
        let sparse_f =
            Frontier::Sparse(sparse::generate::random_sparse_vector(4096, 0.01, 2).unwrap());
        let second = rt.spmv(&sparse_f).unwrap();
        // Conversion adds ≥ dim loads on top of OP's own work.
        assert!(
            second.report.stats.loads >= 4096,
            "conversion loads missing: {}",
            second.report.stats.loads
        );
        assert!(first.report.stats.reconfigurations <= 1);
        assert_eq!(second.report.stats.reconfigurations, 1);
    }

    #[test]
    fn op_cheaper_than_ip_for_very_sparse_frontier() {
        let mut rt = runtime(8192, 80_000);
        let sparse_f = sparse::generate::random_sparse_vector(8192, 0.001, 7).unwrap();
        rt.set_policy(Policy::Fixed(SwConfig::OuterProduct, HwConfig::Pc));
        let op_time = rt
            .spmv(&Frontier::Sparse(sparse_f.clone()))
            .unwrap()
            .report
            .cycles;
        let mut rt2 = runtime(8192, 80_000);
        rt2.set_policy(Policy::Fixed(SwConfig::InnerProduct, HwConfig::Sc));
        let ip_time = rt2
            .spmv(&Frontier::Dense(sparse_f.to_dense(0.0)))
            .unwrap()
            .report
            .cycles;
        assert!(
            op_time * 3 < ip_time,
            "OP ({op_time}) should dominate IP ({ip_time}) at 0.1% density"
        );
    }

    #[test]
    fn step_with_custom_op() {
        // Min-plus (SSSP-like) op over a tiny graph.
        #[derive(Debug)]
        struct MinPlus;
        impl GraphOp for MinPlus {
            type Value = f32;
            fn matrix_op(&self, w: f32, src: f32, _dst: f32, _deg: u32) -> f32 {
                src + w
            }
            fn reduce(&self, a: f32, b: f32) -> f32 {
                a.min(b)
            }
            fn is_update(&self, new: f32, old: f32) -> bool {
                new < old
            }
        }
        let mut rt = runtime(256, 2000);
        let state = vec![f32::INFINITY; 256];
        let out = rt.step(&MinPlus, &[(0, 0.0)], &state).unwrap();
        // Source 0's neighbours get finite distances.
        let expected: usize = rt.matrix_csc().col_nnz(0);
        assert_eq!(out.updates.len(), expected);
        assert!(out.report.cycles > 0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dimension_panics() {
        let mut rt = runtime(128, 500);
        let x = Frontier::Dense(DenseVector::filled(64, 1.0f32));
        let _ = rt.spmv(&x);
    }
}

#[cfg(test)]
mod frontier_tests {
    use super::*;

    #[test]
    fn frontier_accessors() {
        let d = Frontier::Dense(DenseVector::from(vec![0.0f32, 2.0, 0.0, 3.0]));
        assert_eq!(d.dim(), 4);
        assert_eq!(d.nnz(), 2);
        assert_eq!(d.density(), 0.5);
        assert!(!d.is_sparse());
        assert_eq!(d.active_entries(), vec![(1, 2.0), (3, 3.0)]);

        let s =
            Frontier::Sparse(SparseVector::from_entries(4, vec![(1, 2.0f32), (3, 3.0)]).unwrap());
        assert!(s.is_sparse());
        assert_eq!(s.active_entries(), d.active_entries());
        assert_eq!(s.density(), 0.5);
    }

    #[test]
    fn zero_dim_frontier() {
        let d = Frontier::Dense(DenseVector::from(Vec::<f32>::new()));
        assert_eq!(d.density(), 0.0);
        assert_eq!(d.nnz(), 0);
    }

    #[test]
    fn empty_sparse_frontier_runs() {
        let m = sparse::generate::uniform(128, 128, 500, 3).unwrap();
        let machine = Machine::new(
            transmuter::Geometry::new(1, 2),
            transmuter::MicroArch::paper(),
        );
        let mut rt = CoSparse::new(&m, machine);
        let out = rt.spmv(&Frontier::Sparse(SparseVector::new(128))).unwrap();
        assert_eq!(out.software, SwConfig::OuterProduct);
        match out.result {
            Frontier::Sparse(v) => assert_eq!(v.nnz(), 0),
            other => panic!("expected sparse, got {other:?}"),
        }
    }

    #[test]
    fn adaptive_policy_records_via_spmv() {
        let m = sparse::generate::uniform(1024, 1024, 8000, 5).unwrap();
        let machine = Machine::new(
            transmuter::Geometry::new(2, 4),
            transmuter::MicroArch::paper(),
        );
        let mut rt = CoSparse::new(&m, machine);
        rt.set_policy(Policy::Adaptive);
        assert_eq!(rt.adaptive_observations(), 0);
        for i in 0..3 {
            let sv = sparse::generate::random_sparse_vector(1024, 0.02, i).unwrap();
            let _ = rt.spmv(&Frontier::Sparse(sv)).unwrap();
        }
        assert!(rt.adaptive_observations() >= 2, "adaptive should explore");
        // Switching policy resets the observations.
        rt.set_policy(Policy::Auto);
        assert_eq!(rt.adaptive_observations(), 0);
    }

    #[test]
    fn repeated_spmv_reuses_warm_machine() {
        let m = sparse::generate::uniform(2048, 2048, 30_000, 4).unwrap();
        let machine = Machine::new(
            transmuter::Geometry::new(2, 4),
            transmuter::MicroArch::paper(),
        );
        let mut rt = CoSparse::new(&m, machine);
        rt.set_policy(Policy::Fixed(SwConfig::InnerProduct, HwConfig::Sc));
        let x = Frontier::Dense(sparse::generate::random_dense_vector(2048, 1));
        let first = rt.spmv(&x).unwrap().report;
        let second = rt.spmv(&x).unwrap().report;
        assert!(
            second.cycles < first.cycles,
            "warm caches should help: {} vs {}",
            second.cycles,
            first.cycles
        );
        // No reconfiguration between same-config runs.
        assert_eq!(second.stats.reconfigurations, 0);
    }
}
