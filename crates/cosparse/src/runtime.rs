//! The CoSPARSE runtime session: drives the decision tree, triggers
//! hardware reconfiguration, generates kernel streams, and pairs the
//! simulated timing with the functional result — over matrix state
//! owned by an `Arc`-shared [`SharedGraph`].
//!
//! A [`CoSparse`] is one *session*: it owns a [`Machine`], frontier
//! scratch buffers, policy/adaptive state and a builder for
//! frontier-dependent programs, while everything derivable from the
//! matrix alone (formats, layout, partitions, compiled dense-IP
//! programs, verify verdicts) lives in the shared graph and is read
//! lock-free (see [`crate::shared`]). `CoSparse::new` builds a private
//! graph for the common single-session case;
//! [`SharedGraph::session`] opens additional cheap sessions over an
//! existing one.

use crate::adaptive::AdaptiveState;
use crate::balance::Balancing;
use crate::heuristics::{
    decide, decide_exact, default_format, Decision, MatrixSummary, SwConfig, Thresholds,
};
use crate::host::{self, ExecBackend, HostOperand};
use crate::kernels::convert::{self, Direction};
use crate::kernels::{formats, ip, op};
use crate::ops::{apply, GraphOp, OpProfile, SpmvOp, Update};
use crate::shared::{SharedCounters, SharedGraph, SharedPlan};
use crate::verify::{run_checked, VerifyReport};
use sparse::{CooMatrix, CscMatrix, DenseVector, FormatKind, Idx, ReorderKind, SparseVector};
use std::sync::Arc;
use transmuter::{
    Analysis, EpochStats, HwConfig, Machine, MemoStats, ProgramBuilder, SimError, SimReport,
};

/// A frontier (input vector) in one of the two representations the
/// runtime converts between.
#[derive(Debug, Clone, PartialEq)]
pub enum Frontier {
    /// Dense representation (inner-product dataflow).
    Dense(DenseVector<f32>),
    /// Sparse representation (outer-product dataflow).
    Sparse(SparseVector<f32>),
}

impl Frontier {
    /// Dimension of the vector.
    pub fn dim(&self) -> usize {
        match self {
            Frontier::Dense(v) => v.len(),
            Frontier::Sparse(v) => v.dim(),
        }
    }

    /// Number of nonzero (active) elements.
    ///
    /// O(1) for the sparse representation; for the dense one the count
    /// is cached inside the vector after the first scan (see
    /// [`DenseVector::nnz`]), so repeated density queries on an
    /// unchanged frontier cost nothing.
    pub fn nnz(&self) -> usize {
        match self {
            Frontier::Dense(v) => v.nnz(),
            Frontier::Sparse(v) => v.nnz(),
        }
    }

    /// Active fraction — the quantity the decision tree keys on.
    pub fn density(&self) -> f64 {
        let d = self.dim();
        if d == 0 {
            0.0
        } else {
            self.nnz() as f64 / d as f64
        }
    }

    /// Appends the sorted active `(index, value)` pairs to `out` — a
    /// reusable-buffer interface, used by the runtime to avoid an
    /// O(frontier) allocation per iteration.
    pub fn collect_active(&self, out: &mut Vec<(Idx, f32)>) {
        match self {
            Frontier::Dense(v) => out.extend(
                v.iter()
                    .enumerate()
                    .filter(|(_, x)| **x != 0.0)
                    .map(|(i, x)| (i as Idx, *x)),
            ),
            Frontier::Sparse(v) => out.extend(v.iter()),
        }
    }

    /// True for the sparse representation.
    pub fn is_sparse(&self) -> bool {
        matches!(self, Frontier::Sparse(_))
    }
}

/// How the runtime chooses configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// The paper's automatic decision tree (the default).
    Auto,
    /// A fixed software/hardware pair — used for baselines and for the
    /// per-configuration columns of Figure 9.
    Fixed(SwConfig, HwConfig),
    /// The decision tree refined online from observed iteration costs
    /// (see [`crate::adaptive::AdaptiveState`]; extension beyond the
    /// paper).
    Adaptive,
}

/// Outcome of one plain SpMV invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct SpmvOutcome {
    /// Chosen dataflow.
    pub software: SwConfig,
    /// Chosen memory configuration.
    pub hardware: HwConfig,
    /// Chosen storage format (the third reconfiguration axis).
    pub format: FormatKind,
    /// Chosen locality reordering (the fourth reconfiguration axis).
    /// Purely a simulated-access-pattern choice: the functional
    /// `result` is always in the original index space.
    pub reorder: ReorderKind,
    /// Simulated timing/energy (reconfiguration, any frontier
    /// conversion and any one-time format materialization included).
    pub report: SimReport,
    /// The product vector, in the representation the dataflow produces
    /// (dense for IP, sparse for OP).
    pub result: Frontier,
}

/// Outcome of one generic graph-op step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepOutcome<V> {
    /// Chosen dataflow.
    pub software: SwConfig,
    /// Chosen memory configuration.
    pub hardware: HwConfig,
    /// Chosen storage format (the third reconfiguration axis).
    pub format: FormatKind,
    /// Chosen locality reordering (the fourth reconfiguration axis);
    /// `updates` are always in the original index space.
    pub reorder: ReorderKind,
    /// Simulated timing/energy.
    pub report: SimReport,
    /// State updates that passed [`GraphOp::is_update`], sorted by
    /// destination.
    pub updates: Vec<Update<V>>,
}

/// The session's binding to one shared plan: an `Arc` to the immutable
/// per-(profile, balancing) tuning state plus the per-session builder
/// scratch that rides on it.
///
/// The bound `Arc` doubles as the session's plan cache key: as long as
/// the op profile and balancing scheme match, invocations never touch
/// the graph's plan registry (or its lock) at all.
#[derive(Debug)]
struct Plan {
    shared: Arc<SharedPlan>,
    /// The single-pass lowering pipeline: kernels emit micro-ops
    /// straight into this builder (`begin` → `kernels::*::build` →
    /// `finish`), so no intermediate op buffers are materialized on the
    /// non-verify path. Between rebuilds it holds the most recent
    /// frontier-dependent program (see `scratch_key`).
    builder: ProgramBuilder,
    /// What the builder's finished program currently holds:
    /// `(software, hardware)` slot indices plus the exact frontier it
    /// was built for. An invocation matching all three skips emission
    /// entirely and re-runs the program as-is — the steady state of
    /// fixed-frontier callers and converged iterative algorithms.
    /// (Everything else the lowering reads — matrix, layout,
    /// partitions, profile — is fixed per [`SharedPlan`].) `None`
    /// whenever the builder was last used for something else (a
    /// conversion build).
    scratch_key: Option<(usize, usize)>,
    scratch_frontier: Vec<Idx>,
}

/// Dense slot index of a hardware configuration in per-config tables.
fn hw_index(hw: HwConfig) -> usize {
    match hw {
        HwConfig::Sc => 0,
        HwConfig::Scs => 1,
        HwConfig::Pc => 2,
        HwConfig::Ps => 3,
    }
}

/// Dense slot index of a dataflow in per-config tables.
fn sw_index(sw: SwConfig) -> usize {
    match sw {
        SwConfig::InnerProduct => 0,
        SwConfig::OuterProduct => 1,
    }
}

/// Cache-effectiveness counters as seen from one [`CoSparse`] session:
/// how often the kernel→program pipeline actually ran versus being
/// served from a cached artifact. The build/hit counter pairs live on
/// the session's [`SharedGraph`] and are summed over *every* session
/// sharing it (for a privately-built runtime they are simply its own);
/// `steady_memo`/`epochs` are this session's machine verdicts.
///
/// `plan_builds`/`plan_hits` count plan registry builds versus reuses;
/// `dense_program_builds`/`dense_program_hits` count dense-IP programs
/// compiled versus invocations served from a shared compiled program;
/// `scratch_program_builds`/`scratch_program_hits` count
/// frontier-dependent emissions versus same-(config, frontier) reuses
/// (see [`MemoStats`] for the memo pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Full plan builds (one per distinct (profile, balancing) key).
    pub plan_builds: u64,
    /// Plan rebinds served from the graph's registry without building.
    pub plan_hits: u64,
    /// Dense-IP programs built and cached per hardware slot.
    pub dense_program_builds: u64,
    /// Dense-IP invocations that reused a shared compiled program.
    pub dense_program_hits: u64,
    /// Frontier-dependent (masked-IP / OP) builder emissions.
    pub scratch_program_builds: u64,
    /// Frontier-dependent invocations served by the builder's current
    /// program without re-emission.
    pub scratch_program_hits: u64,
    /// Conversion-kernel builder emissions (dataflow switches).
    pub conversion_builds: u64,
    /// The machine's steady-state memo counters.
    pub steady_memo: MemoStats,
    /// The machine's epoch-commit counters: epochs committed replay-free
    /// on a static `Proven` verdict, epochs dynamically replayed, and
    /// replays rolled back to sequential (see [`EpochStats`]).
    pub epochs: EpochStats,
}

/// One CoSPARSE session over a shared operand matrix.
///
/// Computes `y = M * x` under the generalized semiring of a
/// [`GraphOp`]. Graph engines pass the *transposed* adjacency matrix so
/// that `y[dst]` reduces over in-edges (`f_next = SpMV(G.T, f)`,
/// §III).
#[derive(Debug)]
pub struct CoSparse {
    /// The shared per-matrix state this session reads through (see
    /// [`crate::shared`]).
    shared: Arc<SharedGraph>,
    /// Which backend answers invocations (default: the simulator).
    backend: ExecBackend,
    machine: Machine,
    thresholds: Thresholds,
    balancing: Balancing,
    policy: Policy,
    /// When set, every decision's storage format is pinned to this
    /// value (bench sweeps; see [`CoSparse::set_format_override`]).
    format_override: Option<FormatKind>,
    /// When set, every decision's locality reordering is pinned to this
    /// value (see [`CoSparse::set_reorder_override`]).
    reorder_override: Option<ReorderKind>,
    prev_sw: Option<SwConfig>,
    adaptive: AdaptiveState,
    verify: bool,
    verify_report: VerifyReport,
    plan: Option<Plan>,
    /// IP activity-mask scratch, `cols` long, kept all-false between
    /// invocations: each call sets and clears only the active bits, so
    /// steady-state masking is O(frontier), not O(cols).
    mask_buf: Vec<bool>,
    /// Reusable staging for the active index list.
    indices_buf: Vec<Idx>,
    /// Reusable staging for the permuted active index list (the
    /// vector-permute contract: when the bound plan carries a
    /// reordering, kernels see the frontier's indices mapped through it
    /// — see [`CoSparse::execute_timed`]).
    perm_buf: Vec<Idx>,
    /// Reusable staging for the active `(index, value)` entries.
    entries_buf: Vec<(Idx, f32)>,
    /// Analyzer verdict of the most recently executed program (cloned
    /// off the program at dispatch; see [`CoSparse::last_analysis`]).
    last_analysis: Option<Analysis>,
    /// When true, one-shot builds (conversions, frontier-dependent
    /// scratch programs) also run the epoch-dependence analysis; see
    /// [`CoSparse::set_deep_analysis`].
    deep_analysis: bool,
}

impl CoSparse {
    /// Creates a single-session runtime for `matrix` on `machine`: the
    /// shared graph state (COO and CSC copies, §III-D.2, plus
    /// partitioning metadata) is built privately for this session. To
    /// share that state across sessions, build it once with
    /// [`SharedGraph::new`] and open sessions via
    /// [`SharedGraph::session`] / [`SharedGraph::session_on`].
    pub fn new(matrix: &CooMatrix, machine: Machine) -> Self {
        let shared = SharedGraph::new(matrix, machine.geometry(), machine.uarch().clone());
        CoSparse::with_shared(shared, machine)
    }

    /// Opens a session over an existing shared graph, running on
    /// `machine`.
    ///
    /// # Panics
    ///
    /// Panics if the machine's geometry or microarchitecture differ
    /// from the graph's — every shared plan and program is derived
    /// from that shape.
    pub fn with_shared(shared: Arc<SharedGraph>, machine: Machine) -> Self {
        assert_eq!(
            machine.geometry(),
            shared.geometry(),
            "session machine geometry must match the shared graph's"
        );
        assert_eq!(
            machine.uarch(),
            shared.uarch(),
            "session machine microarchitecture must match the shared graph's"
        );
        CoSparse {
            mask_buf: vec![false; shared.matrix().cols()],
            shared,
            backend: ExecBackend::Simulate,
            machine,
            thresholds: Thresholds::paper(),
            balancing: Balancing::NnzBalanced,
            policy: Policy::Auto,
            format_override: None,
            reorder_override: None,
            prev_sw: None,
            adaptive: AdaptiveState::new(),
            verify: false,
            verify_report: VerifyReport::default(),
            plan: None,
            indices_buf: Vec::new(),
            perm_buf: Vec::new(),
            entries_buf: Vec::new(),
            last_analysis: None,
            deep_analysis: false,
        }
    }

    /// The shared graph state this session reads through.
    pub fn shared(&self) -> &Arc<SharedGraph> {
        &self.shared
    }

    /// Pipeline cache counters: the shared graph's build/hit pairs
    /// (summed over every session on the graph — a privately-built
    /// runtime's own history) merged with this session machine's
    /// steady-state memo and epoch verdicts.
    pub fn cache_stats(&self) -> CacheStats {
        let shared = self.shared.cache_stats();
        CacheStats {
            plan_builds: shared.plan_builds,
            plan_hits: shared.plan_hits,
            dense_program_builds: shared.dense_program_builds,
            dense_program_hits: shared.dense_program_hits,
            scratch_program_builds: shared.scratch_program_builds,
            scratch_program_hits: shared.scratch_program_hits,
            conversion_builds: shared.conversion_builds,
            steady_memo: self.machine.memo_stats(),
            epochs: self.machine.epoch_stats(),
        }
    }

    /// The static epoch-dependence verdict of the most recently executed
    /// program (see [`transmuter::analyze`]): per-epoch commit modes,
    /// the first interference witness, and the analyzer lints. `None`
    /// until an invocation has run, or when the last program was a
    /// one-shot build with the analysis skipped (see
    /// [`CoSparse::set_deep_analysis`]).
    pub fn last_analysis(&self) -> Option<&Analysis> {
        self.last_analysis.as_ref()
    }

    /// Extends the epoch-dependence analysis to one-shot program builds
    /// (conversions and frontier-dependent scratch programs). Off by
    /// default: those programs execute exactly once, so the machine
    /// gains nothing from a static verdict it can only use on repeats,
    /// while the analysis itself sorts every access the program makes —
    /// a measurable host-time cost in iteration-heavy runs. Plan-cached
    /// dense programs are always analyzed. Turn this on to get
    /// [`CoSparse::last_analysis`] for every combo (as
    /// `cosparse-verify --explain` does).
    pub fn set_deep_analysis(&mut self, on: bool) {
        self.deep_analysis = on;
    }

    /// Enables (or disables) kernel verification: every subsequent
    /// invocation is statically linted against the layout's address map
    /// before running (rejected with [`SimError::Rejected`] on error)
    /// and its trace is checked for data races, accumulated in
    /// [`CoSparse::verification`]. Off by default — verification
    /// materializes streams and records full traces.
    ///
    /// The verdict is memoized per `(dataflow, hardware)` pairing on the
    /// *shared plan*: the first session to run a pairing under
    /// verification pays the full lint + trace + race check, later
    /// invocations — from any session on the graph — re-run the
    /// compiled program directly (still counted in
    /// [`VerifyReport::runs`]). The verdict is a property of the
    /// immutable plan, so toggling verification resets this session's
    /// report but not the plan's memo.
    pub fn set_verify(&mut self, on: bool) {
        self.verify = on;
        self.verify_report = VerifyReport::default();
    }

    /// Findings accumulated since verification was enabled.
    pub fn verification(&self) -> &VerifyReport {
        &self.verify_report
    }

    /// Overrides the decision thresholds.
    pub fn set_thresholds(&mut self, thresholds: Thresholds) {
        self.thresholds = thresholds;
    }

    /// Selects the workload-balancing scheme (default: nnz-balanced).
    pub fn set_balancing(&mut self, balancing: Balancing) {
        self.balancing = balancing;
    }

    /// Selects the execution backend (default:
    /// [`ExecBackend::Simulate`]).
    ///
    /// Under [`ExecBackend::Host`] the runtime still walks the decision
    /// tree (the dataflow choice picks the host path: IP → row loops,
    /// OP → active-column loops) but no simulated machine is in the
    /// path: results are computed natively against host memory and
    /// reports carry wall-clock `seconds` with zero `cycles`.
    /// [`ExecBackend::Differential`] runs both and asserts bit-equal
    /// results. Verification ([`CoSparse::set_verify`]) and adaptive
    /// cycle recording apply only to the simulate path.
    pub fn set_backend(&mut self, backend: ExecBackend) {
        self.backend = backend;
    }

    /// The current execution backend.
    pub fn backend(&self) -> ExecBackend {
        self.backend
    }

    /// Selects the configuration policy (default: [`Policy::Auto`]).
    /// Switching policy clears any adaptive observations.
    pub fn set_policy(&mut self, policy: Policy) {
        self.policy = policy;
        self.prev_sw = None;
        self.adaptive = AdaptiveState::new();
    }

    /// Pins (or unpins, with `None`) the storage format of every
    /// subsequent decision, overriding the tree/policy choice on that
    /// axis — the format analogue of [`Policy::Fixed`], used by the
    /// bench sweeps to measure one format in isolation. The inner
    /// dataflow honors `Coo`, `Bitmap` and `Bcsr`; the outer dataflow
    /// always streams CSC regardless of the pin.
    pub fn set_format_override(&mut self, format: Option<FormatKind>) {
        self.format_override = format;
    }

    /// Pins (or unpins, with `None`) the locality reordering of every
    /// subsequent decision — the fourth-axis analogue of
    /// [`CoSparse::set_format_override`], used by the bench sweeps and
    /// the reorder differential tests. The pinned permutation shapes
    /// the *simulated* address stream only: functional results are
    /// computed in the original index space and are bit-identical to an
    /// unpinned run.
    pub fn set_reorder_override(&mut self, reorder: Option<ReorderKind>) {
        self.reorder_override = reorder;
    }

    /// Observations collected so far under [`Policy::Adaptive`].
    pub fn adaptive_observations(&self) -> usize {
        self.adaptive.observations()
    }

    /// Mean kernel-only cycles recorded for `(sw, hw, format, reorder)`
    /// in `density`'s adaptive bucket, if observed (see
    /// [`AdaptiveState::mean_cycles`]).
    pub fn adaptive_mean_cycles(
        &self,
        density: f64,
        sw: SwConfig,
        hw: HwConfig,
        format: FormatKind,
        reorder: ReorderKind,
    ) -> Option<f64> {
        self.adaptive.mean_cycles(density, sw, hw, format, reorder)
    }

    /// The operand matrix (COO copy).
    pub fn matrix(&self) -> &CooMatrix {
        self.shared.matrix()
    }

    /// The operand matrix (CSC copy).
    pub fn matrix_csc(&self) -> &CscMatrix {
        self.shared.matrix_csc()
    }

    /// The simulated machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Structural summary used by the decision tree, including the
    /// cached format and locality probes (computed once per graph), so
    /// the tree can steer the storage-format and reordering axes.
    pub fn summary(&self) -> MatrixSummary {
        let coo = self.shared.matrix();
        MatrixSummary::with_probe(
            coo.rows(),
            coo.cols(),
            coo.nnz(),
            *self.shared.format_probe(),
        )
        .with_reorder_probe(*self.shared.reorder_probe())
    }

    /// Runs the decision tree for a frontier of the given density
    /// (respecting a fixed policy when one is set).
    pub fn decide(&self, vector_density: f64, profile: &OpProfile) -> Decision {
        let tree = || {
            decide(
                self.summary(),
                vector_density,
                self.machine.geometry(),
                self.machine.uarch(),
                &self.thresholds,
                profile,
            )
        };
        let mut d = match self.policy {
            Policy::Auto => tree(),
            Policy::Fixed(sw, hw) => Decision {
                software: sw,
                hardware: hw,
                format: default_format(sw),
                reorder: ReorderKind::None,
                cvd: f64::NAN,
            },
            Policy::Adaptive => self.adaptive.choose(vector_density, tree()),
        };
        if let Some(f) = self.format_override {
            d.format = f;
        }
        if let Some(r) = self.reorder_override {
            d.reorder = r;
        }
        d
    }

    /// [`CoSparse::decide`] with the frontier's exact active count.
    ///
    /// The density form reconstructs the count as `density * cols`,
    /// which is lossy at the PS/PC list-fit boundary; the runtime knows
    /// the true count and threads it through here (density is still
    /// derived for the CVD comparison and adaptive bucketing).
    pub fn decide_exact(&self, frontier_nnz: usize, profile: &OpProfile) -> Decision {
        let tree = || {
            decide_exact(
                self.summary(),
                frontier_nnz,
                self.machine.geometry(),
                self.machine.uarch(),
                &self.thresholds,
                profile,
            )
        };
        let mut d = match self.policy {
            Policy::Auto => tree(),
            Policy::Fixed(sw, hw) => Decision {
                software: sw,
                hardware: hw,
                format: default_format(sw),
                reorder: ReorderKind::None,
                cvd: f64::NAN,
            },
            Policy::Adaptive => {
                let density = if self.shared.matrix().cols() == 0 {
                    0.0
                } else {
                    frontier_nnz as f64 / self.shared.matrix().cols() as f64
                };
                self.adaptive.choose(density, tree())
            }
        };
        if let Some(f) = self.format_override {
            d.format = f;
        }
        if let Some(r) = self.reorder_override {
            d.reorder = r;
        }
        d
    }

    /// (Re)binds the session's [`Plan`] when none is bound or its key —
    /// op profile + balancing scheme + storage format + reordering — no
    /// longer matches. The plan itself comes from the shared graph's
    /// registry (built there on the first request for the key, from any
    /// session); only the builder scratch is per-session.
    fn ensure_plan(&mut self, profile: &OpProfile, format: FormatKind, reorder: ReorderKind) {
        let stale = self.plan.as_ref().is_none_or(|p| {
            p.shared.profile != *profile
                || p.shared.balancing != self.balancing
                || p.shared.format != format
                || p.shared.reorder != reorder
        });
        if !stale {
            return;
        }
        let shared = self
            .shared
            .plan_for(profile, self.balancing, format, reorder);
        self.plan = Some(Plan {
            shared,
            builder: ProgramBuilder::new(),
            scratch_key: None,
            scratch_frontier: Vec::new(),
        });
    }

    /// Simulates one SpMV's access pattern for the given active indices
    /// under `decision`, including reconfiguration and (when the
    /// dataflow changed representation) frontier conversion cost.
    ///
    /// Under [`ExecBackend::Host`] there is no access pattern to time:
    /// the call returns a zero-cost host report without touching the
    /// machine (callers that drive their own functional math — the BC
    /// engine — stay fast in host mode). The differential backend
    /// simulates normally: a timing-only call has no functional result
    /// to cross-check.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors ([`SimError`]).
    pub fn execute(
        &mut self,
        decision: Decision,
        active: &[Idx],
        profile: &OpProfile,
    ) -> Result<SimReport, SimError> {
        if self.backend == ExecBackend::Host {
            self.ensure_plan(profile, decision.format, decision.reorder);
            return Ok(self.host_report(0.0));
        }
        self.execute_timed(decision, active, profile)
            .map(|(report, _)| report)
    }

    /// [`CoSparse::execute`], additionally returning the kernel-only
    /// cycle count: the report's total minus the one-off reconfiguration
    /// and conversion charges. Adaptive learning keys on this — a
    /// configuration must not look expensive in its density bucket just
    /// because switching *into* it cost cycles once.
    fn execute_timed(
        &mut self,
        decision: Decision,
        active: &[Idx],
        profile: &OpProfile,
    ) -> Result<(SimReport, u64), SimError> {
        let geometry = self.machine.geometry();
        // SCS splits each tile's banks between cache and SPM, which
        // needs at least two PEs per tile; the machine cannot even
        // reconfigure into it on a 1-PE geometry. Under verification,
        // reject statically (the same finding the stream linter
        // reports) instead of letting the reconfigure panic.
        if self.verify && decision.hardware == HwConfig::Scs && geometry.pes_per_tile() < 2 {
            return Err(SimError::Rejected {
                diagnostics: vec![transmuter::verify::Diagnostic {
                    worker: 0,
                    position: None,
                    severity: transmuter::verify::Severity::Error,
                    kind: transmuter::verify::LintKind::UnsupportedConfig {
                        config: decision.hardware,
                    },
                }],
            });
        }
        // Snapshot format coldness before the plan bind: building an
        // alternate-format plan forces the image (to size its region),
        // and the one-time pack charge below keys on whether it was
        // already materialized when this invocation arrived.
        let cold_format = !self
            .shared
            .format_is_materialized(decision.format, decision.reorder);
        self.ensure_plan(profile, decision.format, decision.reorder);
        // The vector-permute contract (fourth axis): when the bound plan
        // streams reordered operands, the kernels must see the
        // frontier's indices mapped into the permuted space too —
        // otherwise mask and frontier would address the wrong columns
        // of the permuted image. The mapping is confined to this
        // method: callers hand in original-space indices, and every
        // functional result is computed in the original space, so
        // reordering is invisible outside the simulated address stream.
        let mut perm_buf = std::mem::take(&mut self.perm_buf);
        let active: &[Idx] = match self
            .plan
            .as_ref()
            .expect("plan ensured above")
            .shared
            .perm()
        {
            Some(p) => {
                p.permute_active(active, &mut perm_buf);
                &perm_buf
            }
            None => active,
        };
        let reconfig_cost = self.machine.reconfigure(decision.hardware);

        // Frontier representation conversion (§III-D.2) when the
        // dataflow changed since the previous invocation.
        let conversion = match (self.prev_sw, decision.software) {
            (Some(SwConfig::InnerProduct), SwConfig::OuterProduct) => {
                Some(Direction::DenseToSparse)
            }
            (Some(SwConfig::OuterProduct), SwConfig::InnerProduct) => {
                Some(Direction::SparseToDense)
            }
            _ => None,
        };
        let mut conversion_report = None;
        if let Some(direction) = conversion {
            let plan = self.plan.as_mut().expect("plan ensured above");
            conversion_report = Some(if self.verify {
                let streams = convert::streams(
                    &plan.shared.layout,
                    geometry,
                    self.shared.matrix().cols(),
                    active.len(),
                    direction,
                    *profile,
                );
                run_checked(
                    &mut self.machine,
                    streams,
                    &plan.shared.regions,
                    &mut self.verify_report,
                )?
            } else {
                // Single-pass path: emit straight into the session's
                // builder. This repurposes the builder, so any cached
                // frontier-dependent program is gone.
                plan.builder.set_analysis(self.deep_analysis);
                plan.builder
                    .begin(geometry, decision.hardware, self.machine.uarch());
                convert::build(
                    &plan.shared.layout,
                    geometry,
                    self.shared.matrix().cols(),
                    active.len(),
                    direction,
                    *profile,
                    &mut plan.builder,
                );
                plan.scratch_key = None;
                SharedCounters::bump(&self.shared.counters().conversion_builds);
                let prog = plan.builder.finish();
                self.last_analysis = prog.analysis().cloned();
                self.machine.run_program(prog)?
            });
        }

        // One-time storage-format materialization (§III-D.2 analogue on
        // the format axis): the first invocation to land on a cold
        // alternate format streams the COO triplets through the PEs and
        // writes the packed image; every later invocation — from any
        // session on the graph — finds it warm.
        let mut pack_report = None;
        if cold_format && matches!(decision.format, FormatKind::Bitmap | FormatKind::Bcsr) {
            let plan = self.plan.as_mut().expect("plan ensured above");
            let image_words = (plan.shared.layout.fmt_bytes / 4) as usize;
            let nnz = self.shared.matrix().nnz();
            pack_report = Some(if self.verify {
                let streams =
                    formats::pack_streams(&plan.shared.layout, geometry, nnz, image_words);
                run_checked(
                    &mut self.machine,
                    streams,
                    &plan.shared.regions,
                    &mut self.verify_report,
                )?
            } else {
                plan.builder.set_analysis(self.deep_analysis);
                plan.builder
                    .begin(geometry, decision.hardware, self.machine.uarch());
                formats::build_pack(
                    &plan.shared.layout,
                    geometry,
                    nnz,
                    image_words,
                    &mut plan.builder,
                );
                plan.scratch_key = None;
                SharedCounters::bump(&self.shared.counters().conversion_builds);
                let prog = plan.builder.finish();
                self.last_analysis = prog.analysis().cloned();
                self.machine.run_program(prog)?
            });
        }

        let sw_idx = sw_index(decision.software);
        let hw_idx = hw_index(decision.hardware);
        let mut report = match decision.software {
            SwConfig::InnerProduct
                if matches!(decision.format, FormatKind::Bitmap | FormatKind::Bcsr) =>
            {
                // Format-streaming IP kernels (the third axis): same
                // dataflow contract as the COO path, different matrix
                // stream. Dense frontiers run the plan's shared compiled
                // program (one per hardware slot, format-specific since
                // the plan is format-keyed); masked frontiers go through
                // the session builder scratch.
                let dense = active.len() >= self.shared.matrix().cols();
                if !dense {
                    for &i in active {
                        self.mask_buf[i as usize] = true;
                    }
                }
                let plan = self.plan.as_mut().expect("plan ensured above");
                let mask: Option<&[bool]> = if dense { None } else { Some(&self.mask_buf) };
                let params = formats::FmtParams {
                    layout: &plan.shared.layout,
                    partition: &plan.shared.ip_partition,
                    active: mask,
                    profile: *profile,
                };
                let result = if self.verify && !plan.shared.is_verified(sw_idx, hw_idx) {
                    let streams = match decision.format {
                        FormatKind::Bitmap => formats::bitmap_streams(
                            plan.shared.bitmap(&self.shared),
                            geometry,
                            params,
                        ),
                        _ => {
                            formats::bcsr_streams(plan.shared.bcsr(&self.shared), geometry, params)
                        }
                    };
                    let run = run_checked(
                        &mut self.machine,
                        streams,
                        &plan.shared.regions,
                        &mut self.verify_report,
                    );
                    if run.is_ok() {
                        plan.shared.mark_verified(sw_idx, hw_idx);
                    }
                    run
                } else if dense {
                    let uarch = self.machine.uarch();
                    // Resolve the image for this plan's (format, reorder)
                    // pairing up front, so the build closure captures a
                    // plain reference.
                    let bitmap = matches!(decision.format, FormatKind::Bitmap)
                        .then(|| plan.shared.bitmap(&self.shared));
                    let bcsr = bitmap.is_none().then(|| plan.shared.bcsr(&self.shared));
                    let prog = plan
                        .shared
                        .dense_program(hw_idx, self.shared.counters(), || {
                            let mut builder = ProgramBuilder::new();
                            builder.set_analysis(true);
                            builder.begin(geometry, decision.hardware, uarch);
                            match bitmap {
                                Some(bitmap) => {
                                    formats::build_bitmap(bitmap, geometry, params, &mut builder)
                                }
                                None => formats::build_bcsr(
                                    bcsr.expect("one image resolved"),
                                    geometry,
                                    params,
                                    &mut builder,
                                ),
                            }
                            builder.finish().clone()
                        });
                    self.last_analysis = prog.analysis().cloned();
                    let run = self.machine.run_program(prog);
                    if self.verify && run.is_ok() {
                        self.verify_report.runs += 1;
                    }
                    run
                } else {
                    if plan.scratch_key != Some((sw_idx, hw_idx))
                        || plan.scratch_frontier != *active
                    {
                        plan.builder.set_analysis(self.deep_analysis);
                        plan.builder
                            .begin(geometry, decision.hardware, self.machine.uarch());
                        match decision.format {
                            FormatKind::Bitmap => formats::build_bitmap(
                                plan.shared.bitmap(&self.shared),
                                geometry,
                                params,
                                &mut plan.builder,
                            ),
                            _ => formats::build_bcsr(
                                plan.shared.bcsr(&self.shared),
                                geometry,
                                params,
                                &mut plan.builder,
                            ),
                        }
                        plan.builder.finish();
                        plan.scratch_key = Some((sw_idx, hw_idx));
                        plan.scratch_frontier.clear();
                        plan.scratch_frontier.extend_from_slice(active);
                        SharedCounters::bump(&self.shared.counters().scratch_program_builds);
                    } else {
                        SharedCounters::bump(&self.shared.counters().scratch_program_hits);
                    }
                    self.last_analysis = plan.builder.program().analysis().cloned();
                    let run = self.machine.run_program(plan.builder.program());
                    if self.verify && run.is_ok() {
                        self.verify_report.runs += 1;
                    }
                    run
                };
                if !dense {
                    for &i in active {
                        self.mask_buf[i as usize] = false;
                    }
                }
                result?
            }
            SwConfig::InnerProduct => {
                let use_spm = decision.hardware == HwConfig::Scs;
                if active.len() >= self.shared.matrix().cols() {
                    // Fully dense frontier: run the shared compiled
                    // program, built by the first session to need this
                    // hardware slot. This is the steady state of PR/CF
                    // — no op regeneration or re-lowering per
                    // iteration, and N sessions share one build.
                    let plan = self.plan.as_mut().expect("plan ensured above");
                    let params = ip::IpParams {
                        layout: &plan.shared.layout,
                        partition: &plan.shared.ip_partition,
                        vblocks: if use_spm {
                            &plan.shared.vblocks_scs
                        } else {
                            &plan.shared.vblocks_sc
                        },
                        use_spm,
                        active: None,
                        profile: *profile,
                    };
                    if self.verify && !plan.shared.is_verified(sw_idx, hw_idx) {
                        let compiled = ip::compile(plan.shared.coo(&self.shared), geometry, params);
                        let streams = ip::replay(&compiled, geometry);
                        let run = run_checked(
                            &mut self.machine,
                            streams,
                            &plan.shared.regions,
                            &mut self.verify_report,
                        )?;
                        plan.shared.mark_verified(sw_idx, hw_idx);
                        run
                    } else {
                        // Shared-plan cached: built once per hardware
                        // slot through a fresh builder (the session's
                        // own builder keeps its frontier-dependent
                        // program), analysis always on — the cost
                        // amortizes over every session and iteration.
                        // The shared program keeps one id, so each
                        // machine's steady-state memo sees the same
                        // recurring program every iteration.
                        let coo = plan.shared.coo(&self.shared);
                        let uarch = self.machine.uarch();
                        let prog =
                            plan.shared
                                .dense_program(hw_idx, self.shared.counters(), || {
                                    let mut builder = ProgramBuilder::new();
                                    builder.set_analysis(true);
                                    builder.begin(geometry, decision.hardware, uarch);
                                    ip::build(coo, geometry, params, &mut builder);
                                    builder.finish().clone()
                                });
                        self.last_analysis = prog.analysis().cloned();
                        let run = self.machine.run_program(prog)?;
                        if self.verify {
                            self.verify_report.runs += 1;
                        }
                        run
                    }
                } else {
                    // §IV-C.1: IP inspects every vector element but
                    // skips the MAC and output accesses for zeros.
                    // Stage the mask in the all-false scratch.
                    for &i in active {
                        self.mask_buf[i as usize] = true;
                    }
                    let plan = self.plan.as_mut().expect("plan ensured above");
                    let params = ip::IpParams {
                        layout: &plan.shared.layout,
                        partition: &plan.shared.ip_partition,
                        vblocks: if use_spm {
                            &plan.shared.vblocks_scs
                        } else {
                            &plan.shared.vblocks_sc
                        },
                        use_spm,
                        active: Some(&self.mask_buf),
                        profile: *profile,
                    };
                    let result = if self.verify && !plan.shared.is_verified(sw_idx, hw_idx) {
                        let compiled = ip::compile(plan.shared.coo(&self.shared), geometry, params);
                        let streams = ip::replay(&compiled, geometry);
                        let run = run_checked(
                            &mut self.machine,
                            streams,
                            &plan.shared.regions,
                            &mut self.verify_report,
                        );
                        if run.is_ok() {
                            plan.shared.mark_verified(sw_idx, hw_idx);
                        }
                        run
                    } else {
                        // Frontier-dependent ops: emit straight into the
                        // session's builder in one pass — no op buffers,
                        // no separate lowering walk — and no work at all
                        // when the builder already holds this exact
                        // (config, frontier).
                        if plan.scratch_key != Some((sw_idx, hw_idx))
                            || plan.scratch_frontier != *active
                        {
                            plan.builder.set_analysis(self.deep_analysis);
                            plan.builder
                                .begin(geometry, decision.hardware, self.machine.uarch());
                            ip::build(
                                plan.shared.coo(&self.shared),
                                geometry,
                                params,
                                &mut plan.builder,
                            );
                            plan.builder.finish();
                            plan.scratch_key = Some((sw_idx, hw_idx));
                            plan.scratch_frontier.clear();
                            plan.scratch_frontier.extend_from_slice(active);
                            SharedCounters::bump(&self.shared.counters().scratch_program_builds);
                        } else {
                            SharedCounters::bump(&self.shared.counters().scratch_program_hits);
                        }
                        self.last_analysis = plan.builder.program().analysis().cloned();
                        let run = self.machine.run_program(plan.builder.program());
                        if self.verify && run.is_ok() {
                            self.verify_report.runs += 1;
                        }
                        run
                    };
                    // Un-stage before propagating any error: the scratch
                    // must return to all-false no matter what.
                    for &i in active {
                        self.mask_buf[i as usize] = false;
                    }
                    result?
                }
            }
            SwConfig::OuterProduct => {
                let plan = self.plan.as_mut().expect("plan ensured above");
                let heap_in_spm = decision.hardware == HwConfig::Ps;
                let spm_node_cap = self.machine.uarch().bank_bytes / 8;
                let params = op::OpParams {
                    layout: &plan.shared.layout,
                    tile_parts: &plan.shared.op_tile_parts,
                    frontier: active,
                    heap_in_spm,
                    spm_node_cap,
                    profile: *profile,
                };
                if self.verify && !plan.shared.is_verified(sw_idx, hw_idx) {
                    let streams = op::streams(plan.shared.csc(&self.shared), geometry, params);
                    let run = run_checked(
                        &mut self.machine,
                        streams,
                        &plan.shared.regions,
                        &mut self.verify_report,
                    )?;
                    plan.shared.mark_verified(sw_idx, hw_idx);
                    run
                } else {
                    if plan.scratch_key != Some((sw_idx, hw_idx))
                        || plan.scratch_frontier != *active
                    {
                        let sub = plan.shared.subruns(plan.shared.csc(&self.shared));
                        plan.builder.set_analysis(self.deep_analysis);
                        plan.builder
                            .begin(geometry, decision.hardware, self.machine.uarch());
                        op::build(
                            plan.shared.csc(&self.shared),
                            geometry,
                            params,
                            sub,
                            &mut plan.builder,
                        );
                        plan.builder.finish();
                        plan.scratch_key = Some((sw_idx, hw_idx));
                        plan.scratch_frontier.clear();
                        plan.scratch_frontier.extend_from_slice(active);
                        SharedCounters::bump(&self.shared.counters().scratch_program_builds);
                    } else {
                        SharedCounters::bump(&self.shared.counters().scratch_program_hits);
                    }
                    self.last_analysis = plan.builder.program().analysis().cloned();
                    let run = self.machine.run_program(plan.builder.program())?;
                    if self.verify {
                        self.verify_report.runs += 1;
                    }
                    run
                }
            }
        };
        // Return the permuted-frontier staging for reuse (error paths
        // above simply drop it; the next call re-grows it).
        self.perm_buf = perm_buf;
        // Only remember the dataflow once its kernel actually ran: a
        // rejected or failed invocation must not convince the next call
        // that the frontier representation already switched.
        self.prev_sw = Some(decision.software);

        // Kernel-only cycles: when a conversion or format pack ran, it
        // absorbed the reconfiguration carry and the kernel report is
        // already clean; otherwise the carry landed on the kernel run.
        let kernel_cycles = if conversion_report.is_some() || pack_report.is_some() {
            report.cycles
        } else {
            report.cycles.saturating_sub(reconfig_cost)
        };
        if let Some(conv) = conversion_report {
            report.accumulate(&conv);
        }
        if let Some(pack) = pack_report {
            report.accumulate(&pack);
        }
        Ok((report, kernel_cycles))
    }

    /// A report for a host-backend invocation that took `seconds` of
    /// wall-clock time: zero cycles, zero simulated stats — the host
    /// path has no machine to account.
    fn host_report(&self, seconds: f64) -> SimReport {
        SimReport {
            geometry: self.machine.geometry(),
            config: self.machine.config(),
            cycles: 0,
            seconds,
            stats: Default::default(),
            energy: Default::default(),
        }
    }

    /// One host-backend step: ensures the plan (for its row
    /// partitioning) and the decided format's host structure, then
    /// evaluates the decided dataflow natively. Returns the updates and
    /// a wall-clock report.
    fn host_step<O: GraphOp>(
        &mut self,
        op: &O,
        decision: Decision,
        active: &[(Idx, O::Value)],
        state: &[O::Value],
        profile: &OpProfile,
    ) -> (Vec<Update<O::Value>>, SimReport) {
        self.ensure_plan(profile, decision.format, decision.reorder);
        let plan = self.plan.as_ref().expect("plan ensured above");
        // The inner dataflow walks the decided format natively against
        // the *original-order* images (the reordering axis shapes the
        // simulated address stream only); the outer dataflow always
        // merges CSC columns.
        let operand = match (decision.software, decision.format) {
            (SwConfig::InnerProduct, FormatKind::Bitmap) => {
                HostOperand::Bitmap(self.shared.bitmap())
            }
            (SwConfig::InnerProduct, FormatKind::Bcsr) => HostOperand::Bcsr(self.shared.bcsr()),
            _ => HostOperand::Csr(self.shared.csr()),
        };
        let t0 = std::time::Instant::now();
        let updates = host::execute(
            op,
            decision.software,
            operand,
            self.shared.matrix_csc(),
            host::StepInputs {
                active,
                state,
                degrees: self.shared.degrees(),
            },
            &plan.shared.ip_partition,
        );
        let report = self.host_report(t0.elapsed().as_secs_f64());
        (updates, report)
    }

    /// One reconfigured SpMV: decides configurations from the frontier's
    /// density, simulates the access pattern, and computes `y = M * x`
    /// functionally.
    ///
    /// Under [`ExecBackend::Host`] the same decision drives the native
    /// host path instead (no machine, wall-clock report); under
    /// [`ExecBackend::Differential`] both run and the results are
    /// asserted bit-equal.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    ///
    /// # Panics
    ///
    /// Panics if the frontier dimension does not match the matrix
    /// column count, or (differential backend) if the host and
    /// simulate results disagree.
    pub fn spmv(&mut self, frontier: &Frontier) -> Result<SpmvOutcome, SimError> {
        assert_eq!(
            frontier.dim(),
            self.shared.matrix().cols(),
            "frontier dimension mismatch"
        );
        let rows = self.shared.matrix().rows();
        let profile = OpProfile::scalar();
        let frontier_nnz = frontier.nnz();
        let density = frontier.density();
        let decision = self.decide_exact(frontier_nnz, &profile);
        // Stage the frontier in the reusable scratch buffers; steady-state
        // iterations allocate nothing here.
        let mut entries = std::mem::take(&mut self.entries_buf);
        entries.clear();
        frontier.collect_active(&mut entries);
        // The all-zero state is read out of the shared graph; the local
        // handle clone keeps it borrowable across `&mut self` calls.
        let graph = Arc::clone(&self.shared);
        if self.backend == ExecBackend::Host {
            // Native path: no machine anywhere.
            let (updates, report) =
                self.host_step(&SpmvOp, decision, &entries, graph.zeros(), &profile);
            self.entries_buf = entries;
            let result = wrap_updates(rows, decision.software, updates);
            return Ok(SpmvOutcome {
                software: decision.software,
                hardware: decision.hardware,
                format: decision.format,
                reorder: decision.reorder,
                report,
                result,
            });
        }
        let mut active = std::mem::take(&mut self.indices_buf);
        active.clear();
        active.extend(entries.iter().map(|&(i, _)| i));
        let executed = self.execute_timed(decision, &active, &profile);
        self.indices_buf = active;
        let (report, kernel_cycles) = match executed {
            Ok(ok) => ok,
            Err(e) => {
                self.entries_buf = entries;
                return Err(e);
            }
        };
        if self.policy == Policy::Adaptive {
            self.adaptive.record(
                density,
                decision.software,
                decision.hardware,
                decision.format,
                decision.reorder,
                kernel_cycles,
            );
        }

        // Functional product (golden model).
        let updates = apply(
            &SpmvOp,
            graph.matrix_csc(),
            &entries,
            graph.zeros(),
            graph.degrees(),
        );
        if self.backend == ExecBackend::Differential {
            let (host_updates, _) =
                self.host_step(&SpmvOp, decision, &entries, graph.zeros(), &profile);
            assert_backends_agree("spmv", &updates, &host_updates);
        }
        self.entries_buf = entries;
        let result = wrap_updates(rows, decision.software, updates);
        Ok(SpmvOutcome {
            software: decision.software,
            hardware: decision.hardware,
            format: decision.format,
            reorder: decision.reorder,
            report,
            result,
        })
    }

    /// One reconfigured step of a graph algorithm: `active` holds the
    /// frontier's `(index, value)` pairs, `state` the per-vertex state.
    /// Returns the updates and the simulated timing.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn step<O: GraphOp>(
        &mut self,
        op: &O,
        active: &[(Idx, O::Value)],
        state: &[O::Value],
    ) -> Result<StepOutcome<O::Value>, SimError> {
        let profile = op.profile();
        let density = if self.shared.matrix().cols() == 0 {
            0.0
        } else {
            active.len() as f64 / self.shared.matrix().cols() as f64
        };
        let decision = self.decide_exact(active.len(), &profile);
        if self.backend == ExecBackend::Host {
            let (updates, report) = self.host_step(op, decision, active, state, &profile);
            return Ok(StepOutcome {
                software: decision.software,
                hardware: decision.hardware,
                format: decision.format,
                reorder: decision.reorder,
                report,
                updates,
            });
        }
        let mut indices = std::mem::take(&mut self.indices_buf);
        indices.clear();
        indices.extend(active.iter().map(|&(i, _)| i));
        let executed = self.execute_timed(decision, &indices, &profile);
        self.indices_buf = indices;
        let (report, kernel_cycles) = executed?;
        if self.policy == Policy::Adaptive {
            self.adaptive.record(
                density,
                decision.software,
                decision.hardware,
                decision.format,
                decision.reorder,
                kernel_cycles,
            );
        }
        let graph = Arc::clone(&self.shared);
        let updates = apply(op, graph.matrix_csc(), active, state, graph.degrees());
        if self.backend == ExecBackend::Differential {
            let (host_updates, _) = self.host_step(op, decision, active, state, &profile);
            assert_backends_agree("step", &updates, &host_updates);
        }
        Ok(StepOutcome {
            software: decision.software,
            hardware: decision.hardware,
            format: decision.format,
            reorder: decision.reorder,
            report,
            updates,
        })
    }
}

/// Wraps a sorted update list in the representation the decided
/// dataflow produces (dense for IP, sparse for OP).
fn wrap_updates(rows: usize, software: SwConfig, updates: Vec<Update<f32>>) -> Frontier {
    match software {
        SwConfig::InnerProduct => {
            let mut y = DenseVector::filled(rows, 0.0f32);
            for (dst, v) in updates {
                y[dst as usize] = v;
            }
            Frontier::Dense(y)
        }
        SwConfig::OuterProduct => Frontier::Sparse(
            SparseVector::from_sorted(rows, updates)
                .expect("updates are sorted unique destinations"),
        ),
    }
}

/// Differential-backend oracle check: the simulate path's functional
/// result and the host backend's result must agree element-for-element
/// (for float values this is bit-equality in practice — both reduce in
/// the same order). Panics with the first divergence.
fn assert_backends_agree<V: PartialEq + std::fmt::Debug>(
    what: &str,
    simulate: &[Update<V>],
    host_side: &[Update<V>],
) {
    assert_eq!(
        simulate.len(),
        host_side.len(),
        "differential {what}: simulate produced {} updates, host {}",
        simulate.len(),
        host_side.len(),
    );
    for (i, (s, h)) in simulate.iter().zip(host_side).enumerate() {
        assert!(
            s == h,
            "differential {what}: update {i} diverges (simulate {s:?}, host {h:?})"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transmuter::{Geometry, MicroArch};

    fn runtime(n: usize, nnz: usize) -> CoSparse {
        let m = sparse::generate::uniform(n, n, nnz, 21).unwrap();
        let machine = Machine::new(Geometry::new(2, 4), MicroArch::paper());
        CoSparse::new(&m, machine)
    }

    #[test]
    fn dense_frontier_runs_ip() {
        let mut rt = runtime(512, 8000);
        let x = Frontier::Dense(sparse::generate::random_dense_vector(512, 3));
        let out = rt.spmv(&x).unwrap();
        assert_eq!(out.software, SwConfig::InnerProduct);
        assert!(matches!(out.result, Frontier::Dense(_)));
        assert!(out.report.cycles > 0);
    }

    #[test]
    fn sparse_frontier_runs_op() {
        let mut rt = runtime(4096, 40_000);
        let x = Frontier::Sparse(sparse::generate::random_sparse_vector(4096, 0.002, 5).unwrap());
        let out = rt.spmv(&x).unwrap();
        assert_eq!(out.software, SwConfig::OuterProduct);
        assert!(matches!(out.result, Frontier::Sparse(_)));
    }

    #[test]
    fn result_matches_reference() {
        let m = sparse::generate::uniform(256, 256, 4000, 9).unwrap();
        let machine = Machine::new(Geometry::new(2, 4), MicroArch::paper());
        let mut rt = CoSparse::new(&m, machine);
        let xd = sparse::generate::random_dense_vector(256, 1);
        let want = m.spmv_dense(&xd).unwrap();
        let out = rt.spmv(&Frontier::Dense(xd)).unwrap();
        match out.result {
            Frontier::Dense(y) => {
                for i in 0..256 {
                    assert!((y[i] - want[i]).abs() < 1e-3 * want[i].abs().max(1.0));
                }
            }
            other => panic!("expected dense result, got {other:?}"),
        }
    }

    #[test]
    fn fixed_policy_is_respected() {
        let mut rt = runtime(512, 8000);
        rt.set_policy(Policy::Fixed(SwConfig::OuterProduct, HwConfig::Ps));
        let x = Frontier::Dense(sparse::generate::random_dense_vector(512, 3));
        let out = rt.spmv(&x).unwrap();
        assert_eq!(out.software, SwConfig::OuterProduct);
        assert_eq!(out.hardware, HwConfig::Ps);
    }

    #[test]
    fn dataflow_switch_charges_conversion() {
        let mut rt = runtime(4096, 40_000);
        rt.set_policy(Policy::Fixed(SwConfig::InnerProduct, HwConfig::Sc));
        let dense = Frontier::Dense(sparse::generate::random_dense_vector(4096, 3));
        let first = rt.spmv(&dense).unwrap();
        // Switch to OP: the frontier must be converted dense→sparse.
        rt.policy = Policy::Fixed(SwConfig::OuterProduct, HwConfig::Pc);
        let sparse_f =
            Frontier::Sparse(sparse::generate::random_sparse_vector(4096, 0.01, 2).unwrap());
        let second = rt.spmv(&sparse_f).unwrap();
        // Conversion adds ≥ dim loads on top of OP's own work.
        assert!(
            second.report.stats.loads >= 4096,
            "conversion loads missing: {}",
            second.report.stats.loads
        );
        assert!(first.report.stats.reconfigurations <= 1);
        assert_eq!(second.report.stats.reconfigurations, 1);
    }

    #[test]
    fn op_cheaper_than_ip_for_very_sparse_frontier() {
        let mut rt = runtime(8192, 80_000);
        let sparse_f = sparse::generate::random_sparse_vector(8192, 0.001, 7).unwrap();
        rt.set_policy(Policy::Fixed(SwConfig::OuterProduct, HwConfig::Pc));
        let op_time = rt
            .spmv(&Frontier::Sparse(sparse_f.clone()))
            .unwrap()
            .report
            .cycles;
        let mut rt2 = runtime(8192, 80_000);
        rt2.set_policy(Policy::Fixed(SwConfig::InnerProduct, HwConfig::Sc));
        let ip_time = rt2
            .spmv(&Frontier::Dense(sparse_f.to_dense(0.0)))
            .unwrap()
            .report
            .cycles;
        assert!(
            op_time * 3 < ip_time,
            "OP ({op_time}) should dominate IP ({ip_time}) at 0.1% density"
        );
    }

    #[test]
    fn step_with_custom_op() {
        // Min-plus (SSSP-like) op over a tiny graph.
        #[derive(Debug)]
        struct MinPlus;
        impl GraphOp for MinPlus {
            type Value = f32;
            fn matrix_op(&self, w: f32, src: f32, _dst: f32, _deg: u32) -> f32 {
                src + w
            }
            fn reduce(&self, a: f32, b: f32) -> f32 {
                a.min(b)
            }
            fn is_update(&self, new: f32, old: f32) -> bool {
                new < old
            }
        }
        let mut rt = runtime(256, 2000);
        let state = vec![f32::INFINITY; 256];
        let out = rt.step(&MinPlus, &[(0, 0.0)], &state).unwrap();
        // Source 0's neighbours get finite distances.
        let expected: usize = rt.matrix_csc().col_nnz(0);
        assert_eq!(out.updates.len(), expected);
        assert!(out.report.cycles > 0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dimension_panics() {
        let mut rt = runtime(128, 500);
        let x = Frontier::Dense(DenseVector::filled(64, 1.0f32));
        let _ = rt.spmv(&x);
    }

    #[test]
    #[should_panic(expected = "geometry must match")]
    fn mismatched_session_machine_panics() {
        let m = sparse::generate::uniform(64, 64, 300, 2).unwrap();
        let g = SharedGraph::new(&m, Geometry::new(2, 4), MicroArch::paper());
        let wrong = Machine::new(Geometry::new(1, 2), MicroArch::paper());
        let _ = g.session_on(wrong);
    }
}

#[cfg(test)]
mod frontier_tests {
    use super::*;

    fn runtime(n: usize, nnz: usize) -> CoSparse {
        let m = sparse::generate::uniform(n, n, nnz, 21).unwrap();
        let machine = Machine::new(
            transmuter::Geometry::new(2, 4),
            transmuter::MicroArch::paper(),
        );
        CoSparse::new(&m, machine)
    }

    #[test]
    fn frontier_accessors() {
        let d = Frontier::Dense(DenseVector::from(vec![0.0f32, 2.0, 0.0, 3.0]));
        assert_eq!(d.dim(), 4);
        assert_eq!(d.nnz(), 2);
        assert_eq!(d.density(), 0.5);
        assert!(!d.is_sparse());
        let mut dense_active = Vec::new();
        d.collect_active(&mut dense_active);
        assert_eq!(dense_active, vec![(1, 2.0), (3, 3.0)]);

        let s =
            Frontier::Sparse(SparseVector::from_entries(4, vec![(1, 2.0f32), (3, 3.0)]).unwrap());
        assert!(s.is_sparse());
        let mut sparse_active = Vec::new();
        s.collect_active(&mut sparse_active);
        assert_eq!(sparse_active, dense_active);
        assert_eq!(s.density(), 0.5);
    }

    #[test]
    fn zero_dim_frontier() {
        let d = Frontier::Dense(DenseVector::from(Vec::<f32>::new()));
        assert_eq!(d.density(), 0.0);
        assert_eq!(d.nnz(), 0);
    }

    #[test]
    fn empty_sparse_frontier_runs() {
        let m = sparse::generate::uniform(128, 128, 500, 3).unwrap();
        let machine = Machine::new(
            transmuter::Geometry::new(1, 2),
            transmuter::MicroArch::paper(),
        );
        let mut rt = CoSparse::new(&m, machine);
        let out = rt.spmv(&Frontier::Sparse(SparseVector::new(128))).unwrap();
        assert_eq!(out.software, SwConfig::OuterProduct);
        match out.result {
            Frontier::Sparse(v) => assert_eq!(v.nnz(), 0),
            other => panic!("expected sparse, got {other:?}"),
        }
    }

    #[test]
    fn adaptive_policy_records_via_spmv() {
        let m = sparse::generate::uniform(1024, 1024, 8000, 5).unwrap();
        let machine = Machine::new(
            transmuter::Geometry::new(2, 4),
            transmuter::MicroArch::paper(),
        );
        let mut rt = CoSparse::new(&m, machine);
        rt.set_policy(Policy::Adaptive);
        assert_eq!(rt.adaptive_observations(), 0);
        for i in 0..3 {
            let sv = sparse::generate::random_sparse_vector(1024, 0.02, i).unwrap();
            let _ = rt.spmv(&Frontier::Sparse(sv)).unwrap();
        }
        assert!(rt.adaptive_observations() >= 2, "adaptive should explore");
        // Switching policy resets the observations.
        rt.set_policy(Policy::Auto);
        assert_eq!(rt.adaptive_observations(), 0);
    }

    #[test]
    fn repeated_spmv_reuses_warm_machine() {
        let m = sparse::generate::uniform(2048, 2048, 30_000, 4).unwrap();
        let machine = Machine::new(
            transmuter::Geometry::new(2, 4),
            transmuter::MicroArch::paper(),
        );
        let mut rt = CoSparse::new(&m, machine);
        rt.set_policy(Policy::Fixed(SwConfig::InnerProduct, HwConfig::Sc));
        let x = Frontier::Dense(sparse::generate::random_dense_vector(2048, 1));
        let first = rt.spmv(&x).unwrap().report;
        let second = rt.spmv(&x).unwrap().report;
        assert!(
            second.cycles < first.cycles,
            "warm caches should help: {} vs {}",
            second.cycles,
            first.cycles
        );
        // No reconfiguration between same-config runs.
        assert_eq!(second.stats.reconfigurations, 0);
    }

    #[test]
    fn rejected_execute_preserves_prev_sw() {
        // On a 1-PE-per-tile geometry a verified SCS request is rejected
        // statically. The rejection must leave the runtime's remembered
        // dataflow untouched: the next IP run still owes the
        // sparse→dense frontier conversion. A control runtime that never
        // saw the rejected call must produce the identical report.
        let profile = OpProfile::scalar();
        let geometry = transmuter::Geometry::new(1, 1);
        let decision = |sw, hw| Decision {
            software: sw,
            hardware: hw,
            format: default_format(sw),
            reorder: ReorderKind::None,
            cvd: f64::NAN,
        };
        let m = sparse::generate::uniform(256, 256, 2000, 13).unwrap();
        let active: Vec<Idx> = (0..32).collect();

        let mut control = CoSparse::new(&m, Machine::new(geometry, transmuter::MicroArch::paper()));
        control.set_verify(true);
        control
            .execute(
                decision(SwConfig::OuterProduct, HwConfig::Pc),
                &active,
                &profile,
            )
            .unwrap();
        let want = control
            .execute(
                decision(SwConfig::InnerProduct, HwConfig::Sc),
                &active,
                &profile,
            )
            .unwrap();

        let mut rt = CoSparse::new(&m, Machine::new(geometry, transmuter::MicroArch::paper()));
        rt.set_verify(true);
        rt.execute(
            decision(SwConfig::OuterProduct, HwConfig::Pc),
            &active,
            &profile,
        )
        .unwrap();
        let rejected = rt.execute(
            decision(SwConfig::InnerProduct, HwConfig::Scs),
            &active,
            &profile,
        );
        assert!(matches!(rejected, Err(SimError::Rejected { .. })));
        let got = rt
            .execute(
                decision(SwConfig::InnerProduct, HwConfig::Sc),
                &active,
                &profile,
            )
            .unwrap();
        assert_eq!(got.cycles, want.cycles);
        assert_eq!(got.stats.loads, want.stats.loads);
        // The conversion actually ran (its loads cover the frontier dim).
        assert!(got.stats.loads >= 256 + active.len() as u64);
    }

    #[test]
    fn adaptive_records_kernel_only_cycles() {
        let mut rt = runtime(512, 8000);
        rt.set_policy(Policy::Adaptive);
        let x = Frontier::Dense(sparse::generate::random_dense_vector(512, 3));
        let density = x.density();
        let first = rt.spmv(&x).unwrap();
        let second = rt.spmv(&x).unwrap();
        assert_eq!(first.software, second.software);
        assert_ne!(
            first.hardware, second.hardware,
            "second call explores the hardware sibling"
        );
        // The sibling run paid a reconfiguration on top of its kernel,
        // but the recorded cost must be kernel-only — strictly below the
        // switch-inclusive report.
        let mean = rt
            .adaptive_mean_cycles(
                density,
                second.software,
                second.hardware,
                second.format,
                second.reorder,
            )
            .unwrap();
        assert!(
            mean < second.report.cycles as f64,
            "recorded {mean} should exclude the reconfiguration from {}",
            second.report.cycles
        );
        // With both configs observed at kernel-only cost, the third call
        // picks the bucket's argmin.
        let first_mean = rt
            .adaptive_mean_cycles(
                density,
                first.software,
                first.hardware,
                first.format,
                first.reorder,
            )
            .unwrap();
        let third = rt.spmv(&x).unwrap();
        let want_hw = if first_mean <= mean {
            first.hardware
        } else {
            second.hardware
        };
        assert_eq!(third.hardware, want_hw);
    }

    #[test]
    fn reorder_override_is_bit_identical_and_rekeys_the_plan() {
        let m = sparse::generate::uniform(512, 512, 8000, 21).unwrap();
        let machine = || {
            Machine::new(
                transmuter::Geometry::new(2, 4),
                transmuter::MicroArch::paper(),
            )
        };
        let x = Frontier::Dense(sparse::generate::random_dense_vector(512, 3));
        let mut plain = CoSparse::new(&m, machine());
        let want = plain.spmv(&x).unwrap();
        assert_eq!(want.reorder, ReorderKind::None);

        let mut rt = CoSparse::new(&m, machine());
        // Differential backend: the host result cross-checks the golden
        // model on every call, reordering pinned or not.
        rt.set_backend(ExecBackend::Differential);
        rt.set_reorder_override(Some(ReorderKind::Rcm));
        let out = rt.spmv(&x).unwrap();
        assert_eq!(out.reorder, ReorderKind::Rcm);
        // Functional results never see the permutation.
        assert_eq!(out.result, want.result);
        // Pinning back to arrival order rekeys the plan.
        rt.set_reorder_override(None);
        let back = rt.spmv(&x).unwrap();
        assert_eq!(back.reorder, ReorderKind::None);
        assert_eq!(back.result, want.result);
        let cs = rt.cache_stats();
        assert_eq!(cs.plan_builds, 2);
        assert_eq!(rt.shared().cache_stats().reorder_builds, 1);

        // The sparse-frontier (OP) path agrees too.
        let sv = sparse::generate::random_sparse_vector(512, 0.01, 7).unwrap();
        let mut op_plain = CoSparse::new(&m, machine());
        let op_want = op_plain.spmv(&Frontier::Sparse(sv.clone())).unwrap();
        let mut op_rt = CoSparse::new(&m, machine());
        op_rt.set_backend(ExecBackend::Differential);
        op_rt.set_reorder_override(Some(ReorderKind::WindowCluster));
        let op_out = op_rt.spmv(&Frontier::Sparse(sv)).unwrap();
        assert_eq!(op_out.reorder, ReorderKind::WindowCluster);
        assert_eq!(op_out.result, op_want.result);
    }

    #[test]
    fn balancing_change_invalidates_plan() {
        let mut rt = runtime(512, 8000);
        let x = Frontier::Dense(sparse::generate::random_dense_vector(512, 3));
        let _warm = rt.spmv(&x).unwrap();
        rt.set_balancing(Balancing::EqualRows);
        let after = rt.spmv(&x).unwrap();

        // A fresh runtime on EqualRows from the start must agree on the
        // decision, the op counts (which depend on the partition the
        // plan caches) and the functional result. Cycles may differ —
        // the warm runtime's caches are primed.
        let mut fresh = runtime(512, 8000);
        fresh.set_balancing(Balancing::EqualRows);
        let want = fresh.spmv(&x).unwrap();
        assert_eq!(after.software, want.software);
        assert_eq!(after.hardware, want.hardware);
        assert_eq!(after.report.stats.loads, want.report.stats.loads);
        assert_eq!(after.report.stats.stores, want.report.stats.stores);
        assert_eq!(after.result, want.result);
    }

    #[test]
    fn profile_change_rebuilds_plan() {
        // A wide-value op (CF-like) needs a different layout than scalar
        // SpMV; alternating between them must rebind the plan each time
        // and keep both functionally correct.
        #[derive(Debug)]
        struct Wide;
        impl GraphOp for Wide {
            type Value = f32;
            fn matrix_op(&self, w: f32, src: f32, _dst: f32, _deg: u32) -> f32 {
                w * src
            }
            fn reduce(&self, a: f32, b: f32) -> f32 {
                a + b
            }
            fn profile(&self) -> OpProfile {
                OpProfile {
                    value_words: 4,
                    extra_compute_per_edge: 3,
                    vector_op_compute: 1,
                }
            }
        }
        let m = sparse::generate::uniform(256, 256, 4000, 9).unwrap();
        let machine = Machine::new(
            transmuter::Geometry::new(2, 4),
            transmuter::MicroArch::paper(),
        );
        let mut rt = CoSparse::new(&m, machine);
        let xd = sparse::generate::random_dense_vector(256, 1);
        let want = m.spmv_dense(&xd).unwrap();
        let check = |out: &SpmvOutcome| match &out.result {
            Frontier::Dense(y) => {
                for i in 0..256 {
                    assert!((y[i] - want[i]).abs() < 1e-3 * want[i].abs().max(1.0));
                }
            }
            other => panic!("expected dense result, got {other:?}"),
        };
        let before = rt.spmv(&Frontier::Dense(xd.clone())).unwrap();
        check(&before);
        let active: Vec<(Idx, f32)> = (0..256).map(|i| (i as Idx, 1.0)).collect();
        let state = vec![0.0f32; 256];
        let wide = rt.step(&Wide, &active, &state).unwrap();
        assert!(wide.report.cycles > 0);
        let after = rt.spmv(&Frontier::Dense(xd)).unwrap();
        check(&after);
        assert_eq!(before.report.stats.loads, after.report.stats.loads);
        // Returning to the scalar profile rebinds the already-built
        // plan: two distinct keys were ever built, the third bind hit.
        let cs = rt.cache_stats();
        assert_eq!(cs.plan_builds, 2);
        assert_eq!(cs.plan_hits, 1);
        // The scalar dense-IP program survived the profile round-trip.
        assert_eq!(cs.dense_program_builds, 2);
        assert!(cs.dense_program_hits >= 1);
    }
}
