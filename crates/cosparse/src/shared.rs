//! Shared, immutable per-graph state behind every [`CoSparse`] session.
//!
//! Everything derivable from the operand matrix alone — the COO/CSC
//! (and lazily CSR) copies, the address-space [`Layout`] and its
//! [`RegionMap`], the workload-balanced partitions and vblock tilings,
//! the compiled dense-IP [`Program`]s per hardware configuration, and
//! the per-pairing verify verdicts — lives in one [`SharedGraph`],
//! built once and shared via [`Arc`] by any number of concurrent
//! sessions. A [`CoSparse`] session keeps only what is genuinely
//! per-query: its simulated [`Machine`], frontier scratch, adaptive
//! state and policy knobs. Creating a session is cheap; creating a
//! graph is where the setup cost lives.
//!
//! Read paths are lock-free in the steady state: a session caches an
//! `Arc` to its current [`SharedPlan`] (re-looked-up only when the op
//! profile or balancing scheme changes), and the plan's dense-IP
//! programs and OP sub-run tables sit behind [`OnceLock`]s — writes
//! happen only on the cold miss that first derives the artifact. The
//! single [`Mutex`] in the structure guards the small plan registry and
//! is touched only when a session (re)binds a plan.
//!
//! Shared programs keep their compiled program ids, so every session's
//! machine sees the *same* recurring id for a given dense kernel and
//! the per-machine steady-state memo engages exactly as it does for a
//! single-session runtime (the memo-eligibility property introduced
//! with the single-pass builder pipeline, DESIGN.md §10).

use crate::balance::{self, Balancing};
use crate::layout::Layout;
use crate::ops::OpProfile;
use crate::runtime::CoSparse;
use sparse::partition::{RowPartition, VBlocks};
use sparse::{
    BcsrMatrix, BitmapCsr, CooMatrix, CscMatrix, CsrMatrix, FormatKind, FormatProbe, Permutation,
    ReorderKind, ReorderProbe,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use transmuter::verify::RegionMap;
use transmuter::{Geometry, HwConfig, Machine, MicroArch, Program};

/// Snapshot of the graph-level cache counters: how often the expensive
/// per-matrix artifacts were (re)built versus served to a session from
/// the shared state. Counter pairs are exact: every plan acquisition
/// increments exactly one of `plan_builds`/`plan_hits`, and every
/// dense-IP invocation served through the shared cache increments
/// exactly one of `dense_program_builds`/`dense_program_hits` — under
/// any number of contending sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SharedCacheStats {
    /// Plans built (one per distinct (op profile, balancing) pair).
    pub plan_builds: u64,
    /// Plan acquisitions served from the registry without building.
    pub plan_hits: u64,
    /// Dense-IP programs built (at most one per plan × hardware slot).
    pub dense_program_builds: u64,
    /// Dense-IP invocations that reused a shared compiled program.
    pub dense_program_hits: u64,
    /// Frontier-dependent (masked-IP / OP) builder emissions, summed
    /// over all sessions.
    pub scratch_program_builds: u64,
    /// Frontier-dependent invocations served by a session builder's
    /// current program without re-emission, summed over all sessions.
    pub scratch_program_hits: u64,
    /// Conversion-kernel builder emissions (dataflow switches), summed
    /// over all sessions.
    pub conversion_builds: u64,
    /// Alternate-format matrix images (bitmap CSR / BCSR) materialized,
    /// at most one per format per (graph, reordering) — later sessions
    /// reuse them.
    pub format_builds: u64,
    /// Reordered matrix operand sets (permutation + permuted COO/CSC)
    /// materialized, at most one per [`ReorderKind`] per graph.
    pub reorder_builds: u64,
}

/// Graph-level cache counters, updated with relaxed atomics from every
/// session sharing the graph.
#[derive(Debug, Default)]
pub(crate) struct SharedCounters {
    plan_builds: AtomicU64,
    plan_hits: AtomicU64,
    dense_program_builds: AtomicU64,
    dense_program_hits: AtomicU64,
    pub(crate) scratch_program_builds: AtomicU64,
    pub(crate) scratch_program_hits: AtomicU64,
    pub(crate) conversion_builds: AtomicU64,
    pub(crate) format_builds: AtomicU64,
    pub(crate) reorder_builds: AtomicU64,
}

impl SharedCounters {
    fn snapshot(&self) -> SharedCacheStats {
        SharedCacheStats {
            plan_builds: self.plan_builds.load(Ordering::Relaxed),
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            dense_program_builds: self.dense_program_builds.load(Ordering::Relaxed),
            dense_program_hits: self.dense_program_hits.load(Ordering::Relaxed),
            scratch_program_builds: self.scratch_program_builds.load(Ordering::Relaxed),
            scratch_program_hits: self.scratch_program_hits.load(Ordering::Relaxed),
            conversion_builds: self.conversion_builds.load(Ordering::Relaxed),
            format_builds: self.format_builds.load(Ordering::Relaxed),
            reorder_builds: self.reorder_builds.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A permuted view of the shared matrix under one [`ReorderKind`]: the
/// exact [`Permutation`] plus the permuted COO/CSC operand images (and
/// lazily their bitmap/BCSR encodings). Built at most once per kind per
/// graph and shared by every plan keyed on that reordering.
///
/// These images drive the *simulated address stream only*: the
/// functional results of every backend are computed in the original
/// index space (see the vector-permute contract in the runtime), so a
/// reordered plan is bit-identical to an arrival-order plan by
/// construction.
#[derive(Debug)]
pub(crate) struct ReorderedGraph {
    pub(crate) perm: Permutation,
    pub(crate) coo: CooMatrix,
    pub(crate) csc: CscMatrix,
    pub(crate) row_counts: Vec<usize>,
    bitmap: OnceLock<BitmapCsr>,
    bcsr: OnceLock<BcsrMatrix>,
}

impl ReorderedGraph {
    fn build(kind: ReorderKind, base: &CooMatrix) -> Self {
        let perm = sparse::reorder::compute(kind, base);
        let coo = perm.apply_coo(base);
        let csc = CscMatrix::from(&coo);
        let row_counts = coo.row_counts();
        ReorderedGraph {
            perm,
            coo,
            csc,
            row_counts,
            bitmap: OnceLock::new(),
            bcsr: OnceLock::new(),
        }
    }

    /// Bitmap image of the permuted matrix, built on first use and
    /// counted in [`SharedCacheStats::format_builds`].
    pub(crate) fn bitmap(&self, counters: &SharedCounters) -> &BitmapCsr {
        self.bitmap.get_or_init(|| {
            SharedCounters::bump(&counters.format_builds);
            BitmapCsr::from(&self.coo)
        })
    }

    /// BCSR image of the permuted matrix, counted like
    /// [`ReorderedGraph::bitmap`].
    pub(crate) fn bcsr(&self, counters: &SharedCounters) -> &BcsrMatrix {
        self.bcsr.get_or_init(|| {
            SharedCounters::bump(&counters.format_builds);
            BcsrMatrix::from(&self.coo)
        })
    }
}

/// One immutable tuning plan over the shared matrix, keyed by
/// `(op profile, balancing scheme, storage format, reordering)` — the
/// OSKI-style memo that used to live inside each runtime, now built
/// once per graph and shared.
///
/// The geometry-derived members (layout, partitions, vblocks) are plain
/// immutable data; the dense-IP programs and OP sub-run bounds are
/// derived lazily behind [`OnceLock`]s by whichever session first needs
/// them, then read lock-free by everyone. The verify-verdict matrix is
/// a property of the plan (a pairing that linted clean stays clean for
/// this matrix/layout), shared as atomics.
#[derive(Debug)]
pub(crate) struct SharedPlan {
    pub(crate) profile: OpProfile,
    pub(crate) balancing: Balancing,
    pub(crate) format: FormatKind,
    pub(crate) reorder: ReorderKind,
    /// The reordered operand set this plan streams; `None` keeps the
    /// graph's arrival-order operands.
    operands: Option<Arc<ReorderedGraph>>,
    pub(crate) layout: Layout,
    pub(crate) regions: RegionMap,
    pub(crate) ip_partition: RowPartition,
    pub(crate) op_tile_parts: RowPartition,
    pub(crate) vblocks_sc: VBlocks,
    pub(crate) vblocks_scs: VBlocks,
    /// Dense-IP [`Program`]s, one slot per hardware configuration,
    /// built by the first session that runs the pairing and shared
    /// (same program id) by every later one.
    ip_programs: [OnceLock<Program>; 4],
    /// Matrix-invariant OP column sub-run bounds (see
    /// [`crate::kernels::op::subruns`]).
    op_subruns: OnceLock<Vec<(u32, u32)>>,
    /// Verify-verdict memo, indexed `[software][hardware]`: true once
    /// the pairing was linted and race-checked on this plan by any
    /// session.
    verified: [[AtomicBool; 4]; 2],
}

impl SharedPlan {
    fn build(
        graph: &SharedGraph,
        profile: &OpProfile,
        balancing: Balancing,
        format: FormatKind,
        reorder: ReorderKind,
    ) -> Self {
        let geometry = graph.geometry;
        let operands = match reorder {
            ReorderKind::None => None,
            kind => Some(graph.reordered(kind)),
        };
        // Partitions balance over the row distribution the plan
        // actually streams — the permuted one when reordered.
        let row_counts = match &operands {
            Some(ops) => &ops.row_counts,
            None => &graph.row_counts,
        };
        // Alternate formats get a packed image region sized from the
        // materialized structure (forcing it now, under the registry
        // lock, so the plan's layout is stable). The image — and hence
        // its byte size — is per-(reorder, format): permuting changes
        // the segment/block population.
        let fmt_bytes = match (format, &operands) {
            (FormatKind::Bitmap, None) => {
                crate::kernels::formats::bitmap_image_bytes(graph.bitmap())
            }
            (FormatKind::Bcsr, None) => crate::kernels::formats::bcsr_image_bytes(graph.bcsr()),
            (FormatKind::Bitmap, Some(ops)) => {
                crate::kernels::formats::bitmap_image_bytes(ops.bitmap(&graph.counters))
            }
            (FormatKind::Bcsr, Some(ops)) => {
                crate::kernels::formats::bcsr_image_bytes(ops.bcsr(&graph.counters))
            }
            _ => 0,
        };
        let layout = Layout::with_format_bytes(
            graph.coo.rows(),
            graph.coo.cols(),
            graph.coo.nnz(),
            geometry,
            profile.value_words,
            fmt_bytes,
        );
        let regions = layout.regions();
        let ip_partition = balance::ip_partitions(row_counts, geometry, balancing);
        let op_tile_parts = balance::op_tile_partitions(row_counts, geometry, balancing);
        let vblocks_sc = ip_vblocks(graph, false, profile);
        // SCS needs ≥2 PEs per tile (there are no SPM banks otherwise)
        // and the runtime never executes it on smaller tiles, so reuse
        // the SC tiling rather than computing an impossible split.
        let vblocks_scs = if geometry.pes_per_tile() >= 2 {
            ip_vblocks(graph, true, profile)
        } else {
            vblocks_sc.clone()
        };
        SharedPlan {
            profile: *profile,
            balancing,
            format,
            reorder,
            operands,
            layout,
            regions,
            ip_partition,
            op_tile_parts,
            vblocks_sc,
            vblocks_scs,
            ip_programs: std::array::from_fn(|_| OnceLock::new()),
            op_subruns: OnceLock::new(),
            verified: std::array::from_fn(|_| std::array::from_fn(|_| AtomicBool::new(false))),
        }
    }

    /// The dense-IP program for hardware slot `hw_idx`, building it via
    /// `build` exactly once per slot across all sessions. Counts one
    /// build or one hit per call on `counters` (the losing side of an
    /// init race counts as neither a build — the closure never ran —
    /// nor a stale read, so it is counted as a hit once the winner's
    /// program is visible).
    pub(crate) fn dense_program<F: FnOnce() -> Program>(
        &self,
        hw_idx: usize,
        counters: &SharedCounters,
        build: F,
    ) -> &Program {
        let mut built = false;
        let prog = self.ip_programs[hw_idx].get_or_init(|| {
            built = true;
            build()
        });
        if built {
            SharedCounters::bump(&counters.dense_program_builds);
        } else {
            SharedCounters::bump(&counters.dense_program_hits);
        }
        prog
    }

    /// The OP column sub-run bounds, derived from `csc` on first use.
    pub(crate) fn subruns(&self, csc: &CscMatrix) -> &[(u32, u32)] {
        self.op_subruns
            .get_or_init(|| crate::kernels::op::subruns(csc, &self.op_tile_parts))
    }

    /// True once `(sw_idx, hw_idx)` was verified clean on this plan.
    pub(crate) fn is_verified(&self, sw_idx: usize, hw_idx: usize) -> bool {
        self.verified[sw_idx][hw_idx].load(Ordering::Acquire)
    }

    /// Records a clean verify verdict for `(sw_idx, hw_idx)`.
    pub(crate) fn mark_verified(&self, sw_idx: usize, hw_idx: usize) {
        self.verified[sw_idx][hw_idx].store(true, Ordering::Release);
    }

    /// The permutation this plan streams under, when reordered.
    pub(crate) fn perm(&self) -> Option<&Permutation> {
        self.operands.as_ref().map(|ops| &ops.perm)
    }

    /// The COO image the plan's kernels stream: the permuted copy when
    /// reordered, the graph's arrival-order copy otherwise.
    pub(crate) fn coo<'a>(&'a self, graph: &'a SharedGraph) -> &'a CooMatrix {
        match &self.operands {
            Some(ops) => &ops.coo,
            None => graph.matrix(),
        }
    }

    /// The CSC image the plan's OP kernel merges (see
    /// [`SharedPlan::coo`]).
    pub(crate) fn csc<'a>(&'a self, graph: &'a SharedGraph) -> &'a CscMatrix {
        match &self.operands {
            Some(ops) => &ops.csc,
            None => graph.matrix_csc(),
        }
    }

    /// The bitmap image for this plan's (reorder, format) pairing.
    pub(crate) fn bitmap<'a>(&'a self, graph: &'a SharedGraph) -> &'a BitmapCsr {
        match &self.operands {
            Some(ops) => ops.bitmap(&graph.counters),
            None => graph.bitmap(),
        }
    }

    /// The BCSR image for this plan's (reorder, format) pairing.
    pub(crate) fn bcsr<'a>(&'a self, graph: &'a SharedGraph) -> &'a BcsrMatrix {
        match &self.operands {
            Some(ops) => ops.bcsr(&graph.counters),
            None => graph.bcsr(),
        }
    }
}

/// Picks the vblock width for an IP pass: the SPM capacity per tile in
/// SCS mode, or the L1 cache capacity in SC mode (vertical partitioning
/// "is not required for the SC mode but can still be beneficial",
/// §III-B).
fn ip_vblocks(graph: &SharedGraph, use_spm: bool, profile: &OpProfile) -> VBlocks {
    let ua = &graph.uarch;
    let b = graph.geometry.pes_per_tile();
    let bytes = if use_spm {
        ua.spm_bytes_per_tile(b, HwConfig::Scs.l1())
    } else {
        // SC: all B banks are cache.
        b * ua.bank_bytes
    };
    let elems = (bytes / 4 / profile.value_words).max(1);
    if elems >= graph.coo.cols() {
        VBlocks::whole(graph.coo.cols())
    } else {
        VBlocks::new(graph.coo.cols(), elems)
    }
}

/// The immutable, `Arc`-shared per-matrix state: dual-format matrix
/// copies, geometry, and the plan/program caches every [`CoSparse`]
/// session over this graph reads through. See the module docs for the
/// sharing contract.
#[derive(Debug)]
pub struct SharedGraph {
    coo: CooMatrix,
    csc: CscMatrix,
    /// CSR copy, built by the first host-backend invocation from any
    /// session (simulate-only graphs never pay for it).
    csr: OnceLock<CsrMatrix>,
    /// Hierarchical-bitmap CSR image, built by the first session whose
    /// decision picks [`FormatKind::Bitmap`].
    bitmap: OnceLock<BitmapCsr>,
    /// Blocked-CSR image, built by the first session whose decision
    /// picks [`FormatKind::Bcsr`].
    bcsr: OnceLock<BcsrMatrix>,
    /// Structural format probe feeding the decision tree, computed once
    /// per graph on first summary.
    probe: OnceLock<FormatProbe>,
    /// Locality probe feeding the reorder axis, computed once per graph
    /// on first summary (candidate permutations evaluated transiently).
    reorder_probe: OnceLock<ReorderProbe>,
    /// Reordered operand sets, one slot per [`ReorderKind::CANDIDATES`]
    /// entry, built by the first plan keyed on that reordering.
    reordered: [OnceLock<Arc<ReorderedGraph>>; 3],
    /// Monotone graph-content epoch. Static graphs stay at 0; mutation
    /// paths (future dynamic-graph support) bump it, invalidating
    /// epoch-keyed derived state such as the serve-layer result cache.
    epoch: AtomicU64,
    /// Out-degree of each frontier index in the original graph
    /// (= column counts of the operand matrix).
    degrees: Vec<u32>,
    row_counts: Vec<usize>,
    /// All-zero per-row state for the plain-SpMV golden model,
    /// allocated once per graph (it is only ever read).
    zeros: Vec<f32>,
    geometry: Geometry,
    uarch: MicroArch,
    /// Registry of built plans, keyed by (profile, balancing). Locked
    /// only when a session (re)binds its plan; a handful of entries in
    /// practice, so it is a scanned Vec rather than a map.
    plans: Mutex<Vec<Arc<SharedPlan>>>,
    counters: SharedCounters,
}

impl SharedGraph {
    /// Builds the shared state for `matrix` on a machine shape given by
    /// `geometry`/`uarch`: stores the COO and CSC copies (§III-D.2) and
    /// precomputes the degree/row-count metadata partitioning keys on.
    ///
    /// Sessions over this graph must run machines of the same geometry
    /// and microarchitecture (asserted by [`SharedGraph::session_on`]),
    /// since the shared layout, partitions and compiled programs are
    /// all derived from that shape.
    pub fn new(matrix: &CooMatrix, geometry: Geometry, uarch: MicroArch) -> Arc<Self> {
        let csc = CscMatrix::from(matrix);
        let degrees = matrix.col_counts().into_iter().map(|c| c as u32).collect();
        let row_counts = matrix.row_counts();
        Arc::new(SharedGraph {
            zeros: vec![0.0f32; matrix.rows()],
            coo: matrix.clone(),
            csc,
            csr: OnceLock::new(),
            bitmap: OnceLock::new(),
            bcsr: OnceLock::new(),
            probe: OnceLock::new(),
            reorder_probe: OnceLock::new(),
            reordered: std::array::from_fn(|_| OnceLock::new()),
            epoch: AtomicU64::new(0),
            degrees,
            row_counts,
            geometry,
            uarch,
            plans: Mutex::new(Vec::new()),
            counters: SharedCounters::default(),
        })
    }

    /// Opens a new session over this graph with a fresh machine of the
    /// graph's geometry/microarchitecture. Sessions are cheap: they
    /// hold frontier scratch and per-query state, while everything
    /// matrix-derived is read through this shared handle.
    pub fn session(self: &Arc<Self>) -> CoSparse {
        let machine = Machine::new(self.geometry, self.uarch.clone());
        CoSparse::with_shared(Arc::clone(self), machine)
    }

    /// Opens a new session running on a caller-supplied `machine`
    /// (e.g. with a pinned execution mode).
    ///
    /// # Panics
    ///
    /// Panics if the machine's geometry or microarchitecture differ
    /// from the graph's — the shared plans would be invalid for it.
    pub fn session_on(self: &Arc<Self>, machine: Machine) -> CoSparse {
        CoSparse::with_shared(Arc::clone(self), machine)
    }

    /// The operand matrix (COO copy).
    pub fn matrix(&self) -> &CooMatrix {
        &self.coo
    }

    /// The operand matrix (CSC copy).
    pub fn matrix_csc(&self) -> &CscMatrix {
        &self.csc
    }

    /// The machine geometry the shared plans are derived for.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// The microarchitecture the shared plans are derived for.
    pub fn uarch(&self) -> &MicroArch {
        &self.uarch
    }

    /// Graph-level cache counters, summed over every session that ever
    /// shared this graph (see [`SharedCacheStats`] for the counting
    /// contract).
    pub fn cache_stats(&self) -> SharedCacheStats {
        self.counters.snapshot()
    }

    /// The CSR copy, built on first use (host-backend row loops).
    pub(crate) fn csr(&self) -> &CsrMatrix {
        self.csr.get_or_init(|| CsrMatrix::from(&self.coo))
    }

    /// The hierarchical-bitmap CSR image, built on first use; the build
    /// (at most one per graph) is counted in
    /// [`SharedCacheStats::format_builds`].
    pub(crate) fn bitmap(&self) -> &BitmapCsr {
        self.bitmap.get_or_init(|| {
            SharedCounters::bump(&self.counters.format_builds);
            BitmapCsr::from(&self.coo)
        })
    }

    /// The blocked-CSR image, built on first use (shape from the fill
    /// probe); counted like [`SharedGraph::bitmap`].
    pub(crate) fn bcsr(&self) -> &BcsrMatrix {
        self.bcsr.get_or_init(|| {
            SharedCounters::bump(&self.counters.format_builds);
            BcsrMatrix::from(&self.coo)
        })
    }

    /// Whether the matrix image for `(format, reorder)` is already
    /// materialized (without forcing it). COO/CSC/CSR are the
    /// resident/base formats and count as always present once built by
    /// their own paths; under a reordering, even those are cold until
    /// the permuted operand set exists.
    pub(crate) fn format_is_materialized(&self, format: FormatKind, reorder: ReorderKind) -> bool {
        let Some(slot) = reorder.candidate_index() else {
            return match format {
                FormatKind::Bitmap => self.bitmap.get().is_some(),
                FormatKind::Bcsr => self.bcsr.get().is_some(),
                _ => true,
            };
        };
        match self.reordered[slot].get() {
            None => false,
            Some(ops) => match format {
                FormatKind::Bitmap => ops.bitmap.get().is_some(),
                FormatKind::Bcsr => ops.bcsr.get().is_some(),
                _ => true,
            },
        }
    }

    /// The structural format probe, computed once per graph in `O(nnz)`.
    pub(crate) fn format_probe(&self) -> &FormatProbe {
        self.probe.get_or_init(|| FormatProbe::of(&self.coo))
    }

    /// The locality probe, computed once per graph (the first summary
    /// pays the candidate-permutation sampling; everyone else reads the
    /// cached statistics lock-free).
    pub(crate) fn reorder_probe(&self) -> &ReorderProbe {
        self.reorder_probe
            .get_or_init(|| ReorderProbe::of(&self.coo))
    }

    /// The reordered operand set for `kind`, materialized at most once
    /// per graph and counted in [`SharedCacheStats::reorder_builds`].
    ///
    /// # Panics
    ///
    /// `kind` must not be [`ReorderKind::None`] — arrival order has no
    /// reordered operand set.
    pub(crate) fn reordered(&self, kind: ReorderKind) -> Arc<ReorderedGraph> {
        let slot = kind
            .candidate_index()
            .expect("ReorderKind::None has no reordered operands");
        Arc::clone(self.reordered[slot].get_or_init(|| {
            SharedCounters::bump(&self.counters.reorder_builds);
            Arc::new(ReorderedGraph::build(kind, &self.coo))
        }))
    }

    /// The graph-content epoch: 0 for a freshly built (static) graph,
    /// bumped by mutation paths. Epoch-keyed derived state (e.g. the
    /// serve-layer query cache) is invalidated by a bump.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Advances the graph-content epoch, returning the new value.
    /// Callers mutating graph-adjacent state (or tests simulating a
    /// dynamic update) use this to invalidate epoch-keyed caches.
    pub fn bump_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Out-degrees of the original graph's vertices.
    pub(crate) fn degrees(&self) -> &[u32] {
        &self.degrees
    }

    /// The read-only all-zero state vector (rows long).
    pub(crate) fn zeros(&self) -> &[f32] {
        &self.zeros
    }

    pub(crate) fn counters(&self) -> &SharedCounters {
        &self.counters
    }

    /// The shared plan for `(profile, balancing, format, reorder)`,
    /// building it under the registry lock on the first request.
    /// Sessions cache the returned `Arc` and only come back here when
    /// their key changes, so the steady state never touches the lock.
    pub(crate) fn plan_for(
        &self,
        profile: &OpProfile,
        balancing: Balancing,
        format: FormatKind,
        reorder: ReorderKind,
    ) -> Arc<SharedPlan> {
        let mut plans = self.plans.lock().expect("plan registry poisoned");
        if let Some(plan) = plans.iter().find(|p| {
            p.profile == *profile
                && p.balancing == balancing
                && p.format == format
                && p.reorder == reorder
        }) {
            SharedCounters::bump(&self.counters.plan_hits);
            return Arc::clone(plan);
        }
        // Built under the lock: plan construction is the expensive
        // per-matrix setup, and holding the lock guarantees concurrent
        // cold sessions build it exactly once.
        let plan = Arc::new(SharedPlan::build(self, profile, balancing, format, reorder));
        SharedCounters::bump(&self.counters.plan_builds);
        plans.push(Arc::clone(&plan));
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, nnz: usize) -> Arc<SharedGraph> {
        let m = sparse::generate::uniform(n, n, nnz, 3).unwrap();
        SharedGraph::new(&m, Geometry::new(2, 4), MicroArch::paper())
    }

    #[test]
    fn plan_registry_builds_once_per_key() {
        let g = graph(256, 2000);
        let scalar = OpProfile::scalar();
        let none = ReorderKind::None;
        let a = g.plan_for(&scalar, Balancing::NnzBalanced, FormatKind::Coo, none);
        let b = g.plan_for(&scalar, Balancing::NnzBalanced, FormatKind::Coo, none);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one plan");
        let c = g.plan_for(&scalar, Balancing::EqualRows, FormatKind::Coo, none);
        assert!(!Arc::ptr_eq(&a, &c), "different balancing, new plan");
        let d = g.plan_for(&scalar, Balancing::NnzBalanced, FormatKind::Bitmap, none);
        assert!(!Arc::ptr_eq(&a, &d), "different format, new plan");
        let cs = g.cache_stats();
        assert_eq!(cs.plan_builds, 3);
        assert_eq!(cs.plan_hits, 1);
        // The bitmap-format plan forced the image exactly once and
        // sized a packed region for it.
        assert_eq!(cs.format_builds, 1);
        assert_eq!(
            d.layout.fmt_bytes as usize,
            crate::kernels::formats::bitmap_image_bytes(g.bitmap())
        );
        assert_eq!(a.layout.fmt_bytes, 0);
    }

    #[test]
    fn format_images_build_once_and_report_materialization() {
        let g = graph(128, 900);
        let none = ReorderKind::None;
        assert!(!g.format_is_materialized(FormatKind::Bcsr, none));
        assert!(g.format_is_materialized(FormatKind::Coo, none));
        let a = g.bcsr() as *const BcsrMatrix;
        let b = g.bcsr() as *const BcsrMatrix;
        assert_eq!(a, b, "BCSR derived once per graph");
        assert!(g.format_is_materialized(FormatKind::Bcsr, none));
        assert_eq!(g.cache_stats().format_builds, 1);
        // The probe is cached too, and consistent with the image.
        let p = *g.format_probe();
        assert_eq!(p, *g.format_probe());
    }

    #[test]
    fn dense_program_slot_counts_builds_and_hits_exactly() {
        let g = graph(128, 800);
        let plan = g.plan_for(
            &OpProfile::scalar(),
            Balancing::NnzBalanced,
            FormatKind::Coo,
            ReorderKind::None,
        );
        let build = || {
            let mut b = transmuter::ProgramBuilder::new();
            b.begin(g.geometry(), HwConfig::Sc, g.uarch());
            b.finish().clone()
        };
        let first = plan.dense_program(0, g.counters(), build) as *const Program;
        let again = plan.dense_program(0, g.counters(), build) as *const Program;
        assert_eq!(first, again, "slot must hold one shared program");
        let cs = g.cache_stats();
        assert_eq!(cs.dense_program_builds, 1);
        assert_eq!(cs.dense_program_hits, 1);
    }

    #[test]
    fn sessions_share_zero_state_and_csr() {
        let g = graph(64, 400);
        assert_eq!(g.zeros().len(), 64);
        let a = g.csr() as *const CsrMatrix;
        let b = g.csr() as *const CsrMatrix;
        assert_eq!(a, b, "CSR derived once per graph");
    }

    #[test]
    fn reordered_operands_build_once_and_key_plans() {
        let g = graph(256, 2000);
        let scalar = OpProfile::scalar();
        let plain = g.plan_for(
            &scalar,
            Balancing::NnzBalanced,
            FormatKind::Coo,
            ReorderKind::None,
        );
        let rcm = g.plan_for(
            &scalar,
            Balancing::NnzBalanced,
            FormatKind::Coo,
            ReorderKind::Rcm,
        );
        assert!(!Arc::ptr_eq(&plain, &rcm), "reorder widens the plan key");
        assert_eq!(rcm.reorder, ReorderKind::Rcm);
        assert!(rcm.perm().is_some() && plain.perm().is_none());
        // A second plan on the same reordering shares the operand set.
        let rcm_bitmap = g.plan_for(
            &scalar,
            Balancing::NnzBalanced,
            FormatKind::Bitmap,
            ReorderKind::Rcm,
        );
        let cs = g.cache_stats();
        assert_eq!(cs.plan_builds, 3);
        assert_eq!(cs.reorder_builds, 1, "one operand set per ReorderKind");
        // The reordered bitmap image is distinct from the base one and
        // sized into the plan's layout.
        assert_eq!(
            rcm_bitmap.layout.fmt_bytes as usize,
            crate::kernels::formats::bitmap_image_bytes(rcm_bitmap.bitmap(&g))
        );
        // Reordered operands are a pure re-indexing: same shape and nnz.
        let coo = rcm.coo(&g);
        assert_eq!(coo.rows(), g.matrix().rows());
        assert_eq!(coo.nnz(), g.matrix().nnz());
        assert_ne!(coo.entries(), g.matrix().entries(), "rcm must permute");
    }

    #[test]
    fn materialization_is_tracked_per_reordering() {
        let g = graph(128, 900);
        assert!(!g.format_is_materialized(FormatKind::Coo, ReorderKind::DegreeSort));
        let ops = g.reordered(ReorderKind::DegreeSort);
        assert!(g.format_is_materialized(FormatKind::Coo, ReorderKind::DegreeSort));
        assert!(!g.format_is_materialized(FormatKind::Bcsr, ReorderKind::DegreeSort));
        ops.bcsr(g.counters());
        assert!(g.format_is_materialized(FormatKind::Bcsr, ReorderKind::DegreeSort));
        // The base graph's BCSR is still cold: images are per-pairing.
        assert!(!g.format_is_materialized(FormatKind::Bcsr, ReorderKind::None));
        let again = g.reordered(ReorderKind::DegreeSort);
        assert!(Arc::ptr_eq(&ops, &again));
        assert_eq!(g.cache_stats().reorder_builds, 1);
    }

    #[test]
    fn epoch_starts_at_zero_and_bumps_monotonically() {
        let g = graph(64, 400);
        assert_eq!(g.epoch(), 0);
        assert_eq!(g.bump_epoch(), 1);
        assert_eq!(g.bump_epoch(), 2);
        assert_eq!(g.epoch(), 2);
    }
}
