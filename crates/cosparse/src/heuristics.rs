//! The reconfiguration decision tree (paper Figure 2 and §III-C).
//!
//! Before every SpMV invocation CoSPARSE picks, from the input-vector
//! density and the matrix/vector footprints versus on-chip capacity:
//!
//! 1. **Software**: inner product (dense dataflow) vs outer product
//!    (sparse dataflow), using the *crossover vector density* (CVD).
//!    §III-C.1: the CVD falls from ~2% to ~0.5% as PEs per tile grow
//!    from 8 to 32, and rises slightly for sparser matrices.
//! 2. **Hardware for IP**: SCS when the matrix + vector working set
//!    exceeds on-chip cache (pinning the vector in SPM saves the
//!    evict/reload churn), SC when everything fits.
//! 3. **Hardware for OP**: PS when the per-PE sorted list outgrows the
//!    private L1 bank, PC when it fits (§III-C.3).
//! 4. **Storage format** (an extension beyond the paper): OP always
//!    merges CSC columns, but the IP stream can trade the paper's COO
//!    triplets for a hierarchical-bitmap CSR (clustered rows: ~2 words
//!    per entry instead of 4) or a blocked BCSR (block-structured rows:
//!    index and mask loads amortized over whole register blocks),
//!    driven by the [`FormatProbe`] carried in [`MatrixSummary`].
//! 5. **Reordering** (the fourth axis): a [`ReorderProbe`] samples the
//!    matrix bandwidth and segment occupancy under each candidate
//!    permutation; when one improves either statistic by more than
//!    [`Thresholds::reorder_min_gain`], the plan streams the permuted
//!    matrix image instead of the arrival order.

use crate::ops::OpProfile;
use sparse::{FormatKind, FormatProbe, ReorderKind, ReorderProbe};
use transmuter::{Geometry, HwConfig, MicroArch};

/// The software-level dataflow choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwConfig {
    /// Inner product: dense frontier, COO streaming.
    InnerProduct,
    /// Outer product: sparse frontier, CSC column merge.
    OuterProduct,
}

impl SwConfig {
    /// Short name as used in the paper ("IP"/"OP").
    pub fn name(self) -> &'static str {
        match self {
            SwConfig::InnerProduct => "IP",
            SwConfig::OuterProduct => "OP",
        }
    }
}

impl std::fmt::Display for SwConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A software + hardware configuration decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Chosen dataflow.
    pub software: SwConfig,
    /// Chosen memory configuration.
    pub hardware: HwConfig,
    /// Chosen matrix storage format (the third reconfiguration axis).
    pub format: FormatKind,
    /// Chosen matrix reordering (the fourth reconfiguration axis).
    pub reorder: ReorderKind,
    /// The crossover vector density the software choice used.
    pub cvd: f64,
}

/// The storage format a dataflow uses when no probe argues otherwise:
/// the paper's dual-resident pair — row-major COO for IP streaming, CSC
/// for OP column merge (§III-D.2).
pub fn default_format(software: SwConfig) -> FormatKind {
    match software {
        SwConfig::InnerProduct => FormatKind::Coo,
        SwConfig::OuterProduct => FormatKind::Csc,
    }
}

/// Structural summary of the operand matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixSummary {
    /// Rows of the multiplied matrix.
    pub rows: usize,
    /// Columns (frontier dimension).
    pub cols: usize,
    /// Stored nonzeros.
    pub nnz: usize,
    /// Structural format probe, when the caller has one. `None` keeps
    /// the decision tree on the paper's COO/CSC pair.
    pub probe: Option<FormatProbe>,
    /// Locality probe, when the caller has one. `None` keeps the
    /// decision tree on the arrival ordering.
    pub reorder_probe: Option<ReorderProbe>,
}

impl MatrixSummary {
    /// Summary without a format probe (the tree then never strays from
    /// the paper's COO/CSC formats).
    pub fn new(rows: usize, cols: usize, nnz: usize) -> Self {
        MatrixSummary {
            rows,
            cols,
            nnz,
            probe: None,
            reorder_probe: None,
        }
    }

    /// [`MatrixSummary::new`] carrying a [`FormatProbe`].
    pub fn with_probe(rows: usize, cols: usize, nnz: usize, probe: FormatProbe) -> Self {
        MatrixSummary {
            rows,
            cols,
            nnz,
            probe: Some(probe),
            reorder_probe: None,
        }
    }

    /// `self` additionally carrying a [`ReorderProbe`], unlocking the
    /// fourth axis of the decision tree.
    pub fn with_reorder_probe(mut self, probe: ReorderProbe) -> Self {
        self.reorder_probe = Some(probe);
        self
    }

    /// Matrix density `nnz / (rows*cols)`.
    ///
    /// The element count is formed exactly in `u128` before the single
    /// rounding to `f64` — `rows as f64 * cols as f64` would round
    /// twice, and for `rows * cols > 2^53` the double rounding can
    /// differ from the true quotient in the last bit.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz as f64 / (self.rows as u128 * self.cols as u128) as f64
        }
    }

    /// Reconstructs the frontier population from a density that itself
    /// came from `count / cols`. Rounds instead of truncating: the
    /// round-trip quotient is often a hair below the true count (e.g.
    /// `513/65643 * 65643 < 513`), and `as usize` truncation would lose
    /// the element that decides a list-fit boundary.
    pub fn frontier_count(&self, vector_density: f64) -> usize {
        (vector_density * self.cols as f64).round() as usize
    }

    /// Bytes of the streamed COO copy.
    pub fn coo_bytes(&self) -> usize {
        self.nnz * 12
    }
}

/// Calibrated thresholds for the decision tree.
///
/// The defaults reproduce the paper's published takeaways; the
/// `fig4`–`fig6` benchmark binaries re-derive them empirically on this
/// simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct Thresholds {
    /// CVD on a tile with 8 PEs (paper: ~2%).
    pub cvd_at_8_pes: f64,
    /// Matrix density at which `cvd_at_8_pes` was calibrated.
    pub cvd_reference_density: f64,
    /// Exponent of the mild sparse-matrix CVD correction.
    pub cvd_density_exponent: f64,
    /// Lower/upper clamps on the CVD.
    pub cvd_clamp: (f64, f64),
    /// Fraction of the chip's cache capacity the IP working set may
    /// occupy before SCS is preferred over SC.
    pub ip_cache_fit_fraction: f64,
    /// Minimum per-tile SPM reuse (`nnz / cols / tiles`, the §III-C.2
    /// `N·r/A` factor) for SCS to beat SC: below this, the cooperative
    /// preload reads words that are used less than ~once per tile and
    /// SC's line-granular caching wins. Halved when the dense vector
    /// overflows the chip's L2 (SC's misses then go all the way to HBM,
    /// so SPM pinning pays off sooner — the Fig 5 N=131k regime).
    pub scs_min_tile_reuse: f64,
    /// Largest PEs-per-tile for which SCS pays off on this simulator:
    /// beyond it the shared-SPM arbitration (B PEs on B/2 banks) and the
    /// halved L1 cache-bank count for the matrix stream outweigh the
    /// pinning benefit (Fig 5: every B=16 row loses).
    pub scs_max_pes_per_tile: usize,
    /// Fraction of the private L1 bank the per-PE sorted list may occupy
    /// before PS is preferred over PC.
    pub op_list_fit_fraction: f64,
    /// Minimum blocked fill ratio ([`FormatProbe::block_fill`]) for the
    /// IP stream to switch from COO to BCSR: below it the zero-filled
    /// block slots cost more value traffic than the amortized index and
    /// mask loads save.
    pub bcsr_min_fill: f64,
    /// Minimum entries per occupied 32-column segment
    /// ([`FormatProbe::seg_occupancy`]) for the IP stream to switch from
    /// COO to the hierarchical-bitmap CSR: each occupied segment pays a
    /// descriptor walk and an l0 word on top of its packed values, so
    /// near-uniform matrices (occupancy ~1-2) are cheaper as flat COO
    /// triplets; the bitmap's 4-byte value stride only wins once
    /// segments carry several entries each.
    pub bitmap_min_seg_occupancy: f64,
    /// Minimum [`ReorderProbe::gain`] — bandwidth shrinkage or segment
    /// occupancy growth, whichever is larger — for the plan to stream a
    /// permuted matrix image instead of the arrival order. Reordering
    /// pays a one-time permuted-image build and makes the plan key
    /// wider, so the bar is deliberately high: near-uniform matrices
    /// (gain ≈ 1) must stay on the arrival ordering.
    pub reorder_min_gain: f64,
}

impl Thresholds {
    /// Paper-derived defaults.
    pub fn paper() -> Self {
        Thresholds {
            cvd_at_8_pes: 0.02,
            cvd_reference_density: 2.3e-4,
            cvd_density_exponent: 0.05,
            cvd_clamp: (0.001, 0.06),
            ip_cache_fit_fraction: 1.0,
            scs_min_tile_reuse: 2.0,
            scs_max_pes_per_tile: 8,
            op_list_fit_fraction: 1.0,
            bcsr_min_fill: 0.5,
            bitmap_min_seg_occupancy: 4.0,
            reorder_min_gain: 1.5,
        }
    }

    /// The crossover vector density for a geometry and matrix density.
    ///
    /// Inversely proportional to PEs per tile (2% at 8 PEs → 0.5% at 32,
    /// §III-C.1 takeaway) with a mild boost for sparser matrices.
    pub fn cvd(&self, geometry: Geometry, matrix_density: f64) -> f64 {
        let base = self.cvd_at_8_pes * 8.0 / geometry.pes_per_tile() as f64;
        let correction = if matrix_density > 0.0 {
            (self.cvd_reference_density / matrix_density)
                .powf(self.cvd_density_exponent)
                .clamp(0.5, 2.0)
        } else {
            1.0
        };
        (base * correction).clamp(self.cvd_clamp.0, self.cvd_clamp.1)
    }
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds::paper()
    }
}

/// Runs the full decision tree of Figure 2.
///
/// ```
/// use cosparse::{decide, MatrixSummary, OpProfile, SwConfig, Thresholds};
/// use transmuter::{Geometry, MicroArch};
///
/// let m = MatrixSummary::new(1 << 17, 1 << 17, 4_000_000);
/// let d = decide(
///     m,
///     0.001, // a very sparse frontier
///     Geometry::new(4, 8),
///     &MicroArch::paper(),
///     &Thresholds::paper(),
///     &OpProfile::scalar(),
/// );
/// assert_eq!(d.software, SwConfig::OuterProduct);
/// ```
pub fn decide(
    matrix: MatrixSummary,
    vector_density: f64,
    geometry: Geometry,
    ua: &MicroArch,
    thresholds: &Thresholds,
    profile: &OpProfile,
) -> Decision {
    let frontier_nnz = matrix.frontier_count(vector_density);
    decide_tree(
        matrix,
        vector_density,
        frontier_nnz,
        geometry,
        ua,
        thresholds,
        profile,
    )
}

/// [`decide`] with the frontier population given exactly.
///
/// The runtime knows the true active count (it holds the frontier); the
/// density is only needed for the CVD comparison, so this variant avoids
/// the density→count round-trip entirely.
pub fn decide_exact(
    matrix: MatrixSummary,
    frontier_nnz: usize,
    geometry: Geometry,
    ua: &MicroArch,
    thresholds: &Thresholds,
    profile: &OpProfile,
) -> Decision {
    let vector_density = if matrix.cols == 0 {
        0.0
    } else {
        frontier_nnz as f64 / matrix.cols as f64
    };
    decide_tree(
        matrix,
        vector_density,
        frontier_nnz,
        geometry,
        ua,
        thresholds,
        profile,
    )
}

#[allow(clippy::too_many_arguments)]
fn decide_tree(
    matrix: MatrixSummary,
    vector_density: f64,
    frontier_nnz: usize,
    geometry: Geometry,
    ua: &MicroArch,
    thresholds: &Thresholds,
    profile: &OpProfile,
) -> Decision {
    let cvd = thresholds.cvd(geometry, matrix.density());
    let software = if vector_density < cvd {
        SwConfig::OuterProduct
    } else {
        SwConfig::InnerProduct
    };
    let hardware = match software {
        SwConfig::InnerProduct => {
            // Working set: streamed COO + dense vector (+ output).
            let vec_bytes =
                matrix.cols * 4 * profile.value_words + matrix.rows * 4 * profile.value_words;
            let working_set = matrix.coo_bytes() + vec_bytes;
            // Chip cache capacity in SC mode: all L1 + all L2 banks.
            let cache_bytes = geometry.total_pes() * ua.bank_bytes * 2;
            // §III-C.2: SCS pays a full-segment preload per tile, so it
            // only wins when each preloaded word is reused enough
            // (`N·r/A` uses per tile). When the vector overflows L2, SC's
            // vector misses reach HBM and the bar halves.
            let tile_reuse = if matrix.cols == 0 {
                0.0
            } else {
                matrix.nnz as f64 / matrix.cols as f64 / geometry.tiles() as f64
            };
            let l2_bytes = geometry.total_pes() * ua.bank_bytes;
            let x_bytes = matrix.cols * 4 * profile.value_words;
            let reuse_bar = if x_bytes > l2_bytes {
                thresholds.scs_min_tile_reuse / 2.0
            } else {
                thresholds.scs_min_tile_reuse
            };
            if (working_set as f64) > thresholds.ip_cache_fit_fraction * cache_bytes as f64
                && tile_reuse >= reuse_bar
                && geometry.pes_per_tile() <= thresholds.scs_max_pes_per_tile
            {
                HwConfig::Scs
            } else {
                HwConfig::Sc
            }
        }
        SwConfig::OuterProduct => {
            // Per-PE sorted list: the tile sees the whole frontier, each
            // PE takes 1/B of it, 8 bytes per node.
            let list_bytes = frontier_nnz.div_ceil(geometry.pes_per_tile()) * 8;
            if (list_bytes as f64) > thresholds.op_list_fit_fraction * ua.bank_bytes as f64 {
                HwConfig::Ps
            } else {
                HwConfig::Pc
            }
        }
    };
    // Format: OP always merges CSC columns. For IP the probe can
    // promote the stream from COO to a denser-per-entry format — BCSR
    // when the matrix blocks well, else the hierarchical bitmap when
    // entries cluster within 32-column segments.
    let format = match software {
        SwConfig::OuterProduct => FormatKind::Csc,
        SwConfig::InnerProduct => match matrix.probe {
            Some(p) if p.block_fill >= thresholds.bcsr_min_fill => FormatKind::Bcsr,
            Some(p) if p.seg_occupancy >= thresholds.bitmap_min_seg_occupancy => FormatKind::Bitmap,
            _ => FormatKind::Coo,
        },
    };
    // Reordering: only when the locality probe shows a candidate
    // permutation substantially tightening the bandwidth or packing the
    // segments — otherwise the arrival order keeps the plan key narrow.
    let reorder = match matrix.reorder_probe {
        Some(p) => {
            let (kind, gain) = p.best();
            if gain >= thresholds.reorder_min_gain {
                kind
            } else {
                ReorderKind::None
            }
        }
        None => ReorderKind::None,
    };
    Decision {
        software,
        hardware,
        format,
        reorder,
        cvd,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(n: usize, nnz: usize) -> MatrixSummary {
        MatrixSummary::new(n, n, nnz)
    }

    fn decide_default(m: MatrixSummary, vd: f64, g: Geometry) -> Decision {
        decide(
            m,
            vd,
            g,
            &MicroArch::paper(),
            &Thresholds::paper(),
            &OpProfile::scalar(),
        )
    }

    #[test]
    fn dense_vector_selects_ip() {
        let d = decide_default(summary(1 << 17, 4_000_000), 1.0, Geometry::new(4, 8));
        assert_eq!(d.software, SwConfig::InnerProduct);
    }

    #[test]
    fn sparse_vector_selects_op() {
        let d = decide_default(summary(1 << 17, 4_000_000), 0.001, Geometry::new(4, 8));
        assert_eq!(d.software, SwConfig::OuterProduct);
    }

    #[test]
    fn cvd_shrinks_with_more_pes_per_tile() {
        let t = Thresholds::paper();
        let cvd8 = t.cvd(Geometry::new(4, 8), 1e-4);
        let cvd32 = t.cvd(Geometry::new(4, 32), 1e-4);
        assert!(cvd8 > cvd32 * 3.0, "{cvd8} vs {cvd32}");
        // Paper: ~2% at 8 PEs, ~0.5% at 32 PEs.
        assert!((0.01..=0.05).contains(&cvd8));
        assert!((0.002..=0.01).contains(&cvd32));
    }

    #[test]
    fn cvd_rises_for_sparser_matrices() {
        let t = Thresholds::paper();
        let g = Geometry::new(4, 8);
        assert!(t.cvd(g, 3.6e-6) > t.cvd(g, 2.3e-4));
    }

    #[test]
    fn large_working_set_selects_scs() {
        // 4M nnz ≫ the 4x8 chip's 256 kB of cache, and the per-tile SPM
        // reuse (4M/131k/4 ≈ 7.6) clears the threshold.
        let d = decide_default(summary(1 << 17, 4_000_000), 0.5, Geometry::new(4, 8));
        assert_eq!(d.software, SwConfig::InnerProduct);
        assert_eq!(d.hardware, HwConfig::Scs);
    }

    #[test]
    fn l2_overflow_halves_the_reuse_bar() {
        // Fig 5's N=131k regime (scale 4): reuse 1.9 < 2, but the 512 kB
        // vector overflows the 4x8 chip's 128 kB L2 → SCS wins there
        // empirically (+68-89%), and the tree should pick it.
        let d = decide_default(summary(131_072, 1_000_000), 0.5, Geometry::new(4, 8));
        assert_eq!(d.hardware, HwConfig::Scs);
    }

    #[test]
    fn many_pes_per_tile_disable_scs() {
        // Same workload on 4x16: every Fig 5 B=16 row loses ~10%, so the
        // guard keeps SC regardless of reuse.
        let d = decide_default(summary(131_072, 1_000_000), 0.5, Geometry::new(4, 16));
        assert_eq!(d.hardware, HwConfig::Sc);
        let d = decide_default(summary(1 << 17, 4_000_000), 0.5, Geometry::new(4, 16));
        assert_eq!(d.hardware, HwConfig::Sc);
    }

    #[test]
    fn low_reuse_keeps_sc_even_when_cache_overflows() {
        // Reuse 4M/4M(cols)/4 ≈ 0.25: even with the vector overflowing
        // L2 the halved bar (1.0) is not met → SC.
        let d = decide_default(summary(1 << 22, 4_000_000), 0.5, Geometry::new(4, 8));
        assert_eq!(d.software, SwConfig::InnerProduct);
        assert_eq!(d.hardware, HwConfig::Sc);
    }

    #[test]
    fn tiny_working_set_selects_sc() {
        let d = decide_default(summary(256, 1000), 0.5, Geometry::new(4, 8));
        assert_eq!(d.hardware, HwConfig::Sc);
    }

    #[test]
    fn long_sorted_list_selects_ps() {
        // density 0.01 on 1M columns → ~10.5k frontier / 8 PEs → ~10 kB
        // per-PE list ≫ the 4 kB private bank.
        let g = Geometry::new(4, 8);
        let d = decide_default(summary(1 << 20, 4_000_000), 0.01, g);
        assert_eq!(d.software, SwConfig::OuterProduct);
        assert_eq!(d.hardware, HwConfig::Ps);
    }

    #[test]
    fn short_sorted_list_selects_pc() {
        let d = decide_default(summary(1 << 17, 4_000_000), 0.0001, Geometry::new(4, 8));
        assert_eq!(d.software, SwConfig::OuterProduct);
        assert_eq!(d.hardware, HwConfig::Pc);
    }

    #[test]
    fn fig9_pokec_like_iterations() {
        // SSSP on pokec (Fig 9): density <1% → OP at 16x16; 47% → IP.
        // Calibration note: the paper's tree picks SCS at the density
        // peak, but on this simulator pokec's per-tile reuse at 16 tiles
        // (~1.2 uses/word) makes the SCS preload a net loss, and the
        // empirical per-iteration best (fig9 binary) confirms SC — so
        // the reuse guard keeps SC here.
        let g = Geometry::new(16, 16);
        let m = summary(1_632_803, 30_622_564);
        let sparse_iter = decide_default(m, 0.002, g);
        assert_eq!(sparse_iter.software, SwConfig::OuterProduct);
        let dense_iter = decide_default(m, 0.47, g);
        assert_eq!(dense_iter.software, SwConfig::InnerProduct);
        assert_eq!(dense_iter.hardware, HwConfig::Sc);
    }

    #[test]
    fn decide_exact_list_fit_boundary() {
        // 8 PEs/tile, 4 kB private banks, 8 bytes/node: 4096 frontier
        // entries → exactly 512 nodes (4096 B) per PE → PC; one more
        // entry spills the list → PS.
        let g = Geometry::new(4, 8);
        let m = summary(1 << 20, 4_000_000);
        let args = (
            &MicroArch::paper(),
            &Thresholds::paper(),
            &OpProfile::scalar(),
        );
        let fits = decide_exact(m, 4096, g, args.0, args.1, args.2);
        assert_eq!(fits.software, SwConfig::OuterProduct);
        assert_eq!(fits.hardware, HwConfig::Pc);
        let spills = decide_exact(m, 4097, g, args.0, args.1, args.2);
        assert_eq!(spills.hardware, HwConfig::Ps);
    }

    #[test]
    fn density_round_trip_does_not_truncate_frontier() {
        // 513 active out of 65643 columns: 513/65643 is not exactly
        // representable, and `density * cols` lands at 512.999…
        // With one PE per tile the 513th node is exactly the one that
        // spills the 4 kB list; truncation used to reconstruct 512
        // entries → PC. Both the exact path and the rounding path must
        // say PS.
        let g = Geometry::new(4, 1);
        let m = MatrixSummary::new(65_643, 65_643, 500_000);
        let nnz = 513usize;
        let density = nnz as f64 / m.cols as f64;
        assert!(
            density * (m.cols as f64) < nnz as f64,
            "test premise: the round-trip must actually lose the last element"
        );
        let exact = decide_exact(
            m,
            nnz,
            g,
            &MicroArch::paper(),
            &Thresholds::paper(),
            &OpProfile::scalar(),
        );
        assert_eq!(exact.hardware, HwConfig::Ps);
        let via_density = decide_default(m, density, g);
        assert_eq!(via_density.hardware, HwConfig::Ps);
    }

    #[test]
    fn empty_matrix_degenerates_gracefully() {
        // A 50%-dense vector is far above any CVD → IP, and the empty
        // working set fits in cache → SC. No panics on zero shapes.
        let d = decide_default(summary(0, 0), 0.5, Geometry::new(2, 4));
        assert_eq!(d.software, SwConfig::InnerProduct);
        assert_eq!(d.hardware, HwConfig::Sc);
        assert_eq!(d.format, FormatKind::Coo);
    }

    #[test]
    fn frontier_count_rounds_instead_of_truncating() {
        // The exact hazard flagged next to `decide`: 513/65643 * 65643
        // lands a hair below 513, and truncation would reconstruct 512.
        let m = MatrixSummary::new(65_643, 65_643, 500_000);
        let density = 513.0 / 65_643.0;
        assert!(density * 65_643.0 < 513.0, "premise: round-trip loses");
        assert_eq!(m.frontier_count(density), 513);
        // And 4097/10^6, the boundary case from the original comment.
        let m = MatrixSummary::new(1 << 20, 1_000_000, 4_000_000);
        assert_eq!(m.frontier_count(4097.0 / 1_000_000.0), 4097);
    }

    #[test]
    fn density_is_single_rounded_for_huge_shapes() {
        // rows * cols overflows 2^53: the u128 product rounds once; the
        // old `rows as f64 * cols as f64` product rounded twice. Both
        // must stay finite, positive and within one ulp of the true
        // quotient.
        let m = MatrixSummary::new(94_906_267, 94_906_267, 4_000_000_000);
        let elems = 94_906_267u128 * 94_906_267u128;
        let want = 4_000_000_000f64 / elems as f64;
        assert!(m.density() > 0.0 && m.density().is_finite());
        assert_eq!(m.density(), want);
    }

    #[test]
    fn op_always_uses_csc_regardless_of_probe() {
        let probe = FormatProbe {
            seg_occupancy: 30.0,
            block_fill: 1.0,
            block_shape: (4, 4),
        };
        let m = MatrixSummary::with_probe(1 << 17, 1 << 17, 4_000_000, probe);
        let d = decide_default(m, 0.001, Geometry::new(4, 8));
        assert_eq!(d.software, SwConfig::OuterProduct);
        assert_eq!(d.format, FormatKind::Csc);
    }

    #[test]
    fn probe_steers_the_ip_format() {
        let g = Geometry::new(4, 8);
        let base = summary(1 << 17, 4_000_000);
        // No probe: the paper's COO stream.
        assert_eq!(decide_default(base, 0.5, g).format, FormatKind::Coo);
        // Blocky matrix: BCSR wins even though segments are also full.
        let blocky = MatrixSummary {
            probe: Some(FormatProbe {
                seg_occupancy: 8.0,
                block_fill: 0.8,
                block_shape: (4, 4),
            }),
            ..base
        };
        assert_eq!(decide_default(blocky, 0.5, g).format, FormatKind::Bcsr);
        // Clustered but unblockable: bitmap.
        let clustered = MatrixSummary {
            probe: Some(FormatProbe {
                seg_occupancy: 6.0,
                block_fill: 0.2,
                block_shape: (1, 1),
            }),
            ..base
        };
        assert_eq!(decide_default(clustered, 0.5, g).format, FormatKind::Bitmap);
        // Scattered: stay on COO.
        let scattered = MatrixSummary {
            probe: Some(FormatProbe {
                seg_occupancy: 1.05,
                block_fill: 0.1,
                block_shape: (1, 1),
            }),
            ..base
        };
        assert_eq!(decide_default(scattered, 0.5, g).format, FormatKind::Coo);
    }

    #[test]
    fn default_formats_are_the_papers_resident_pair() {
        assert_eq!(default_format(SwConfig::InnerProduct), FormatKind::Coo);
        assert_eq!(default_format(SwConfig::OuterProduct), FormatKind::Csc);
    }

    #[test]
    fn no_reorder_probe_keeps_arrival_order() {
        let d = decide_default(summary(1 << 17, 4_000_000), 0.5, Geometry::new(4, 8));
        assert_eq!(d.reorder, ReorderKind::None);
    }

    #[test]
    fn reorder_probe_gain_gates_the_fourth_axis() {
        let g = Geometry::new(4, 8);
        let base = summary(1 << 17, 4_000_000);
        // RCM slashing the bandwidth by 3x clears the 1.5x gate.
        let good = ReorderProbe {
            arrival_bandwidth: 30_000.0,
            arrival_occupancy: 1.2,
            bandwidth: [25_000.0, 10_000.0, 24_000.0],
            occupancy: [1.3, 1.4, 1.5],
        };
        let d = decide_default(base.with_reorder_probe(good), 0.5, g);
        assert_eq!(d.reorder, ReorderKind::Rcm);
        // Marginal improvements everywhere: stay on arrival order.
        let marginal = ReorderProbe {
            arrival_bandwidth: 30_000.0,
            arrival_occupancy: 1.2,
            bandwidth: [28_000.0, 26_000.0, 29_000.0],
            occupancy: [1.25, 1.3, 1.2],
        };
        let d = decide_default(base.with_reorder_probe(marginal), 0.5, g);
        assert_eq!(d.reorder, ReorderKind::None);
        // Occupancy growth alone can also clear the gate (the window
        // heuristic's signature win).
        let packed = ReorderProbe {
            arrival_bandwidth: 30_000.0,
            arrival_occupancy: 1.2,
            bandwidth: [30_000.0, 30_000.0, 30_000.0],
            occupancy: [1.3, 1.3, 2.4],
        };
        let d = decide_default(base.with_reorder_probe(packed), 0.5, g);
        assert_eq!(d.reorder, ReorderKind::WindowCluster);
    }

    #[test]
    fn reorder_gate_applies_to_both_dataflows() {
        let good = ReorderProbe {
            arrival_bandwidth: 30_000.0,
            arrival_occupancy: 1.2,
            bandwidth: [25_000.0, 10_000.0, 24_000.0],
            occupancy: [1.3, 1.4, 1.5],
        };
        let m = summary(1 << 17, 4_000_000).with_reorder_probe(good);
        let op = decide_default(m, 0.001, Geometry::new(4, 8));
        assert_eq!(op.software, SwConfig::OuterProduct);
        assert_eq!(op.reorder, ReorderKind::Rcm, "OP streams permuted CSC too");
    }
}
