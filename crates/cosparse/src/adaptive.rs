//! Online refinement of the reconfiguration decision (an extension
//! beyond the paper).
//!
//! The paper's thresholds come from offline calibration sweeps
//! (§III-C); they can misfire when the deployed matrix or machine
//! deviates from the calibration set. [`AdaptiveState`] keeps the
//! decision tree as a prior and refines it from the costs the runtime
//! actually observes, bucketing frontier densities on a log scale:
//!
//! * far from the crossover boundary the tree is trusted outright;
//! * near the boundary (within [`AdaptiveState::EXPLORE_BAND`]× of the
//!   CVD) both dataflows are tried once per bucket, then the observed
//!   argmin wins;
//! * the hardware sibling of the chosen dataflow (SC↔SCS, PC↔PS) is
//!   always cheap to explore, so it is probed once per bucket too;
//! * when the tree proposes an alternate storage format (bitmap or
//!   blocked — the third reconfiguration axis), the dataflow's default
//!   resident format is kept as a fallback candidate, so a probe that
//!   oversold the format gets corrected by observation;
//! * likewise on the reordering axis (the fourth): when the tree
//!   proposes a locality-aware permutation, arrival order stays in the
//!   candidate set, so an oversold reordering is corrected too.
//!
//! Iterative algorithms revisit the same density buckets many times
//! (PageRank every iteration, BFS/SSSP on the ramp up and down), so a
//! handful of probes amortizes quickly.

use crate::heuristics::{default_format, Decision, SwConfig};
use sparse::{FormatKind, ReorderKind};
use std::collections::HashMap;
use transmuter::HwConfig;

/// Log₂-scale density bucket.
fn bucket_of(density: f64) -> i32 {
    density.clamp(1e-9, 1.0).log2().floor() as i32
}

/// The hardware sibling explored alongside a choice.
fn sibling(hw: HwConfig) -> HwConfig {
    match hw {
        HwConfig::Sc => HwConfig::Scs,
        HwConfig::Scs => HwConfig::Sc,
        HwConfig::Pc => HwConfig::Ps,
        HwConfig::Ps => HwConfig::Pc,
    }
}

/// Default hardware for the *other* dataflow when probing across the
/// software boundary.
fn default_hw(sw: SwConfig) -> HwConfig {
    match sw {
        SwConfig::InnerProduct => HwConfig::Sc,
        SwConfig::OuterProduct => HwConfig::Pc,
    }
}

/// One explored configuration point: all four reconfiguration axes.
type Config = (SwConfig, HwConfig, FormatKind, ReorderKind);

#[derive(Debug, Clone, Copy, Default)]
struct Observation {
    runs: u32,
    mean_cycles: f64,
}

impl Observation {
    fn record(&mut self, cycles: u64) {
        self.runs += 1;
        // Running mean; recent iterations of an algorithm have similar
        // frontiers within a bucket, so plain averaging suffices.
        self.mean_cycles += (cycles as f64 - self.mean_cycles) / self.runs as f64;
    }
}

/// Online cost observations per density bucket and configuration.
#[derive(Debug, Clone, Default)]
pub struct AdaptiveState {
    buckets: HashMap<i32, HashMap<Config, Observation>>,
}

impl AdaptiveState {
    /// Density ratio around the CVD inside which the alternate dataflow
    /// is worth probing (the tree's uncertainty region).
    pub const EXPLORE_BAND: f64 = 8.0;

    /// Creates an empty state.
    pub fn new() -> Self {
        AdaptiveState::default()
    }

    /// Chooses a configuration for a frontier of `density`, given the
    /// decision tree's `prior` (which carries the CVD it used).
    pub fn choose(&self, density: f64, prior: Decision) -> Decision {
        let bucket = self.buckets.get(&bucket_of(density));
        let near_boundary = prior.cvd.is_finite()
            && prior.cvd > 0.0
            && (density / prior.cvd).max(prior.cvd / density.max(1e-12)) <= Self::EXPLORE_BAND;

        // Candidate set: the prior, its hardware sibling, the dataflow's
        // resident format as a fallback when the tree proposed an
        // alternate one, arrival order as a fallback when the tree
        // proposed a reordering, and — near the boundary — the other
        // dataflow with its default hardware/format and sibling.
        let mut candidates: Vec<Config> = vec![
            (prior.software, prior.hardware, prior.format, prior.reorder),
            (
                prior.software,
                sibling(prior.hardware),
                prior.format,
                prior.reorder,
            ),
        ];
        if prior.format != default_format(prior.software) {
            candidates.push((
                prior.software,
                prior.hardware,
                default_format(prior.software),
                prior.reorder,
            ));
        }
        if prior.reorder != ReorderKind::None {
            candidates.push((
                prior.software,
                prior.hardware,
                prior.format,
                ReorderKind::None,
            ));
        }
        if near_boundary {
            let other = match prior.software {
                SwConfig::InnerProduct => SwConfig::OuterProduct,
                SwConfig::OuterProduct => SwConfig::InnerProduct,
            };
            candidates.push((
                other,
                default_hw(other),
                default_format(other),
                prior.reorder,
            ));
            candidates.push((
                other,
                sibling(default_hw(other)),
                default_format(other),
                prior.reorder,
            ));
        }

        // Unexplored candidates first (in candidate order), then argmin.
        if let Some(obs) = bucket {
            for &(sw, hw, fmt, ro) in &candidates {
                if !obs.contains_key(&(sw, hw, fmt, ro)) {
                    return Decision {
                        software: sw,
                        hardware: hw,
                        format: fmt,
                        reorder: ro,
                        cvd: prior.cvd,
                    };
                }
            }
            let best = candidates
                .iter()
                .filter_map(|&c| obs.get(&c).map(|o| (c, o.mean_cycles)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite means"));
            if let Some(((sw, hw, fmt, ro), _)) = best {
                return Decision {
                    software: sw,
                    hardware: hw,
                    format: fmt,
                    reorder: ro,
                    cvd: prior.cvd,
                };
            }
        }
        prior
    }

    /// Records the observed cost of running `(sw, hw, format, reorder)`
    /// at `density`.
    pub fn record(
        &mut self,
        density: f64,
        sw: SwConfig,
        hw: HwConfig,
        format: FormatKind,
        reorder: ReorderKind,
        cycles: u64,
    ) {
        self.buckets
            .entry(bucket_of(density))
            .or_default()
            .entry((sw, hw, format, reorder))
            .or_default()
            .record(cycles);
    }

    /// Number of `(bucket, config)` cells observed so far.
    pub fn observations(&self) -> usize {
        self.buckets.values().map(|b| b.len()).sum()
    }

    /// Mean observed cycles for `(sw, hw, format, reorder)` in
    /// `density`'s bucket, if any.
    ///
    /// Exposes what [`AdaptiveState::choose`] compares, so tests and
    /// diagnostics can check that recorded costs are kernel-only (free
    /// of one-off reconfiguration/conversion charges).
    pub fn mean_cycles(
        &self,
        density: f64,
        sw: SwConfig,
        hw: HwConfig,
        format: FormatKind,
        reorder: ReorderKind,
    ) -> Option<f64> {
        self.buckets
            .get(&bucket_of(density))
            .and_then(|b| b.get(&(sw, hw, format, reorder)))
            .map(|o| o.mean_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prior(sw: SwConfig, hw: HwConfig, cvd: f64) -> Decision {
        Decision {
            software: sw,
            hardware: hw,
            format: default_format(sw),
            reorder: ReorderKind::None,
            cvd,
        }
    }

    /// Shorthand: record under the dataflow's resident format, arrival
    /// order.
    fn rec(st: &mut AdaptiveState, d: f64, sw: SwConfig, hw: HwConfig, cycles: u64) {
        st.record(d, sw, hw, default_format(sw), ReorderKind::None, cycles);
    }

    #[test]
    fn trusts_prior_with_no_data() {
        let st = AdaptiveState::new();
        let p = prior(SwConfig::InnerProduct, HwConfig::Sc, 0.01);
        assert_eq!(st.choose(0.5, p), p);
    }

    #[test]
    fn explores_sibling_then_converges() {
        let mut st = AdaptiveState::new();
        let p = prior(SwConfig::InnerProduct, HwConfig::Sc, 0.001);
        let d = 0.5; // far from boundary: only IP candidates
        rec(&mut st, d, SwConfig::InnerProduct, HwConfig::Sc, 1000);
        // Sibling unexplored → probe SCS next.
        let c = st.choose(d, p);
        assert_eq!(c.hardware, HwConfig::Scs);
        // SCS observed worse → settle on SC.
        rec(&mut st, d, SwConfig::InnerProduct, HwConfig::Scs, 2000);
        assert_eq!(st.choose(d, p).hardware, HwConfig::Sc);
        // New evidence can flip it.
        for _ in 0..8 {
            rec(&mut st, d, SwConfig::InnerProduct, HwConfig::Scs, 100);
        }
        assert_eq!(st.choose(d, p).hardware, HwConfig::Scs);
    }

    #[test]
    fn probes_other_dataflow_only_near_boundary() {
        let mut st = AdaptiveState::new();
        let d = 0.02;
        let p = prior(SwConfig::InnerProduct, HwConfig::Sc, 0.01); // within 4x
        rec(&mut st, d, SwConfig::InnerProduct, HwConfig::Sc, 1000);
        rec(&mut st, d, SwConfig::InnerProduct, HwConfig::Scs, 1200);
        let c = st.choose(d, p);
        assert_eq!(
            c.software,
            SwConfig::OuterProduct,
            "should probe OP near the CVD"
        );
        assert_eq!(c.format, FormatKind::Csc, "OP probes its resident format");

        // Far from the boundary the other dataflow is never probed.
        let mut st = AdaptiveState::new();
        let far = 0.9;
        rec(&mut st, far, SwConfig::InnerProduct, HwConfig::Sc, 1000);
        rec(&mut st, far, SwConfig::InnerProduct, HwConfig::Scs, 1200);
        let c = st.choose(far, prior(SwConfig::InnerProduct, HwConfig::Sc, 0.01));
        assert_eq!(c.software, SwConfig::InnerProduct);
    }

    #[test]
    fn overrides_a_wrong_prior_after_probing() {
        let mut st = AdaptiveState::new();
        let d = 0.015;
        let p = prior(SwConfig::InnerProduct, HwConfig::Sc, 0.02); // tree says IP
        rec(&mut st, d, SwConfig::InnerProduct, HwConfig::Sc, 10_000);
        rec(&mut st, d, SwConfig::InnerProduct, HwConfig::Scs, 11_000);
        rec(&mut st, d, SwConfig::OuterProduct, HwConfig::Pc, 800);
        rec(&mut st, d, SwConfig::OuterProduct, HwConfig::Ps, 900);
        let c = st.choose(d, p);
        assert_eq!(
            (c.software, c.hardware),
            (SwConfig::OuterProduct, HwConfig::Pc)
        );
    }

    #[test]
    fn alternate_format_prior_keeps_resident_fallback() {
        // The tree proposed bitmap; the resident COO pairing stays in
        // the candidate set and wins once observed cheaper.
        let mut st = AdaptiveState::new();
        let d = 0.5;
        let p = Decision {
            software: SwConfig::InnerProduct,
            hardware: HwConfig::Sc,
            format: FormatKind::Bitmap,
            reorder: ReorderKind::None,
            cvd: 0.001,
        };
        st.record(
            d,
            SwConfig::InnerProduct,
            HwConfig::Sc,
            FormatKind::Bitmap,
            ReorderKind::None,
            5000,
        );
        st.record(
            d,
            SwConfig::InnerProduct,
            HwConfig::Scs,
            FormatKind::Bitmap,
            ReorderKind::None,
            5500,
        );
        // Third candidate: same pairing, resident format — unexplored.
        let c = st.choose(d, p);
        assert_eq!(c.format, FormatKind::Coo);
        assert_eq!(c.hardware, HwConfig::Sc);
        st.record(
            d,
            SwConfig::InnerProduct,
            HwConfig::Sc,
            FormatKind::Coo,
            ReorderKind::None,
            1000,
        );
        let c = st.choose(d, p);
        assert_eq!(c.format, FormatKind::Coo, "observed cheaper, wins argmin");
        // And the other way round: make bitmap cheapest again.
        for _ in 0..8 {
            st.record(
                d,
                SwConfig::InnerProduct,
                HwConfig::Sc,
                FormatKind::Bitmap,
                ReorderKind::None,
                100,
            );
        }
        assert_eq!(st.choose(d, p).format, FormatKind::Bitmap);
    }

    #[test]
    fn reordered_prior_keeps_arrival_fallback() {
        // The tree proposed RCM; arrival order stays in the candidate
        // set and wins once observed cheaper.
        let mut st = AdaptiveState::new();
        let d = 0.5;
        let p = Decision {
            software: SwConfig::InnerProduct,
            hardware: HwConfig::Sc,
            format: FormatKind::Coo,
            reorder: ReorderKind::Rcm,
            cvd: 0.001,
        };
        st.record(
            d,
            SwConfig::InnerProduct,
            HwConfig::Sc,
            FormatKind::Coo,
            ReorderKind::Rcm,
            5000,
        );
        st.record(
            d,
            SwConfig::InnerProduct,
            HwConfig::Scs,
            FormatKind::Coo,
            ReorderKind::Rcm,
            5500,
        );
        // Fallback candidate: same pairing, arrival order — unexplored.
        let c = st.choose(d, p);
        assert_eq!(c.reorder, ReorderKind::None);
        assert_eq!(c.hardware, HwConfig::Sc);
        st.record(
            d,
            SwConfig::InnerProduct,
            HwConfig::Sc,
            FormatKind::Coo,
            ReorderKind::None,
            1000,
        );
        assert_eq!(st.choose(d, p).reorder, ReorderKind::None);
        // New evidence flips it back to the reordered operands.
        for _ in 0..8 {
            st.record(
                d,
                SwConfig::InnerProduct,
                HwConfig::Sc,
                FormatKind::Coo,
                ReorderKind::Rcm,
                100,
            );
        }
        assert_eq!(st.choose(d, p).reorder, ReorderKind::Rcm);
    }

    #[test]
    fn kernel_only_costs_let_a_switch_win() {
        // The sibling's kernel is cheaper (900 < 1000), but reaching it
        // cost a 200-cycle reconfiguration. The runtime records
        // kernel-only cycles, so the sibling wins; recording the
        // switch-inclusive total (1100) would wrongly keep the prior.
        let mut st = AdaptiveState::new();
        let d = 0.5;
        let p = prior(SwConfig::InnerProduct, HwConfig::Sc, 0.001);
        rec(&mut st, d, SwConfig::InnerProduct, HwConfig::Sc, 1000);
        rec(&mut st, d, SwConfig::InnerProduct, HwConfig::Scs, 900);
        assert_eq!(st.choose(d, p).hardware, HwConfig::Scs);
        assert_eq!(
            st.mean_cycles(
                d,
                SwConfig::InnerProduct,
                HwConfig::Scs,
                FormatKind::Coo,
                ReorderKind::None
            ),
            Some(900.0)
        );
    }

    #[test]
    fn buckets_are_independent() {
        let mut st = AdaptiveState::new();
        rec(&mut st, 0.5, SwConfig::InnerProduct, HwConfig::Sc, 100);
        assert_eq!(st.observations(), 1);
        rec(&mut st, 0.001, SwConfig::OuterProduct, HwConfig::Pc, 100);
        assert_eq!(st.observations(), 2);
        // Data at 0.5 does not leak into the 0.001 bucket's choice.
        let p = prior(SwConfig::OuterProduct, HwConfig::Pc, 0.02);
        let c = st.choose(0.001, p);
        assert_eq!(c.software, SwConfig::OuterProduct);
    }

    #[test]
    fn running_mean_is_stable() {
        let mut o = Observation::default();
        for c in [100u64, 200, 300] {
            o.record(c);
        }
        assert_eq!(o.runs, 3);
        assert!((o.mean_cycles - 200.0).abs() < 1e-9);
    }
}
