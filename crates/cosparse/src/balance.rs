//! Workload-balancing strategies (paper §III-B): static nnz-balanced
//! row partitioning for both dataflows, plus the LCP's dynamic
//! distribution of frontier nonzeros for the outer product.

use sparse::partition::RowPartition;
use std::ops::Range;
use transmuter::Geometry;

/// How rows are split across workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Balancing {
    /// Static nnz-balanced partitioning (the paper's scheme).
    #[default]
    NnzBalanced,
    /// Naive equal-row partitioning (Figure 7's "w/o partition"
    /// ablation).
    EqualRows,
}

/// Inner product: one row partition per PE (`tiles * pes_per_tile`
/// parts). PE `(t, p)` owns part `t * B + p`.
pub fn ip_partitions(
    row_counts: &[usize],
    geometry: Geometry,
    balancing: Balancing,
) -> RowPartition {
    match balancing {
        Balancing::NnzBalanced => RowPartition::nnz_balanced(row_counts, geometry.total_pes()),
        Balancing::EqualRows => RowPartition::equal_rows(row_counts, geometry.total_pes()),
    }
}

/// Outer product: one row partition per tile; PEs within a tile then
/// split the frontier dynamically (see [`distribute_frontier`]).
pub fn op_tile_partitions(
    row_counts: &[usize],
    geometry: Geometry,
    balancing: Balancing,
) -> RowPartition {
    match balancing {
        Balancing::NnzBalanced => RowPartition::nnz_balanced(row_counts, geometry.tiles()),
        Balancing::EqualRows => RowPartition::equal_rows(row_counts, geometry.tiles()),
    }
}

/// The LCP's dynamic distribution: splits `frontier_nnz` nonzero vector
/// entries into `pes` contiguous chunks of near-equal count, so each
/// PE's sorted-list storage is roughly the same (§III-B).
///
/// Returns `pes` ranges that tile `0..frontier_nnz`.
pub fn distribute_frontier(frontier_nnz: usize, pes: usize) -> Vec<Range<usize>> {
    assert!(pes > 0, "cannot distribute to zero PEs");
    (0..pes)
        .map(|p| (frontier_nnz * p / pes)..(frontier_nnz * (p + 1) / pes))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip_partition_count_matches_pes() {
        let counts = vec![3usize; 64];
        let g = Geometry::new(2, 4);
        let p = ip_partitions(&counts, g, Balancing::NnzBalanced);
        assert_eq!(p.len(), 8);
        assert!(p.imbalance() < 1.2);
    }

    #[test]
    fn op_partition_count_matches_tiles() {
        let counts = vec![1usize; 30];
        let g = Geometry::new(3, 8);
        let p = op_tile_partitions(&counts, g, Balancing::NnzBalanced);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn equal_rows_ignores_skew() {
        let mut counts = vec![0usize; 100];
        for c in counts.iter_mut().take(10) {
            *c = 100;
        }
        let g = Geometry::new(2, 2);
        let naive = ip_partitions(&counts, g, Balancing::EqualRows);
        let balanced = ip_partitions(&counts, g, Balancing::NnzBalanced);
        assert!(naive.imbalance() > balanced.imbalance());
    }

    #[test]
    fn frontier_chunks_tile_exactly() {
        let chunks = distribute_frontier(10, 4);
        assert_eq!(chunks.len(), 4);
        let mut covered = Vec::new();
        for c in &chunks {
            covered.extend(c.clone());
        }
        assert_eq!(covered, (0..10).collect::<Vec<_>>());
        // Near-equal: sizes differ by at most 1.
        let sizes: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn frontier_smaller_than_pes() {
        let chunks = distribute_frontier(2, 8);
        let nonempty = chunks.iter().filter(|c| !c.is_empty()).count();
        assert_eq!(nonempty, 2);
        let covered: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(covered, 2);
    }

    #[test]
    fn empty_frontier() {
        let chunks = distribute_frontier(0, 4);
        assert!(chunks.iter().all(|c| c.is_empty()));
    }
}
