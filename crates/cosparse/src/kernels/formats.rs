//! Inner-product SpMV kernels over the alternate storage formats (the
//! third reconfiguration axis): hierarchical-bitmap CSR and blocked
//! BCSR streaming.
//!
//! Both kernels keep the IP contract of [`crate::kernels::ip`] — dense
//! frontier, per-PE nnz-balanced row ranges, every vector element
//! inspected, MAC and output traffic only for active elements — but
//! stream a packed format image (the layout's `fmt` region) instead of
//! COO triplets:
//!
//! * **bitmap** — per row: one descriptor word, the row's level-1 words,
//!   one level-0 word per occupied 32-column segment, then one densely
//!   packed value word per entry. ~2 streamed words per entry against
//!   COO's 12-byte triplets, so the matrix stream touches ~3x fewer
//!   cache lines when segments are well occupied.
//! * **bcsr** — per block: one header word (column + mask), one vector
//!   load per block *column* (shared across the block's rows — the
//!   register-blocking amortization), and the `r x c` value slab as
//!   sequential words. Wins when the fill ratio keeps the slab traffic
//!   below the saved index/vector loads.
//!
//! The kernels are hardware-agnostic streams (no SPM verbs): they run
//! under any [`transmuter::HwConfig`], relying on caches for vector
//! reuse. SPM pinning remains a COO-path (SCS) specialization.

use crate::kernels::{KernelSink, OpBufSink};
use crate::layout::Layout;
use crate::ops::OpProfile;
use sparse::partition::RowPartition;
use sparse::{BcsrMatrix, BitmapCsr};
use transmuter::{Geometry, Op, ProgramBuilder, StreamSet};

/// Configuration of one format-stream invocation (the masked/dense IP
/// knobs that apply to format streaming).
#[derive(Debug, Clone, Copy)]
pub struct FmtParams<'a> {
    /// Structure layout in the simulated address space (must carry a
    /// `fmt` region sized by [`bitmap_image_bytes`]/[`bcsr_image_bytes`]).
    pub layout: &'a Layout,
    /// Per-PE row partitions (exactly `geometry.total_pes()` parts).
    pub partition: &'a RowPartition,
    /// Per-column activity mask (`None` = fully dense); same §IV-C.1
    /// semantics as the COO IP kernel.
    pub active: Option<&'a [bool]>,
    /// Per-edge cost profile of the graph op.
    pub profile: OpProfile,
}

/// Bytes of the packed bitmap image the kernel streams: level-1 words
/// (2 words each), level-0 words, packed values, and one descriptor
/// word per row.
pub fn bitmap_image_bytes(m: &BitmapCsr) -> usize {
    (m.l1().len() * 2 + m.l0().len() + m.nnz() + m.rows() + 1) * 4
}

/// Bytes of the packed BCSR image the kernel streams: block-row
/// pointers, a 2-word header per block, and the full `r x c` value slab
/// per block.
pub fn bcsr_image_bytes(m: &BcsrMatrix) -> usize {
    let (r, c) = m.block_shape();
    (m.block_row_ptr().len() + m.block_count() * (2 + r * c)) * 4
}

/// Emits the bitmap-CSR IP kernel into a lowering [`ProgramBuilder`]
/// (single-pass hot path; the caller `begin`s and `finish`es it).
///
/// # Panics
///
/// Panics if `partition.len() != geometry.total_pes()`.
pub fn build_bitmap(
    m: &BitmapCsr,
    geometry: Geometry,
    params: FmtParams<'_>,
    builder: &mut ProgramBuilder,
) {
    emit_bitmap(m, geometry, params, builder);
}

/// Compiles the bitmap-CSR IP kernel into per-PE op streams (the
/// verification/one-shot form).
///
/// # Panics
///
/// Panics if `partition.len() != geometry.total_pes()`.
pub fn bitmap_streams(
    m: &BitmapCsr,
    geometry: Geometry,
    params: FmtParams<'_>,
) -> StreamSet<'static> {
    into_streams(geometry, |sink| emit_bitmap(m, geometry, params, sink))
}

/// Emits the blocked-CSR IP kernel into a lowering [`ProgramBuilder`].
///
/// # Panics
///
/// Panics if `partition.len() != geometry.total_pes()`.
pub fn build_bcsr(
    m: &BcsrMatrix,
    geometry: Geometry,
    params: FmtParams<'_>,
    builder: &mut ProgramBuilder,
) {
    emit_bcsr(m, geometry, params, builder);
}

/// Compiles the blocked-CSR IP kernel into per-PE op streams.
///
/// # Panics
///
/// Panics if `partition.len() != geometry.total_pes()`.
pub fn bcsr_streams(
    m: &BcsrMatrix,
    geometry: Geometry,
    params: FmtParams<'_>,
) -> StreamSet<'static> {
    into_streams(geometry, |sink| emit_bcsr(m, geometry, params, sink))
}

/// Emits the one-time format materialization pass into a lowering
/// [`ProgramBuilder`]: every COO triplet is read and the packed image
/// written to the layout's `fmt` region, split evenly across PEs. The
/// runtime charges this once per graph, when a decision first lands on
/// a cold alternate format (mirroring the host side, where derived
/// structures are cached for the graph's lifetime).
pub fn build_pack(
    layout: &Layout,
    geometry: Geometry,
    nnz: usize,
    image_words: usize,
    builder: &mut ProgramBuilder,
) {
    emit_pack(layout, geometry, nnz, image_words, builder);
}

/// [`build_pack`] as per-PE op streams for the verification path.
pub fn pack_streams(
    layout: &Layout,
    geometry: Geometry,
    nnz: usize,
    image_words: usize,
) -> StreamSet<'static> {
    into_streams(geometry, |sink| {
        emit_pack(layout, geometry, nnz, image_words, sink)
    })
}

/// The shared pack emitter: PE `p` reads its slice of the triplet
/// stream and writes its slice of the image words.
fn emit_pack<K: KernelSink>(
    layout: &Layout,
    geometry: Geometry,
    nnz: usize,
    image_words: usize,
    sink: &mut K,
) {
    let pes = geometry.total_pes();
    for tile in 0..geometry.tiles() {
        for pe in 0..geometry.pes_per_tile() {
            let p = geometry.pe_id(tile, pe);
            let e_lo = nnz * p / pes;
            let e_hi = nnz * (p + 1) / pes;
            let w_lo = image_words * p / pes;
            let w_hi = image_words * (p + 1) / pes;
            sink.begin_pe(tile, pe);
            sink.reserve((e_hi - e_lo) * 2 + (w_hi - w_lo));
            for k in e_lo..e_hi {
                sink.load(layout.coo_entry(k));
                sink.compute(1);
            }
            for w in w_lo..w_hi {
                sink.store(layout.fmt_word(w));
            }
        }
    }
}

/// Runs `emit` into fresh per-PE op buffers and wraps them as a
/// [`StreamSet`].
fn into_streams(geometry: Geometry, emit: impl FnOnce(&mut OpBufSink<'_>)) -> StreamSet<'static> {
    let mut bufs: Vec<Vec<Op>> = Vec::new();
    {
        let mut sink = OpBufSink::new(geometry, &mut bufs, geometry.total_pes());
        emit(&mut sink);
    }
    let mut set = StreamSet::new(geometry);
    let mut it = bufs.into_iter();
    for tile in 0..geometry.tiles() {
        for pe in 0..geometry.pes_per_tile() {
            let ops = it.next().expect("emit fills one buffer per PE");
            set.set_pe(tile, pe, ops.into_iter());
        }
    }
    set
}

/// The one bitmap emitter both representations share.
fn emit_bitmap<K: KernelSink>(
    m: &BitmapCsr,
    geometry: Geometry,
    params: FmtParams<'_>,
    sink: &mut K,
) {
    assert_eq!(
        params.partition.len(),
        geometry.total_pes(),
        "bitmap ip needs one row partition per PE"
    );
    let vw = params.profile.value_words;
    let mac_cost = 2 + params.profile.extra_compute_per_edge;
    let spr = m.segs_per_row();
    let l1_words = m.l1().len();
    let l0_base = l1_words * 2;
    let val_base = l0_base + m.l0().len();
    let desc_base = val_base + m.nnz();
    for tile in 0..geometry.tiles() {
        for pe in 0..geometry.pes_per_tile() {
            let part = geometry.pe_id(tile, pe);
            let range = params.partition.range(part);
            sink.begin_pe(tile, pe);
            let nnz_here: usize = range.clone().map(|r| m.row_nnz(r)).sum();
            sink.reserve(range.len() * 3 + nnz_here * (2 + vw) + vw);
            for r in range {
                // Row descriptor (segment/value prefix sums).
                sink.load(params.layout.fmt_word(desc_base + r));
                // The level-1 words covering this row's segment bits.
                let bit_lo = r * spr;
                let bit_hi = (r + 1) * spr;
                for w in bit_lo / 64..bit_hi.div_ceil(64) {
                    sink.load(params.layout.fmt_word(w * 2));
                }
                // One level-0 word per occupied segment.
                let seg_base = m.row_seg_ptr()[r];
                for k in 0..m.row_segments(r).count() {
                    sink.load(params.layout.fmt_word(l0_base + seg_base + k));
                    sink.compute(1);
                }
                // Packed values, sequential; vector access per entry.
                let mut any_active = false;
                for (val_idx, (col, _)) in (m.row_ptr()[r]..).zip(m.iter_row(r)) {
                    sink.load(params.layout.fmt_word(val_base + val_idx));
                    let is_active = params.active.is_none_or(|mask| mask[col as usize]);
                    let words = if is_active { vw } else { 1 };
                    for w in 0..words {
                        sink.load(params.layout.x_elem(col as usize, w));
                    }
                    if is_active {
                        sink.compute(mac_cost);
                        any_active = true;
                    }
                }
                if any_active {
                    for w in 0..vw {
                        sink.store(params.layout.y_elem(r, w));
                    }
                }
            }
        }
    }
}

/// The one BCSR emitter both representations share. A block row is
/// processed by the partition owning its first matrix row, so every
/// block is streamed exactly once regardless of how the nnz-balanced
/// split lands relative to block boundaries.
fn emit_bcsr<K: KernelSink>(
    m: &BcsrMatrix,
    geometry: Geometry,
    params: FmtParams<'_>,
    sink: &mut K,
) {
    assert_eq!(
        params.partition.len(),
        geometry.total_pes(),
        "bcsr ip needs one row partition per PE"
    );
    let vw = params.profile.value_words;
    let mac_cost = 2 + params.profile.extra_compute_per_edge;
    let (br, bc) = m.block_shape();
    let block_rows = m.rows().div_ceil(br);
    let hdr_base = block_rows + 1;
    let val_base = hdr_base + m.block_count() * 2;
    for tile in 0..geometry.tiles() {
        for pe in 0..geometry.pes_per_tile() {
            let part = geometry.pe_id(tile, pe);
            let range = params.partition.range(part);
            sink.begin_pe(tile, pe);
            // Block rows whose first matrix row falls in this partition.
            let b_lo = range.start.div_ceil(br);
            let b_hi = range.end.div_ceil(br).min(block_rows);
            let blocks_here = if b_lo < b_hi {
                m.block_row_ptr()[b_hi] - m.block_row_ptr()[b_lo]
            } else {
                0
            };
            sink.reserve((b_hi.saturating_sub(b_lo)) * 2 + blocks_here * (2 + bc + br * bc) + vw);
            for brow in b_lo..b_hi {
                sink.load(params.layout.fmt_word(brow)); // block-row pointer
                let mut row_active = [false; 16];
                for b in m.block_row_ptr()[brow]..m.block_row_ptr()[brow + 1] {
                    sink.load(params.layout.fmt_word(hdr_base + b * 2));
                    sink.compute(1);
                    let bcol = m.block_col()[b] as usize;
                    let mask = m.mask()[b];
                    // One inspection load per block column, shared by
                    // the block's rows — the amortization BCSR buys.
                    for j in 0..bc {
                        let col = bcol * bc + j;
                        if col >= m.cols() {
                            break;
                        }
                        let col_active = params.active.is_none_or(|mk| mk[col]);
                        let col_used = (0..br).any(|i| mask >> (i * bc + j) & 1 == 1);
                        let words = if col_active && col_used { vw } else { 1 };
                        for w in 0..words {
                            sink.load(params.layout.x_elem(col, w));
                        }
                    }
                    // The value slab streams sequentially, fill included.
                    for w in 0..br * bc {
                        sink.load(params.layout.fmt_word(val_base + b * br * bc + w));
                    }
                    for (i, active) in row_active.iter_mut().take(br).enumerate() {
                        for j in 0..bc {
                            let col = bcol * bc + j;
                            if col >= m.cols() || mask >> (i * bc + j) & 1 == 0 {
                                continue;
                            }
                            if params.active.is_none_or(|mk| mk[col]) {
                                sink.compute(mac_cost);
                                *active = true;
                            }
                        }
                    }
                }
                for (i, active) in row_active.iter().take(br).enumerate() {
                    let r = brow * br + i;
                    if *active && r < m.rows() {
                        for w in 0..vw {
                            sink.store(params.layout.y_elem(r, w));
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::{ip_partitions, Balancing};
    use crate::layout::Layout;
    use sparse::CooMatrix;
    use transmuter::{HwConfig, Machine, MicroArch};

    /// A tall banded matrix: every row holds one dense 24-column run,
    /// so bitmap segments are nearly full and 4x4 blocks are dense.
    fn banded(n: usize) -> CooMatrix {
        let mut ts = Vec::new();
        for r in 0..n as u32 {
            let base = (r / 4) * 4 % (n as u32 - 24);
            for k in 0..24 {
                ts.push((r, base + k, 1.0 + k as f32));
            }
        }
        CooMatrix::from_triplets(n, n, ts).unwrap()
    }

    fn sim(coo: &CooMatrix, which: sparse::FormatKind) -> transmuter::SimReport {
        let g = Geometry::new(2, 4);
        let part = ip_partitions(&coo.row_counts(), g, Balancing::NnzBalanced);
        let mut machine = Machine::new(g, MicroArch::paper());
        machine.reconfigure(HwConfig::Sc);
        match which {
            sparse::FormatKind::Bitmap => {
                let m = BitmapCsr::from(coo);
                let l = Layout::with_format_bytes(
                    coo.rows(),
                    coo.cols(),
                    coo.nnz(),
                    g,
                    1,
                    bitmap_image_bytes(&m),
                );
                let params = FmtParams {
                    layout: &l,
                    partition: &part,
                    active: None,
                    profile: OpProfile::scalar(),
                };
                machine.run(bitmap_streams(&m, g, params)).unwrap()
            }
            sparse::FormatKind::Bcsr => {
                let m = BcsrMatrix::from(coo);
                let l = Layout::with_format_bytes(
                    coo.rows(),
                    coo.cols(),
                    coo.nnz(),
                    g,
                    1,
                    bcsr_image_bytes(&m),
                );
                let params = FmtParams {
                    layout: &l,
                    partition: &part,
                    active: None,
                    profile: OpProfile::scalar(),
                };
                machine.run(bcsr_streams(&m, g, params)).unwrap()
            }
            _ => unreachable!("test only drives the format kernels"),
        }
    }

    fn sim_coo(coo: &CooMatrix) -> transmuter::SimReport {
        use crate::kernels::ip;
        use sparse::partition::VBlocks;
        let g = Geometry::new(2, 4);
        let part = ip_partitions(&coo.row_counts(), g, Balancing::NnzBalanced);
        let l = Layout::new(coo.rows(), coo.cols(), coo.nnz(), g, 1);
        let mut machine = Machine::new(g, MicroArch::paper());
        machine.reconfigure(HwConfig::Sc);
        let vb = VBlocks::whole(coo.cols());
        let params = ip::IpParams {
            layout: &l,
            partition: &part,
            vblocks: &vb,
            use_spm: false,
            active: None,
            profile: OpProfile::scalar(),
        };
        machine.run(ip::streams(coo, g, params)).unwrap()
    }

    #[test]
    fn bitmap_touches_every_entry_and_runs() {
        let coo = banded(512);
        let r = sim(&coo, sparse::FormatKind::Bitmap);
        // ≥ one value load + one vector load per entry.
        assert!(r.stats.loads as usize >= 2 * coo.nnz());
        assert!(r.cycles > 0);
    }

    #[test]
    fn bcsr_amortizes_vector_loads_over_blocks() {
        let coo = banded(512);
        let m = BcsrMatrix::from(&coo);
        assert!(m.block_shape().0 * m.block_shape().1 > 1, "must block");
        let r = sim(&coo, sparse::FormatKind::Bcsr);
        let coo_r = sim_coo(&coo);
        // Dense 4x4 blocks: one x load serves 4 rows, so total loads
        // drop below the COO kernel's 2-per-entry floor.
        assert!(
            r.stats.loads < coo_r.stats.loads,
            "bcsr {} vs coo {}",
            r.stats.loads,
            coo_r.stats.loads
        );
    }

    #[test]
    fn banded_matrix_streams_cheaper_than_coo() {
        // The acceptance family: high segment occupancy makes the
        // bitmap matrix stream touch ~3x fewer lines than COO triplets.
        let coo = banded(1024);
        let bit = sim(&coo, sparse::FormatKind::Bitmap);
        let coo_r = sim_coo(&coo);
        assert!(
            bit.cycles < coo_r.cycles,
            "bitmap {} vs coo {}",
            bit.cycles,
            coo_r.cycles
        );
    }

    #[test]
    fn mask_reduces_format_kernel_work() {
        let coo = banded(256);
        let g = Geometry::new(2, 4);
        let part = ip_partitions(&coo.row_counts(), g, Balancing::NnzBalanced);
        let m = BitmapCsr::from(&coo);
        let l = Layout::with_format_bytes(256, 256, coo.nnz(), g, 1, bitmap_image_bytes(&m));
        let run = |active: Option<&[bool]>| {
            let mut machine = Machine::new(g, MicroArch::paper());
            machine.reconfigure(HwConfig::Sc);
            let params = FmtParams {
                layout: &l,
                partition: &part,
                active,
                profile: OpProfile::scalar(),
            };
            machine.run(bitmap_streams(&m, g, params)).unwrap()
        };
        let dense = run(None);
        let none = vec![false; 256];
        let empty = run(Some(&none));
        assert_eq!(dense.stats.loads, empty.stats.loads, "inspection loads");
        assert!(empty.stats.stores < dense.stats.stores.max(1));
        assert!(empty.stats.compute_cycles < dense.stats.compute_cycles);
    }

    #[test]
    fn empty_matrix_emits_and_runs() {
        let coo = CooMatrix::from_triplets(16, 16, vec![]).unwrap();
        for kind in [sparse::FormatKind::Bitmap, sparse::FormatKind::Bcsr] {
            let r = sim(&coo, kind);
            assert_eq!(r.stats.stores, 0);
        }
    }
}
