//! Outer-product (OP) SpMV kernel: sparse frontier, CSC column merge
//! (Figure 3, bottom).
//!
//! Each tile owns an nnz-balanced row partition; the tile's LCP
//! distributes contiguous chunks of the frontier's nonzeros to its PEs.
//! Each PE maintains a sorted list (binary heap, stored breadth-first)
//! of the head elements of its non-empty column sub-runs — in private
//! SPM under PS (spilling deep levels), in ordinary cached memory under
//! PC/SC — pops the minimum row, merges equal rows, and forwards output
//! elements to the LCP, which merges the per-PE streams and writes the
//! final sparse output to main memory.

use crate::balance::distribute_frontier;
use crate::kernels::{heap_sift, KernelSink, OpBufSink};
use crate::layout::Layout;
use crate::ops::OpProfile;
use sparse::partition::RowPartition;
use sparse::{CscMatrix, Idx};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use transmuter::{Geometry, Op, ProgramBuilder, StreamSet};

/// Configuration of one OP invocation.
#[derive(Debug, Clone, Copy)]
pub struct OpParams<'a> {
    /// Structure layout in the simulated address space.
    pub layout: &'a Layout,
    /// Per-tile row partitions (exactly `geometry.tiles()` parts).
    pub tile_parts: &'a RowPartition,
    /// Sorted active column indices (the frontier's nonzeros).
    pub frontier: &'a [Idx],
    /// True for PS (heap in private SPM, deep levels spilling); false
    /// for PC/SC (heap in cacheable memory).
    pub heap_in_spm: bool,
    /// Heap nodes that fit in one PE's SPM (PS mode).
    pub spm_node_cap: usize,
    /// Per-edge cost profile of the graph op.
    pub profile: OpProfile,
}

/// Precomputes the matrix-invariant column sub-run bounds: entry
/// `tile * cols + c` holds the global CSC entry range of column `c`
/// restricted to `tile`'s row partition.
///
/// The bounds depend only on the matrix and the tile partition — never
/// on the frontier — so the runtime caches them in its plan and every
/// subsequent OP compilation skips the per-column binary searches.
pub fn subruns(csc_t: &CscMatrix, tile_parts: &RowPartition) -> Vec<(u32, u32)> {
    let cols = csc_t.cols();
    let mut out = Vec::with_capacity(tile_parts.len() * cols);
    for tile in 0..tile_parts.len() {
        let rows = tile_parts.range(tile);
        for c in 0..cols {
            let (col_rows, _) = csc_t.col(c);
            let col_lo = csc_t.col_ptr()[c];
            let lo = col_lo + col_rows.partition_point(|&r| (r as usize) < rows.start);
            let hi = col_lo + col_rows.partition_point(|&r| (r as usize) < rows.end);
            out.push((lo as u32, hi as u32));
        }
    }
    out
}

/// Compiles the OP kernel into per-worker op buffers, indexed by global
/// worker id (PE ids first, then one LCP id per tile), reusing `out`'s
/// allocations across invocations.
///
/// The generator replays the actual merge on row indices so the op
/// streams carry the exact column/heap/output access sequence the
/// hardware would perform. `sub` must come from [`subruns`] for the
/// same matrix and tile partition.
///
/// # Panics
///
/// Panics if `tile_parts.len() != geometry.tiles()` or the frontier is
/// not strictly increasing.
pub fn compile_into(
    csc_t: &CscMatrix,
    geometry: Geometry,
    params: OpParams<'_>,
    sub: &[(u32, u32)],
    out: &mut Vec<Vec<Op>>,
) {
    let mut sink = OpBufSink::new(geometry, out, geometry.total_workers());
    emit(csc_t, geometry, params, sub, &mut sink);
}

/// Emits the OP kernel straight into a lowering [`ProgramBuilder`] — the
/// single-pass hot path, producing micro-ops and a lint verdict with no
/// intermediate op buffers. The caller must have `begin`-reset the
/// builder for the target configuration and `finish`es it afterwards.
/// `sub` must come from [`subruns`] for the same matrix and tile
/// partition.
///
/// # Panics
///
/// Panics if `tile_parts.len() != geometry.tiles()` or the frontier is
/// not strictly increasing.
pub fn build(
    csc_t: &CscMatrix,
    geometry: Geometry,
    params: OpParams<'_>,
    sub: &[(u32, u32)],
    builder: &mut ProgramBuilder,
) {
    emit(csc_t, geometry, params, sub, builder);
}

/// The one OP emitter both representations share (see the module docs of
/// [`crate::kernels`]).
fn emit<K: KernelSink>(
    csc_t: &CscMatrix,
    geometry: Geometry,
    params: OpParams<'_>,
    sub: &[(u32, u32)],
    sink: &mut K,
) {
    assert_eq!(
        params.tile_parts.len(),
        geometry.tiles(),
        "op needs one partition per tile"
    );
    debug_assert!(
        params.frontier.windows(2).all(|w| w[0] < w[1]),
        "frontier must be sorted"
    );
    let b = geometry.pes_per_tile();
    let cols = csc_t.cols();
    let vw = params.profile.value_words;
    let merge_cost = 1 + params.profile.extra_compute_per_edge;

    for tile in 0..geometry.tiles() {
        let chunks = distribute_frontier(params.frontier.len(), b);
        let mut tile_outputs: Vec<u32> = Vec::new();
        let mut lcp_elements = 0usize;

        for (pe, chunk) in chunks.into_iter().enumerate() {
            let worker = geometry.pe_id(tile, pe);
            sink.begin_pe(tile, pe);
            let heap_node = |node: usize, sink: &mut K, store: bool| {
                if params.heap_in_spm && node < params.spm_node_cap {
                    let off = (node * 8) as u32;
                    if store {
                        sink.spm_store(off);
                    } else {
                        sink.spm_load(off);
                    }
                } else {
                    let addr = params.layout.heap_node(worker, node);
                    if store {
                        sink.store(addr);
                    } else {
                        sink.load(addr);
                    }
                }
            };

            // Build phase: create the sorted list of column heads.
            // (row, cursor, end): cursor/end are global CSC entry indices.
            let mut heap: BinaryHeap<Reverse<(u32, usize, usize)>> = BinaryHeap::new();
            for k in chunk {
                let src = params.frontier[k] as usize;
                // Frontier entry (index, value) — one line-adjacent load.
                sink.load(params.layout.sv_entry(k));
                sink.compute(1);
                // Column bounds from the column-pointer array.
                sink.load(params.layout.csc_ptr(src));
                sink.compute(1);
                // Cached sub-run of the column inside this tile's row
                // partition (see [`subruns`]).
                let (lo, hi) = sub[tile * cols + src];
                let (lo, hi) = (lo as usize, hi as usize);
                if lo < hi {
                    // Load the head element and insert it: sift up.
                    sink.load(params.layout.csc_entry(lo));
                    sink.compute(1);
                    let head_row = csc_t.row_idx()[lo];
                    heap.push(Reverse((head_row, lo, hi)));
                    heap_sift(heap.len(), sink, |n, s| {
                        heap_node(n, s, false);
                        heap_node(n, s, true);
                    });
                }
            }

            // Merge phase: pop min, merge equal rows, advance columns.
            let mut out_k = 0usize;
            let mut prev_row: Option<u32> = None;
            while let Some(Reverse((row, cursor, end))) = heap.pop() {
                // Pop-and-replace root, sift down.
                heap_sift(heap.len() + 1, sink, |n, s| {
                    heap_node(n, s, false);
                    heap_node(n, s, true);
                });
                sink.compute(merge_cost);
                match prev_row {
                    Some(p) if p == row => {} // merged into the accumulator
                    _ => {
                        if prev_row.is_some() {
                            // Enqueue the completed element to the LCP
                            // (hardware mailbox: fixed-latency push, one
                            // beat per value word).
                            sink.compute(1 + vw as u32);
                            out_k += 1;
                        }
                        prev_row = Some(row);
                        // A PE pops rows in nondecreasing order, so this
                        // records each of its distinct output rows once;
                        // cross-PE duplicates are deduped below.
                        tile_outputs.push(row);
                    }
                }
                // Advance this column.
                if cursor + 1 < end {
                    sink.load(params.layout.csc_entry(cursor + 1));
                    sink.compute(1);
                    let next_row = csc_t.row_idx()[cursor + 1];
                    heap.push(Reverse((next_row, cursor + 1, end)));
                }
            }
            if prev_row.is_some() {
                sink.compute(1 + vw as u32);
                out_k += 1;
            }
            lcp_elements += out_k;
        }

        // LCP: B-way merge of the per-PE output streams, final write-back.
        tile_outputs.sort_unstable();
        tile_outputs.dedup();
        let distinct = tile_outputs.len();
        sink.begin_lcp(tile);
        sink.reserve(lcp_elements * 2 + distinct * (1 + vw));
        let way_cost = usize::BITS - b.leading_zeros(); // log2(B) compare steps
        let mut element = 0usize;
        let mut written = 0usize;
        for _ in 0..lcp_elements {
            // Dequeue from the per-PE mailbox (fixed latency) and run one
            // B-way merge step.
            sink.compute(1 + vw as u32);
            sink.compute(way_cost.max(1));
            element += 1;
            // Interleave final writes at the distinct-output rate.
            if written < distinct && element * distinct >= (written + 1) * lcp_elements.max(1) {
                let row = tile_outputs[written];
                for w in 0..vw {
                    sink.store(params.layout.y_elem(row as usize, w));
                }
                written += 1;
            }
        }
        while written < distinct {
            let row = tile_outputs[written];
            for w in 0..vw {
                sink.store(params.layout.y_elem(row as usize, w));
            }
            written += 1;
        }
    }
}

/// Compiles the OP kernel into per-PE and per-LCP op streams (one-shot
/// form; see [`subruns`]/[`compile_into`] for the plan-cached path the
/// runtime takes).
///
/// # Panics
///
/// Panics if `tile_parts.len() != geometry.tiles()` or the frontier is
/// not strictly increasing.
pub fn streams(csc_t: &CscMatrix, geometry: Geometry, params: OpParams<'_>) -> StreamSet<'static> {
    let sub = subruns(csc_t, params.tile_parts);
    let mut bufs: Vec<Vec<Op>> = Vec::new();
    compile_into(csc_t, geometry, params, &sub, &mut bufs);
    let mut set = StreamSet::new(geometry);
    let mut it = bufs.into_iter();
    for tile in 0..geometry.tiles() {
        for pe in 0..geometry.pes_per_tile() {
            let ops = it.next().expect("compile_into fills one buffer per PE");
            set.set_pe(tile, pe, ops.into_iter());
        }
    }
    for tile in 0..geometry.tiles() {
        let ops = it.next().expect("compile_into fills one buffer per LCP");
        set.set_lcp(tile, ops.into_iter());
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::{op_tile_partitions, Balancing};
    use transmuter::{HwConfig, Machine, MicroArch};

    fn setup(n: usize, nnz: usize) -> (CscMatrix, Layout, Geometry) {
        let g = Geometry::new(2, 4);
        let coo = sparse::generate::uniform(n, n, nnz, 11).unwrap();
        let csc = CscMatrix::from(&coo);
        let l = Layout::new(n, n, nnz, g, 1);
        (csc, l, g)
    }

    fn frontier(n: usize, density: f64) -> Vec<Idx> {
        sparse::generate::random_sparse_vector(n, density, 5)
            .unwrap()
            .iter()
            .map(|(i, _)| i)
            .collect()
    }

    fn run(
        csc: &CscMatrix,
        l: &Layout,
        g: Geometry,
        hw: HwConfig,
        heap_in_spm: bool,
        active: &[Idx],
    ) -> transmuter::SimReport {
        let counts = {
            // row counts of the transposed-view matrix: count row_idx.
            let mut c = vec![0usize; csc.rows()];
            for &r in csc.row_idx() {
                c[r as usize] += 1;
            }
            c
        };
        let parts = op_tile_partitions(&counts, g, Balancing::NnzBalanced);
        let mut machine = Machine::new(g, MicroArch::paper());
        machine.reconfigure(hw);
        let params = OpParams {
            layout: l,
            tile_parts: &parts,
            frontier: active,
            heap_in_spm,
            spm_node_cap: 512,
            profile: OpProfile::scalar(),
        };
        machine.run(streams(csc, g, params)).unwrap()
    }

    #[test]
    fn pc_runs_and_scales_with_density() {
        let (csc, l, g) = setup(1024, 16_000);
        let sparse_r = run(&csc, &l, g, HwConfig::Pc, false, &frontier(1024, 0.01));
        let dense_r = run(&csc, &l, g, HwConfig::Pc, false, &frontier(1024, 0.2));
        assert!(
            dense_r.cycles > sparse_r.cycles * 3,
            "denser frontier must cost more: {} vs {}",
            dense_r.cycles,
            sparse_r.cycles
        );
    }

    #[test]
    fn ps_uses_spm() {
        let (csc, l, g) = setup(1024, 16_000);
        let r = run(&csc, &l, g, HwConfig::Ps, true, &frontier(1024, 0.05));
        assert!(r.stats.spm_accesses > 0);
    }

    #[test]
    fn empty_frontier_is_near_free() {
        let (csc, l, g) = setup(1024, 16_000);
        let r = run(&csc, &l, g, HwConfig::Pc, false, &[]);
        assert!(r.cycles < 1000, "empty frontier cost {}", r.cycles);
    }

    #[test]
    fn lcp_writes_outputs() {
        let (csc, l, g) = setup(256, 4000);
        let r = run(&csc, &l, g, HwConfig::Pc, false, &frontier(256, 0.3));
        // LCP stores the final sparse output.
        assert!(r.stats.stores > 0);
    }

    #[test]
    fn op_work_skips_untouched_columns() {
        let (csc, l, g) = setup(1024, 16_000);
        let one = run(&csc, &l, g, HwConfig::Pc, false, &[3]);
        let full: Vec<Idx> = (0..1024).collect();
        let all = run(&csc, &l, g, HwConfig::Pc, false, &full);
        assert!(all.stats.loads > one.stats.loads * 50);
    }

    #[test]
    fn spilled_heap_generates_global_traffic() {
        // Tiny SPM cap forces most heap levels to spill in PS mode.
        let (csc, l, g) = setup(2048, 40_000);
        let active = frontier(2048, 0.5);
        let counts = {
            let mut c = vec![0usize; csc.rows()];
            for &r in csc.row_idx() {
                c[r as usize] += 1;
            }
            c
        };
        let parts = op_tile_partitions(&counts, g, Balancing::NnzBalanced);
        let mut machine = Machine::new(g, MicroArch::paper());
        machine.reconfigure(HwConfig::Ps);
        let tiny = OpParams {
            layout: &l,
            tile_parts: &parts,
            frontier: &active,
            heap_in_spm: true,
            spm_node_cap: 2,
            profile: OpProfile::scalar(),
        };
        let r_tiny = machine.run(streams(&csc, g, tiny)).unwrap();
        let roomy = OpParams {
            spm_node_cap: 4096,
            ..tiny
        };
        let r_roomy = machine.run(streams(&csc, g, roomy)).unwrap();
        assert!(r_tiny.stats.loads > r_roomy.stats.loads);
        assert!(r_tiny.stats.spm_accesses < r_roomy.stats.spm_accesses);
    }
}
