//! Frontier format-conversion kernels (§III-D.2).
//!
//! When the decision tree switches dataflow (IP ↔ OP), the frontier must
//! change representation: dense→sparse before an OP iteration,
//! sparse→dense before an IP one. The conversion is parallelised across
//! all PEs and its cost is charged like any other kernel. In the
//! paper's algorithms this happens only once or twice per run (BFS and
//! SSSP frontiers go sparse→dense→sparse; PR and CF never convert).

use crate::kernels::{KernelSink, OpBufSink};
use crate::layout::Layout;
use crate::ops::OpProfile;
use transmuter::{Geometry, Op, ProgramBuilder, StreamSet};

/// Direction of a frontier conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Scan the dense vector, emit `(index, value)` pairs.
    DenseToSparse,
    /// Clear the dense vector, scatter the pairs.
    SparseToDense,
}

/// Compiles a conversion of a `dim`-element frontier with `active_nnz`
/// nonzeros into per-PE streams.
///
/// Dense→sparse reads all `dim` elements and writes `active_nnz` pairs;
/// sparse→dense writes the `dim`-element background (line-granular
/// memset) and scatters `active_nnz` pairs.
pub fn streams(
    layout: &Layout,
    geometry: Geometry,
    dim: usize,
    active_nnz: usize,
    direction: Direction,
    profile: OpProfile,
) -> StreamSet<'static> {
    let mut bufs: Vec<Vec<Op>> = Vec::new();
    {
        let mut sink = OpBufSink::new(geometry, &mut bufs, geometry.total_pes());
        emit(
            layout, geometry, dim, active_nnz, direction, profile, &mut sink,
        );
    }
    let mut set = StreamSet::new(geometry);
    let mut it = bufs.into_iter();
    for tile in 0..geometry.tiles() {
        for pe in 0..geometry.pes_per_tile() {
            let ops = it.next().expect("emit fills one buffer per PE");
            set.set_pe(tile, pe, ops.into_iter());
        }
    }
    set
}

/// Emits the conversion kernel straight into a lowering
/// [`ProgramBuilder`] — the single-pass hot path. The caller must have
/// `begin`-reset the builder for the target configuration and
/// `finish`es it afterwards.
pub fn build(
    layout: &Layout,
    geometry: Geometry,
    dim: usize,
    active_nnz: usize,
    direction: Direction,
    profile: OpProfile,
    builder: &mut ProgramBuilder,
) {
    emit(
        layout, geometry, dim, active_nnz, direction, profile, builder,
    );
}

/// The one conversion emitter both representations share (see the module
/// docs of [`crate::kernels`]).
fn emit<K: KernelSink>(
    layout: &Layout,
    geometry: Geometry,
    dim: usize,
    active_nnz: usize,
    direction: Direction,
    profile: OpProfile,
    sink: &mut K,
) {
    let pes = geometry.total_pes();
    let vw = profile.value_words;
    for tile in 0..geometry.tiles() {
        for pe in 0..geometry.pes_per_tile() {
            let p = geometry.pe_id(tile, pe);
            let elems = (dim * (p + 1) / pes) - (dim * p / pes);
            let start = dim * p / pes;
            let outs = (active_nnz * (p + 1) / pes) - (active_nnz * p / pes);
            let out_start = active_nnz * p / pes;
            sink.begin_pe(tile, pe);
            sink.reserve(elems * (vw + 1) + outs * (vw + 1));
            match direction {
                Direction::DenseToSparse => {
                    for e in 0..elems {
                        sink.load(layout.x_elem(start + e, 0));
                        sink.compute(1);
                    }
                    for o in 0..outs {
                        sink.store(layout.sv_entry(out_start + o));
                    }
                }
                Direction::SparseToDense => {
                    // Line-granular memset of the background value.
                    let words = elems * vw;
                    for w in (0..words).step_by(16) {
                        sink.store(layout.x_elem(start + w / vw, w % vw));
                        sink.compute(1);
                    }
                    for o in 0..outs {
                        sink.load(layout.sv_entry(out_start + o));
                        sink.compute(1);
                        sink.store(layout.x_elem(start + o % elems.max(1), 0));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transmuter::{Machine, MicroArch};

    fn run(dim: usize, nnz: usize, dir: Direction) -> transmuter::SimReport {
        let g = Geometry::new(2, 4);
        let l = Layout::new(dim, dim, dim, g, 1);
        let mut m = Machine::new(g, MicroArch::paper());
        m.run(streams(&l, g, dim, nnz, dir, OpProfile::scalar()))
            .unwrap()
    }

    #[test]
    fn dense_to_sparse_scans_everything() {
        let r = run(4096, 40, Direction::DenseToSparse);
        assert!(r.stats.loads >= 4096);
        assert_eq!(r.stats.stores, 40);
    }

    #[test]
    fn sparse_to_dense_memsets_by_line() {
        let r = run(4096, 40, Direction::SparseToDense);
        // 4096 words / 16 per line = 256 memset stores + 40 scatters.
        assert!(r.stats.stores >= 256 + 40);
        assert_eq!(r.stats.loads, 40);
    }

    #[test]
    fn conversion_is_cheap_relative_to_spmv() {
        // "Lightweight": linear in N with line-granular traffic.
        let r = run(65_536, 600, Direction::DenseToSparse);
        assert!(r.cycles < 200_000, "conversion cost {} too high", r.cycles);
    }

    #[test]
    fn empty_frontier_conversion() {
        let r = run(1024, 0, Direction::DenseToSparse);
        assert_eq!(r.stats.stores, 0);
        assert!(r.stats.loads >= 1024);
    }
}
