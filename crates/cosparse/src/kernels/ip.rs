//! Inner-product (IP) SpMV kernel: dense frontier, row-major COO
//! streaming (Figure 3, top).
//!
//! Each PE owns one nnz-balanced row partition and streams its triplets
//! sequentially. The input vector is accessed randomly — from the shared
//! L1 SPM after a cooperative per-vblock preload (SCS) or straight from
//! the shared caches (SC). Output accumulation happens in a register and
//! is written back once per (row, vblock) run.

use crate::kernels::{KernelSink, OpBufSink};
use crate::layout::Layout;
use crate::ops::OpProfile;
use sparse::partition::{RowPartition, VBlocks};
use sparse::CooMatrix;
use transmuter::{Geometry, Op, ProgramBuilder, StreamSet};

/// Configuration of one IP invocation.
#[derive(Debug, Clone, Copy)]
pub struct IpParams<'a> {
    /// Structure layout in the simulated address space.
    pub layout: &'a Layout,
    /// Per-PE row partitions (exactly `geometry.total_pes()` parts).
    pub partition: &'a RowPartition,
    /// Vertical (column) tiling; use [`VBlocks::whole`] to disable.
    pub vblocks: &'a VBlocks,
    /// True for SCS (vector in shared SPM); false for SC (cached).
    pub use_spm: bool,
    /// Per-column activity mask (`None` = fully dense). IP must load
    /// every vector element to inspect it, but "skips computation and
    /// accesses to the output vector if the vector element is zero"
    /// (§IV-C.1) — so inactive columns cost a load and nothing else.
    pub active: Option<&'a [bool]>,
    /// Per-edge cost profile of the graph op.
    pub profile: OpProfile,
}

/// Compiles the IP kernel into one op buffer per PE (indexed by global
/// PE id).
///
/// Every PE iterates the same vblock sequence (with tile barriers
/// around SPM preloads in SCS mode), so barrier counts always match.
/// The buffers are position-independent across invocations: as long as
/// the layout, partition, vblocks, profile and activity mask are
/// unchanged, a compiled kernel can be re-run via [`replay`] without
/// regeneration — the steady-state path for iterative algorithms.
///
/// # Panics
///
/// Panics if `partition.len() != geometry.total_pes()`.
pub fn compile(coo_t: &CooMatrix, geometry: Geometry, params: IpParams<'_>) -> Vec<Vec<Op>> {
    let mut compiled = Vec::new();
    compile_into(coo_t, geometry, params, &mut compiled);
    compiled
}

/// [`compile`] into reusable per-PE buffers (indexed by global PE id),
/// the allocation-free steady-state path for frontier-dependent
/// (masked) invocations. Buffers beyond `geometry.total_pes()` are left
/// untouched.
///
/// # Panics
///
/// Panics if `partition.len() != geometry.total_pes()`.
pub fn compile_into(
    coo_t: &CooMatrix,
    geometry: Geometry,
    params: IpParams<'_>,
    out: &mut Vec<Vec<Op>>,
) {
    let mut sink = OpBufSink::new(geometry, out, geometry.total_pes());
    emit(coo_t, geometry, params, &mut sink);
}

/// Emits the IP kernel straight into a lowering [`ProgramBuilder`] — the
/// single-pass hot path, producing micro-ops and a lint verdict with no
/// intermediate op buffers. The caller must have `begin`-reset the
/// builder for the target configuration and `finish`es it afterwards.
///
/// # Panics
///
/// Panics if `partition.len() != geometry.total_pes()`.
pub fn build(
    coo_t: &CooMatrix,
    geometry: Geometry,
    params: IpParams<'_>,
    builder: &mut ProgramBuilder,
) {
    emit(coo_t, geometry, params, builder);
}

/// The one IP emitter both representations share (see the module docs of
/// [`crate::kernels`]).
fn emit<K: KernelSink>(coo_t: &CooMatrix, geometry: Geometry, params: IpParams<'_>, sink: &mut K) {
    assert_eq!(
        params.partition.len(),
        geometry.total_pes(),
        "ip needs one row partition per PE"
    );
    let vw = params.profile.value_words;
    let mac_cost = 2 + params.profile.extra_compute_per_edge;
    let b = geometry.pes_per_tile();

    for tile in 0..geometry.tiles() {
        for pe in 0..b {
            let part = geometry.pe_id(tile, pe);
            let trange = params.partition.triplet_range(coo_t, part);
            let part_start = trange.start;
            let entries = &coo_t.entries()[trange];

            sink.begin_pe(tile, pe);

            // Single-vblock SC fast path: no bucketing, no preload — the
            // triplets are already in storage order and the whole vector
            // is one "block". This is the common steady-state shape
            // (VBlocks::whole), so skipping the sort matters.
            if params.vblocks.len() <= 1 && !params.use_spm {
                sink.reserve(entries.len() * (3 + vw) + vw);
                let mut prev_row: Option<u32> = None;
                for (seq, t) in entries.iter().enumerate() {
                    let (row, col) = (t.row, t.col);
                    sink.load(params.layout.coo_entry(part_start + seq));
                    sink.compute(1);
                    let is_active = params.active.is_none_or(|mask| mask[col as usize]);
                    let words = if is_active { vw } else { 1 };
                    for w in 0..words {
                        sink.load(params.layout.x_elem(col as usize, w));
                    }
                    if is_active {
                        sink.compute(mac_cost);
                        if let Some(p) = prev_row {
                            if p != row {
                                for w in 0..vw {
                                    sink.store(params.layout.y_elem(p as usize, w));
                                }
                            }
                        }
                        prev_row = Some(row);
                    }
                }
                if let Some(p) = prev_row {
                    for w in 0..vw {
                        sink.store(params.layout.y_elem(p as usize, w));
                    }
                }
                continue;
            }

            // Bucket this PE's triplets by vblock, preserving row-major
            // order inside each bucket (this is the reordered storage
            // layout of §III-B).
            let mut bucketed: Vec<(usize, u32, u32)> = entries
                .iter()
                .map(|t| (params.vblocks.block_of(t.col as usize), t.row, t.col))
                .collect();
            bucketed.sort_by_key(|&(vb, _, _)| vb);

            sink.reserve(bucketed.len() * 5 + 16);
            let mut cursor = 0usize; // index into bucketed
            let mut seq = 0usize; // storage order within the partition
            for vb in 0..params.vblocks.len() {
                let vb_range = params.vblocks.range(vb);
                if params.use_spm {
                    // Cooperative preload: the tile's PEs stripe the
                    // vector segment into the shared SPM.
                    let words = vb_range.len() * vw;
                    let lo = words * pe / b;
                    let hi = words * (pe + 1) / b;
                    for w in lo..hi {
                        let elem = vb_range.start + w / vw;
                        sink.load(params.layout.x_elem(elem, w % vw));
                        sink.spm_store((w * 4) as u32);
                    }
                    sink.tile_barrier();
                }
                // Process this PE's entries of the vblock.
                let mut prev_row: Option<u32> = None;
                while cursor < bucketed.len() && bucketed[cursor].0 == vb {
                    let (_, row, col) = bucketed[cursor];
                    sink.load(params.layout.coo_entry(part_start + seq));
                    sink.compute(1);
                    let is_active = params.active.is_none_or(|mask| mask[col as usize]);
                    // The first vector word must always be inspected; the
                    // remaining words and the MAC only happen for active
                    // elements.
                    let words = if is_active { vw } else { 1 };
                    for w in 0..words {
                        if params.use_spm {
                            let local = (col as usize - vb_range.start) * vw + w;
                            sink.spm_load((local * 4) as u32);
                        } else {
                            sink.load(params.layout.x_elem(col as usize, w));
                        }
                    }
                    if is_active {
                        sink.compute(mac_cost);
                        if let Some(p) = prev_row {
                            if p != row {
                                for w in 0..vw {
                                    sink.store(params.layout.y_elem(p as usize, w));
                                }
                            }
                        }
                        prev_row = Some(row);
                    }
                    cursor += 1;
                    seq += 1;
                }
                if let Some(p) = prev_row {
                    for w in 0..vw {
                        sink.store(params.layout.y_elem(p as usize, w));
                    }
                }
                if params.use_spm {
                    // Drain barrier: nobody overwrites the SPM while a
                    // sibling PE is still reading this vblock's segment.
                    sink.tile_barrier();
                }
            }
        }
    }
}

/// Wraps [`compile`]d per-PE buffers as a runnable [`StreamSet`].
///
/// The streams borrow the buffers as slices, so a replay costs neither
/// op regeneration nor per-op virtual dispatch.
///
/// # Panics
///
/// Panics if `compiled.len() != geometry.total_pes()`.
pub fn replay(compiled: &[Vec<Op>], geometry: Geometry) -> StreamSet<'_> {
    assert_eq!(
        compiled.len(),
        geometry.total_pes(),
        "one compiled buffer per PE"
    );
    let mut set = StreamSet::new(geometry);
    for tile in 0..geometry.tiles() {
        for pe in 0..geometry.pes_per_tile() {
            set.set_pe_ops(tile, pe, &compiled[geometry.pe_id(tile, pe)]);
        }
    }
    set
}

/// Compiles the IP kernel into per-PE op streams (one-shot form; see
/// [`compile`]/[`replay`] for the cached steady-state path).
///
/// # Panics
///
/// Panics if `partition.len() != geometry.total_pes()`.
pub fn streams(coo_t: &CooMatrix, geometry: Geometry, params: IpParams<'_>) -> StreamSet<'static> {
    let compiled = compile(coo_t, geometry, params);
    let mut set = StreamSet::new(geometry);
    let mut it = compiled.into_iter();
    for tile in 0..geometry.tiles() {
        for pe in 0..geometry.pes_per_tile() {
            let ops = it.next().expect("compile returns one buffer per PE");
            set.set_pe(tile, pe, ops.into_iter());
        }
    }
    set
}

/// Total ops a dense-frontier IP pass will issue, cheap estimate used by
/// tests and budgeting (not a timing model).
pub fn op_count_estimate(nnz: usize, profile: &OpProfile) -> usize {
    nnz * (3 + profile.value_words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::{ip_partitions, Balancing};
    use transmuter::{HwConfig, Machine, MicroArch};

    fn setup(n: usize, nnz: usize) -> (CooMatrix, Layout, Geometry) {
        let g = Geometry::new(2, 4);
        let m = sparse::generate::uniform(n, n, nnz, 42).unwrap();
        let l = Layout::new(n, n, nnz, g, 1);
        (m, l, g)
    }

    fn run(
        m: &CooMatrix,
        l: &Layout,
        g: Geometry,
        hw: HwConfig,
        use_spm: bool,
        vblocks: VBlocks,
    ) -> transmuter::SimReport {
        let part = ip_partitions(&m.row_counts(), g, Balancing::NnzBalanced);
        let mut machine = Machine::new(g, MicroArch::paper());
        machine.reconfigure(hw);
        let params = IpParams {
            layout: l,
            partition: &part,
            vblocks: &vblocks,
            use_spm,
            active: None,
            profile: OpProfile::scalar(),
        };
        machine.run(streams(m, g, params)).unwrap()
    }

    #[test]
    fn sc_runs_and_touches_all_nnz() {
        let (m, l, g) = setup(512, 4000);
        let r = run(&m, &l, g, HwConfig::Sc, false, VBlocks::whole(512));
        // One matrix load per entry at least.
        assert!(r.stats.loads as usize >= m.nnz());
        assert!(r.cycles > 0);
        assert_eq!(r.stats.spm_accesses, 0);
    }

    #[test]
    fn scs_uses_spm_for_vector() {
        let (m, l, g) = setup(512, 4000);
        let spm_words = 2 * 4096 / 4; // SCS on 2x4: 2 SPM banks per tile
        let r = run(&m, &l, g, HwConfig::Scs, true, VBlocks::new(512, spm_words));
        assert!(
            r.stats.spm_accesses as usize > m.nnz(),
            "vector reads + preload stores"
        );
        assert!(r.stats.barrier_stall_cycles < r.cycles * 8);
    }

    #[test]
    fn empty_partitions_still_synchronize() {
        // A matrix whose nonzeros all live in one row: most PEs get
        // empty partitions but must still match barriers in SCS mode.
        let g = Geometry::new(2, 4);
        let m = CooMatrix::from_triplets(64, 64, (0..64u32).map(|c| (0u32, c, 1.0f32)).collect())
            .unwrap();
        let l = Layout::new(64, 64, 64, g, 1);
        let r = run(&m, &l, g, HwConfig::Scs, true, VBlocks::new(64, 32));
        assert!(r.cycles > 0);
    }

    #[test]
    fn vblocking_changes_access_order_not_count() {
        let (m, l, g) = setup(256, 3000);
        let whole = run(&m, &l, g, HwConfig::Sc, false, VBlocks::whole(256));
        let tiled = run(&m, &l, g, HwConfig::Sc, false, VBlocks::new(256, 64));
        assert_eq!(whole.stats.loads, tiled.stats.loads);
    }

    #[test]
    fn larger_matrices_take_longer() {
        let g = Geometry::new(2, 4);
        let small = {
            let m = sparse::generate::uniform(256, 256, 2000, 1).unwrap();
            let l = Layout::new(256, 256, 2000, g, 1);
            run(&m, &l, g, HwConfig::Sc, false, VBlocks::whole(256)).cycles
        };
        let large = {
            let m = sparse::generate::uniform(256, 256, 20_000, 1).unwrap();
            let l = Layout::new(256, 256, 20_000, g, 1);
            run(&m, &l, g, HwConfig::Sc, false, VBlocks::whole(256)).cycles
        };
        assert!(large > small * 5, "large {large} vs small {small}");
    }

    #[test]
    fn value_words_multiply_vector_traffic() {
        let (m, l, g) = setup(256, 2000);
        let part = ip_partitions(&m.row_counts(), g, Balancing::NnzBalanced);
        let vb = VBlocks::whole(256);
        let mut machine = Machine::new(g, MicroArch::paper());
        let wide_layout = Layout::new(256, 256, 2000, g, 4);
        let scalar = machine
            .run(streams(
                &m,
                g,
                IpParams {
                    layout: &l,
                    partition: &part,
                    vblocks: &vb,
                    use_spm: false,
                    active: None,
                    profile: OpProfile::scalar(),
                },
            ))
            .unwrap();
        let wide_profile = OpProfile {
            value_words: 4,
            extra_compute_per_edge: 4,
            vector_op_compute: 0,
        };
        let wide = machine
            .run(streams(
                &m,
                g,
                IpParams {
                    layout: &wide_layout,
                    partition: &part,
                    vblocks: &vb,
                    use_spm: false,
                    active: None,
                    profile: wide_profile,
                },
            ))
            .unwrap();
        assert!(wide.stats.loads > scalar.stats.loads * 2);
    }

    #[test]
    fn op_count_estimate_orders() {
        assert!(op_count_estimate(100, &OpProfile::scalar()) >= 300);
    }
}

#[cfg(test)]
mod mask_tests {
    use super::*;
    use crate::balance::{ip_partitions, Balancing};
    use sparse::partition::VBlocks;
    use transmuter::{HwConfig, Machine, MicroArch};

    /// §IV-C.1: zero vector elements skip the MAC and output accesses,
    /// so a sparser active mask must strictly reduce IP's work.
    #[test]
    fn sparse_mask_reduces_ip_cost() {
        let g = Geometry::new(2, 4);
        let n = 2048;
        let m = sparse::generate::uniform(n, n, 30_000, 9).unwrap();
        let l = Layout::new(n, n, 30_000, g, 1);
        let part = ip_partitions(&m.row_counts(), g, Balancing::NnzBalanced);
        let vb = VBlocks::whole(n);
        let run = |active: Option<&[bool]>| {
            let mut machine = Machine::new(g, MicroArch::paper());
            machine.reconfigure(HwConfig::Sc);
            let params = IpParams {
                layout: &l,
                partition: &part,
                vblocks: &vb,
                use_spm: false,
                active,
                profile: OpProfile::scalar(),
            };
            machine.run(streams(&m, g, params)).unwrap()
        };
        let dense = run(None);
        let mask = vec![false; n]; // nothing active
        let empty = run(Some(&mask));
        let mut half_mask = vec![false; n];
        for (i, slot) in half_mask.iter_mut().enumerate() {
            *slot = i % 2 == 0;
        }
        let half = run(Some(&half_mask));
        // Every element is still inspected (scalar values: one matrix
        // load + one vector load per entry regardless of the mask)...
        assert_eq!(dense.stats.loads, empty.stats.loads);
        // ...but stores and MACs shrink with the active set.
        assert!(empty.stats.stores < half.stats.stores);
        assert!(half.stats.stores < dense.stats.stores);
        assert!(empty.stats.compute_cycles < half.stats.compute_cycles);
        assert!(half.stats.compute_cycles < dense.stats.compute_cycles);
        assert!(empty.cycles < dense.cycles);
    }
}
