//! Op-stream generators: compile an SpMV workload into per-worker
//! emission for the simulator.
//!
//! Two dataflows, matching §III-A of the paper:
//!
//! * [`ip`] — inner product: dense frontier, row-major COO streaming,
//!   vector pinned in shared SPM (SCS) or cached (SC), vblock tiling.
//! * [`op`] — outer product: sparse frontier, CSC column merge through a
//!   per-PE heap held in private SPM (PS) or cache (PC/SC), results
//!   forwarded to the tile's LCP.
//!
//! Each kernel has **one** generic emitter, parameterised over a
//! [`KernelSink`]. The hot path plugs in a lowering
//! [`transmuter::ProgramBuilder`] and gets a verified
//! [`transmuter::Program`] in a single pass; the verification and
//! differential-testing oracle plugs in [`OpBufSink`] and gets the
//! legacy per-worker [`transmuter::Op`] buffers. Because both
//! representations come out of the same emitter body, they cannot
//! drift.

pub mod convert;
pub mod formats;
pub mod ip;
pub mod op;

use transmuter::{Addr, Geometry, Op, ProgramBuilder};

/// Emission target of the kernel compilers.
///
/// A kernel opens one worker stream at a time (`begin_pe` /
/// `begin_lcp`) and appends that worker's ops through the verbs; a
/// worker whose stream is opened but receives no ops still participates
/// in barriers and congruence, exactly like an empty op buffer.
pub trait KernelSink {
    /// Starts (or restarts) PE `(tile, pe)`'s stream; subsequent verbs
    /// apply to it until the next `begin_*`.
    fn begin_pe(&mut self, tile: usize, pe: usize);
    /// Starts (or restarts) tile `tile`'s LCP stream.
    fn begin_lcp(&mut self, tile: usize);
    /// Capacity hint for ops about to be emitted.
    fn reserve(&mut self, additional: usize);
    /// Busies the current worker for `cycles`.
    fn compute(&mut self, cycles: u32);
    /// Global-memory load of `addr`.
    fn load(&mut self, addr: Addr);
    /// Global-memory store to `addr`.
    fn store(&mut self, addr: Addr);
    /// Scratchpad load of byte offset `offset`.
    fn spm_load(&mut self, offset: u32);
    /// Scratchpad store to byte offset `offset`.
    fn spm_store(&mut self, offset: u32);
    /// Tile barrier (PEs of one tile).
    fn tile_barrier(&mut self);
    /// Global barrier (epoch boundary).
    fn global_barrier(&mut self);
}

/// The hot path: ops lower to micro-ops on append, and the lint verdict
/// comes out of `finish()` — no intermediate [`Op`] stream exists.
impl KernelSink for ProgramBuilder {
    #[inline]
    fn begin_pe(&mut self, tile: usize, pe: usize) {
        ProgramBuilder::begin_pe(self, tile, pe);
    }
    #[inline]
    fn begin_lcp(&mut self, tile: usize) {
        ProgramBuilder::begin_lcp(self, tile);
    }
    #[inline]
    fn reserve(&mut self, additional: usize) {
        ProgramBuilder::reserve(self, additional);
    }
    #[inline]
    fn compute(&mut self, cycles: u32) {
        ProgramBuilder::compute(self, cycles);
    }
    #[inline]
    fn load(&mut self, addr: Addr) {
        ProgramBuilder::load(self, addr);
    }
    #[inline]
    fn store(&mut self, addr: Addr) {
        ProgramBuilder::store(self, addr);
    }
    #[inline]
    fn spm_load(&mut self, offset: u32) {
        ProgramBuilder::spm_load(self, offset);
    }
    #[inline]
    fn spm_store(&mut self, offset: u32) {
        ProgramBuilder::spm_store(self, offset);
    }
    #[inline]
    fn tile_barrier(&mut self) {
        ProgramBuilder::tile_barrier(self);
    }
    #[inline]
    fn global_barrier(&mut self) {
        ProgramBuilder::global_barrier(self);
    }
}

/// Legacy sink: materializes per-worker [`Op`] buffers indexed by
/// global worker id, reusing the caller's allocations. This is the
/// representation the stream verifier (`verify::run_checked`, trace
/// capture, race detection) consumes, and the oracle the differential
/// suites compare the builder path against.
#[derive(Debug)]
pub struct OpBufSink<'a> {
    geom: Geometry,
    bufs: &'a mut Vec<Vec<Op>>,
    cur: usize,
}

impl<'a> OpBufSink<'a> {
    /// Wraps `bufs`, growing it to at least `workers` buffers; buffers
    /// beyond that (and buffers never begun) are left untouched.
    pub fn new(geom: Geometry, bufs: &'a mut Vec<Vec<Op>>, workers: usize) -> Self {
        if bufs.len() < workers {
            bufs.resize_with(workers, Vec::new);
        }
        OpBufSink {
            geom,
            bufs,
            cur: usize::MAX,
        }
    }
}

impl KernelSink for OpBufSink<'_> {
    fn begin_pe(&mut self, tile: usize, pe: usize) {
        self.cur = self.geom.pe_id(tile, pe);
        self.bufs[self.cur].clear();
    }
    fn begin_lcp(&mut self, tile: usize) {
        self.cur = self.geom.lcp_id(tile);
        self.bufs[self.cur].clear();
    }
    #[inline]
    fn reserve(&mut self, additional: usize) {
        self.bufs[self.cur].reserve(additional);
    }
    #[inline]
    fn compute(&mut self, cycles: u32) {
        self.bufs[self.cur].push(Op::Compute(cycles));
    }
    #[inline]
    fn load(&mut self, addr: Addr) {
        self.bufs[self.cur].push(Op::Load(addr));
    }
    #[inline]
    fn store(&mut self, addr: Addr) {
        self.bufs[self.cur].push(Op::Store(addr));
    }
    #[inline]
    fn spm_load(&mut self, offset: u32) {
        self.bufs[self.cur].push(Op::SpmLoad(offset));
    }
    #[inline]
    fn spm_store(&mut self, offset: u32) {
        self.bufs[self.cur].push(Op::SpmStore(offset));
    }
    #[inline]
    fn tile_barrier(&mut self) {
        self.bufs[self.cur].push(Op::TileBarrier);
    }
    #[inline]
    fn global_barrier(&mut self) {
        self.bufs[self.cur].push(Op::GlobalBarrier);
    }
}

/// Emits the access pattern of one sift (up or down) through a binary
/// heap of current size `len`: one node visit per level, each a
/// read-modify-write of the node storage.
///
/// `node_ops(level_node_index, sink)` maps the touched node index to
/// ops; levels touch nodes `0, 1, 3, 7, ...` (the canonical
/// root-to-leaf path), so with the heap stored breadth-first the
/// shallow levels stay in fast storage and deep levels spill — exactly
/// the paper's "the tree nature of heap ensures that the majority of
/// comparisons and swaps still happen in the SPM" (§III-A).
pub(crate) fn heap_sift<K: KernelSink>(
    len: usize,
    sink: &mut K,
    mut node_ops: impl FnMut(usize, &mut K),
) {
    let levels = (usize::BITS - len.max(1).leading_zeros()) as usize;
    for l in 0..levels.max(1) {
        let node = (1usize << l) - 1;
        node_ops(node, sink);
        sink.compute(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sift_into(len: usize, mut node_ops: impl FnMut(usize, &mut OpBufSink<'_>)) -> Vec<Op> {
        let g = Geometry::new(1, 1);
        let mut bufs: Vec<Vec<Op>> = Vec::new();
        let mut sink = OpBufSink::new(g, &mut bufs, 1);
        sink.begin_pe(0, 0);
        heap_sift(len, &mut sink, &mut node_ops);
        bufs.swap_remove(0)
    }

    #[test]
    fn sift_depth_grows_logarithmically() {
        let count = |len: usize| sift_into(len, |_, s| s.compute(1)).len();
        assert_eq!(count(1), 2); // one level: node op + compare
        assert!(count(8) > count(2));
        assert!(count(1024) >= 10 * 2);
        assert!(count(0) >= 2, "empty heap still charges one step");
    }

    #[test]
    fn sift_touches_root_to_leaf_path() {
        let mut nodes = Vec::new();
        let _ = sift_into(7, |n, _| nodes.push(n));
        assert_eq!(nodes, vec![0, 1, 3]);
    }
}
