//! Op-stream generators: compile an SpMV workload into per-worker
//! [`transmuter::Op`] streams for the simulator.
//!
//! Two dataflows, matching §III-A of the paper:
//!
//! * [`ip`] — inner product: dense frontier, row-major COO streaming,
//!   vector pinned in shared SPM (SCS) or cached (SC), vblock tiling.
//! * [`op`] — outer product: sparse frontier, CSC column merge through a
//!   per-PE heap held in private SPM (PS) or cache (PC/SC), results
//!   forwarded to the tile's LCP.

pub mod convert;
pub mod ip;
pub mod op;

use transmuter::Op;

/// Emits the access pattern of one sift (up or down) through a binary
/// heap of current size `len`: one node visit per level, each a
/// read-modify-write of the node storage.
///
/// `node_addr(level_node_index)` maps the touched node index to ops;
/// levels touch nodes `0, 1, 3, 7, ...` (the canonical root-to-leaf
/// path), so with the heap stored breadth-first the shallow levels stay
/// in fast storage and deep levels spill — exactly the paper's
/// "the tree nature of heap ensures that the majority of comparisons
/// and swaps still happen in the SPM" (§III-A).
pub(crate) fn heap_sift_ops(
    len: usize,
    ops: &mut Vec<Op>,
    mut node_ops: impl FnMut(usize, &mut Vec<Op>),
) {
    let levels = (usize::BITS - len.max(1).leading_zeros()) as usize;
    for l in 0..levels.max(1) {
        let node = (1usize << l) - 1;
        node_ops(node, ops);
        ops.push(Op::Compute(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sift_depth_grows_logarithmically() {
        let count = |len: usize| {
            let mut v = Vec::new();
            heap_sift_ops(len, &mut v, |_, ops| ops.push(Op::Compute(1)));
            v.len()
        };
        assert_eq!(count(1), 2); // one level: node op + compare
        assert!(count(8) > count(2));
        assert!(count(1024) >= 10 * 2);
        assert!(count(0) >= 2, "empty heap still charges one step");
    }

    #[test]
    fn sift_touches_root_to_leaf_path() {
        let mut nodes = Vec::new();
        let mut v = Vec::new();
        heap_sift_ops(7, &mut v, |n, _| nodes.push(n));
        assert_eq!(nodes, vec![0, 1, 3]);
    }
}
