//! Native host execution backend.
//!
//! Evaluates the same IP/OP dataflows the kernels lower for the
//! simulator *directly against host memory*: per-partition parallel row
//! loops over the [`Plan`](crate::CoSparse)'s nnz-balanced row
//! partitioning, with [`GraphOp::matrix_op`] / [`GraphOp::reduce`] /
//! [`GraphOp::vector_op`] / [`GraphOp::is_update`] inlined in the inner
//! loop. No [`transmuter::Machine`] is anywhere in the path — this is
//! how the framework serves *real* SpMV answers at memory bandwidth
//! while the trace-driven simulator stays the cycle model and
//! differential oracle (see [`ExecBackend::Differential`]).
//!
//! Both paths reduce each destination's contributions in ascending
//! source order — exactly the order the golden model
//! ([`crate::ops::apply`]) uses — so host results are **bit-identical**
//! to the functional results the simulate path returns, float
//! reductions included. The differential backend asserts this on every
//! invocation.

use crate::heuristics::SwConfig;
use crate::ops::{GraphOp, Update};
use sparse::partition::RowPartition;
use sparse::{BcsrMatrix, BitmapCsr, CscMatrix, CsrMatrix, Idx};

/// Which execution backend a [`crate::CoSparse`] runtime answers with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecBackend {
    /// The trace-driven cycle simulator (the default): results are
    /// computed by the golden model, timing by the simulated machine.
    #[default]
    Simulate,
    /// Native host execution: the same dataflow evaluated directly
    /// against host memory, orders of magnitude faster, no simulated
    /// timing (reports carry wall-clock seconds and zero cycles).
    Host,
    /// Runs **both** backends and asserts their results are bit-equal,
    /// making the simulate path the oracle for the host path. Returns
    /// the simulate outcome (cycles intact).
    ///
    /// # Panics
    ///
    /// Any invocation panics if the two backends disagree.
    Differential,
}

/// How many host worker threads to use for `parts` partitions: one per
/// partition, capped by the host's parallelism; 1 when the host has a
/// single CPU (the scoped-thread fan-out is pure overhead there).
fn worker_count(parts: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(parts)
        .max(1)
}

/// The matrix structure the inner-product host path walks — the host
/// side of the storage-format reconfiguration axis. All three walk each
/// destination row's entries in ascending source order, so they are
/// interchangeable bit-for-bit; they differ only in how the row is
/// materialized in host memory.
#[derive(Debug, Clone, Copy)]
pub enum HostOperand<'a> {
    /// Compressed sparse row (the default row loop).
    Csr(&'a CsrMatrix),
    /// Hierarchical-bitmap CSR: rows decoded segment by segment.
    Bitmap(&'a BitmapCsr),
    /// Blocked CSR: rows gathered from `r x c` blocks, mask-gated so
    /// fill never contributes.
    Bcsr(&'a BcsrMatrix),
}

impl HostOperand<'_> {
    /// Number of columns of the operand matrix.
    fn cols(&self) -> usize {
        match self {
            HostOperand::Csr(m) => m.cols(),
            HostOperand::Bitmap(m) => m.cols(),
            HostOperand::Bcsr(m) => m.cols(),
        }
    }
}

/// Per-step operands of one host SpMV: the sorted active `(source,
/// frontier value)` pairs, the full per-vertex state, and the original
/// graph's out-degrees — the same triple [`crate::ops::apply`] takes.
#[derive(Debug, Clone, Copy)]
pub struct StepInputs<'a, V> {
    /// Sorted active `(source, frontier value)` pairs.
    pub active: &'a [(Idx, V)],
    /// Per-vertex state vector.
    pub state: &'a [V],
    /// Out-degree of each source in the original graph.
    pub degrees: &'a [u32],
}

/// One host SpMV step under the generalized [`GraphOp`] semiring,
/// dispatched by dataflow: the inner-product path walks rows of the
/// decided-format `operand` ([`HostOperand`]), the outer-product path
/// walks the active columns (CSC). Both return the updates that passed
/// [`GraphOp::is_update`], sorted by destination — bit-identical to
/// [`crate::ops::apply`] on the same inputs.
///
/// `partition` is the plan's per-worker row partitioning; each
/// partition's rows are evaluated independently (on parallel host
/// threads when the host has more than one CPU).
///
/// # Panics
///
/// Panics if an active index or a matrix index is out of bounds of
/// `state`/`degrees`.
pub fn execute<O: GraphOp>(
    op: &O,
    software: SwConfig,
    operand: HostOperand<'_>,
    csc: &CscMatrix,
    inputs: StepInputs<'_, O::Value>,
    partition: &RowPartition,
) -> Vec<Update<O::Value>> {
    execute_with(
        op,
        software,
        operand,
        csc,
        inputs,
        partition,
        worker_count(partition.len()),
    )
}

/// [`execute`] with an explicit host worker-thread count instead of the
/// host's available parallelism — `1` forces the sequential partition
/// walk, `≥2` forces the scoped-thread fan-out even on a single-CPU
/// host. Results are bit-identical for any count: each partition fills
/// its own output slot regardless of which thread runs it.
#[allow(clippy::too_many_arguments)]
pub fn execute_with<O: GraphOp>(
    op: &O,
    software: SwConfig,
    operand: HostOperand<'_>,
    csc: &CscMatrix,
    inputs: StepInputs<'_, O::Value>,
    partition: &RowPartition,
    workers: usize,
) -> Vec<Update<O::Value>> {
    match software {
        SwConfig::InnerProduct => dense_rows(op, operand, inputs, partition, workers),
        SwConfig::OuterProduct => sparse_columns(op, csc, inputs, partition, workers),
    }
}

/// Runs `work(part_index, out)` for every partition on `workers`
/// threads, filling one output vector per partition, and concatenates
/// them in partition order. Partitions are contiguous ascending row
/// ranges, so the concatenation is sorted by destination by
/// construction.
fn fan_out<V, F>(parts: usize, workers: usize, work: F) -> Vec<Update<V>>
where
    V: Send,
    F: Fn(usize, &mut Vec<Update<V>>) + Sync,
{
    let mut outs: Vec<Vec<Update<V>>> = (0..parts).map(|_| Vec::new()).collect();
    let workers = workers.min(parts).max(1);
    if workers <= 1 {
        for (p, out) in outs.iter_mut().enumerate() {
            work(p, out);
        }
    } else {
        // Contiguous chunks of partitions per worker; each thread owns a
        // disjoint slice of the output table, so no synchronization is
        // needed beyond the scope join.
        let chunk = parts.div_ceil(workers);
        std::thread::scope(|s| {
            for (t, outs_chunk) in outs.chunks_mut(chunk).enumerate() {
                let work = &work;
                s.spawn(move || {
                    for (i, out) in outs_chunk.iter_mut().enumerate() {
                        work(t * chunk + i, out);
                    }
                });
            }
        });
    }
    let total = outs.iter().map(Vec::len).sum();
    let mut updates = Vec::with_capacity(total);
    for mut o in outs {
        updates.append(&mut o);
    }
    updates
}

/// Inner-product (dense) path: per-partition row loops over the operand
/// matrix in whichever storage format was decided. The frontier is
/// scattered into a dense value/mask pair once, then every row reduces
/// its active entries in ascending column (= source) order — the same
/// per-destination reduce order as the golden model's active-major walk
/// over sorted actives, whichever format materializes the row.
fn dense_rows<O: GraphOp>(
    op: &O,
    operand: HostOperand<'_>,
    inputs: StepInputs<'_, O::Value>,
    partition: &RowPartition,
    workers: usize,
) -> Vec<Update<O::Value>> {
    let StepInputs {
        active,
        state,
        degrees,
    } = inputs;
    if active.is_empty() {
        return Vec::new();
    }
    // Scatter the frontier. The fill value is arbitrary (any copy of a
    // real value); slots whose mask bit is false are never read.
    let mut fvals = vec![active[0].1; operand.cols()];
    let mut mask = vec![false; operand.cols()];
    for &(src, v) in active {
        fvals[src as usize] = v;
        mask[src as usize] = true;
    }
    fan_out(partition.len(), workers, |p, out| {
        for dst in partition.range(p) {
            let mut acc: Option<O::Value> = None;
            {
                // One reduce step per stored entry, shared by the three
                // row walks below — the walks differ only in where the
                // (column, weight) pairs come from.
                let mut visit = |si: usize, w: f32| {
                    if mask[si] {
                        let contrib = op.matrix_op(w, fvals[si], state[dst], degrees[si]);
                        acc = Some(match acc.take() {
                            Some(a) => op.reduce(a, contrib),
                            None => contrib,
                        });
                    }
                };
                match operand {
                    HostOperand::Csr(csr) => {
                        let (srcs, weights) = csr.row(dst);
                        for (s, w) in srcs.iter().zip(weights) {
                            visit(*s as usize, *w);
                        }
                    }
                    HostOperand::Bitmap(m) => {
                        for (col, w) in m.iter_row(dst) {
                            visit(col as usize, w);
                        }
                    }
                    HostOperand::Bcsr(m) => {
                        let (br, bc) = m.block_shape();
                        let brow = dst / br;
                        let i = dst % br;
                        // Blocks are ascending by block column, so the
                        // masked cells of local row `i` come out in
                        // ascending source order.
                        for b in m.block_row_ptr()[brow]..m.block_row_ptr()[brow + 1] {
                            let base_col = m.block_col()[b] as usize * bc;
                            let bmask = m.mask()[b];
                            for j in 0..bc {
                                if bmask >> (i * bc + j) & 1 == 1 {
                                    visit(base_col + j, m.values()[b * br * bc + i * bc + j]);
                                }
                            }
                        }
                    }
                }
            }
            if let Some(reduced) = acc {
                let old = state[dst];
                let new = op.vector_op(reduced, old);
                if op.is_update(new, old) {
                    out.push((dst as Idx, new));
                }
            }
        }
    })
}

/// Outer-product (sparse-frontier) path: each partition walks the
/// active columns of the CSC operand matrix restricted (by binary
/// search) to its own row range, accumulating into a per-partition
/// dense scratch with a touched list — O(active · log nnz + touched
/// edges) per partition, independent of the matrix row count. The
/// outer loop over sorted actives gives every destination its
/// contributions in ascending source order, matching the golden model.
fn sparse_columns<O: GraphOp>(
    op: &O,
    csc: &CscMatrix,
    inputs: StepInputs<'_, O::Value>,
    partition: &RowPartition,
    workers: usize,
) -> Vec<Update<O::Value>> {
    let StepInputs {
        active,
        state,
        degrees,
    } = inputs;
    if active.is_empty() {
        return Vec::new();
    }
    fan_out(partition.len(), workers, |p, out| {
        let range = partition.range(p);
        let base = range.start;
        let mut acc: Vec<Option<O::Value>> = vec![None; range.len()];
        let mut touched: Vec<Idx> = Vec::new();
        for &(src, fval) in active {
            let deg = degrees[src as usize];
            let (dsts, weights) = csc.col(src as usize);
            let lo = dsts.partition_point(|&d| (d as usize) < range.start);
            let hi = lo + dsts[lo..].partition_point(|&d| (d as usize) < range.end);
            for (d, w) in dsts[lo..hi].iter().zip(&weights[lo..hi]) {
                let di = *d as usize - base;
                let contrib = op.matrix_op(*w, fval, state[*d as usize], deg);
                acc[di] = Some(match acc[di] {
                    Some(a) => op.reduce(a, contrib),
                    None => {
                        touched.push(*d);
                        contrib
                    }
                });
            }
        }
        touched.sort_unstable();
        for d in touched {
            let reduced = acc[d as usize - base].expect("touched slots hold a value");
            let old = state[d as usize];
            let new = op.vector_op(reduced, old);
            if op.is_update(new, old) {
                out.push((d, new));
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{apply, SpmvOp};

    fn setup(n: usize, nnz: usize, seed: u64) -> (CsrMatrix, CscMatrix, Vec<u32>) {
        let m = sparse::generate::uniform(n, n, nnz, seed).unwrap();
        let degrees = m.col_counts().into_iter().map(|c| c as u32).collect();
        (CsrMatrix::from(&m), CscMatrix::from(&m), degrees)
    }

    #[test]
    fn both_paths_match_golden_model() {
        let n = 300;
        let (csr, csc, degrees) = setup(n, 4000, 17);
        let parts = RowPartition::nnz_balanced_csr(&csr, 8);
        let state = vec![0.0f32; n];
        for active_n in [1usize, 7, 75, 300] {
            let active: Vec<(Idx, f32)> = (0..active_n)
                .map(|i| ((i * n / active_n) as Idx, 1.0 + i as f32))
                .collect();
            let want = apply(&SpmvOp, &csc, &active, &state, &degrees);
            let inputs = StepInputs {
                active: &active,
                state: &state,
                degrees: &degrees,
            };
            for sw in [SwConfig::InnerProduct, SwConfig::OuterProduct] {
                let got = execute(&SpmvOp, sw, HostOperand::Csr(&csr), &csc, inputs, &parts);
                assert_eq!(got.len(), want.len(), "{sw:?} x {active_n} actives");
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.0, w.0);
                    assert_eq!(g.1.to_bits(), w.1.to_bits(), "bit-exact at dst {}", g.0);
                }
            }
        }
    }

    #[test]
    fn empty_frontier_yields_nothing() {
        let (csr, csc, degrees) = setup(64, 500, 3);
        let parts = RowPartition::nnz_balanced_csr(&csr, 4);
        let state = vec![0.0f32; 64];
        let inputs = StepInputs {
            active: &[],
            state: &state,
            degrees: &degrees,
        };
        for sw in [SwConfig::InnerProduct, SwConfig::OuterProduct] {
            assert!(execute(&SpmvOp, sw, HostOperand::Csr(&csr), &csc, inputs, &parts).is_empty());
        }
    }

    #[test]
    fn min_reduce_op_matches_golden_model() {
        #[derive(Debug)]
        struct MinPlus;
        impl GraphOp for MinPlus {
            type Value = f32;
            fn matrix_op(&self, w: f32, src: f32, _dst: f32, _deg: u32) -> f32 {
                src + w
            }
            fn reduce(&self, a: f32, b: f32) -> f32 {
                a.min(b)
            }
            fn is_update(&self, new: f32, old: f32) -> bool {
                new < old
            }
        }
        let (csr, csc, degrees) = setup(200, 2500, 29);
        let parts = RowPartition::nnz_balanced_csr(&csr, 8);
        let state = vec![f32::INFINITY; 200];
        let active: Vec<(Idx, f32)> = vec![(0, 0.0), (13, 2.5), (101, 1.0)];
        let want = apply(&MinPlus, &csc, &active, &state, &degrees);
        let inputs = StepInputs {
            active: &active,
            state: &state,
            degrees: &degrees,
        };
        for sw in [SwConfig::InnerProduct, SwConfig::OuterProduct] {
            let got = execute(&MinPlus, sw, HostOperand::Csr(&csr), &csc, inputs, &parts);
            assert_eq!(got, want, "{sw:?}");
        }
    }

    /// Every inner-product operand format walks rows in ascending
    /// source order, so all three must be bit-identical to the golden
    /// model — including a clustered matrix where bitmap segments and
    /// BCSR blocks are non-trivial, and partitions that split blocks.
    #[test]
    fn format_operands_are_bit_identical_to_golden() {
        use sparse::CooMatrix;
        // A banded matrix (dense 2x2-blockable runs) plus scattered
        // uniform entries merged in, so both structured and degenerate
        // blocks occur.
        let n = 257; // odd: the last BCSR block row is ragged
        let mut ts = Vec::new();
        for r in 0..n as u32 {
            let base = (r / 2) * 2 % (n as u32 - 8);
            for k in 0..8 {
                ts.push((r, base + k, 0.5 + (r + k) as f32 * 0.25));
            }
        }
        let coo = CooMatrix::from_triplets(n, n, ts).unwrap();
        let csc = CscMatrix::from(&coo);
        let csr = CsrMatrix::from(&coo);
        let bitmap = BitmapCsr::from(&coo);
        let bcsr = BcsrMatrix::from(&coo);
        assert!(bcsr.block_shape().0 * bcsr.block_shape().1 > 1, "blocked");
        let degrees: Vec<u32> = coo.col_counts().into_iter().map(|c| c as u32).collect();
        let parts = RowPartition::nnz_balanced_csr(&csr, 8);
        let state = vec![0.0f32; n];
        for active_n in [1usize, 19, n] {
            let active: Vec<(Idx, f32)> = (0..active_n)
                .map(|i| ((i * n / active_n) as Idx, 1.0 + i as f32 * 0.125))
                .collect();
            let want = apply(&SpmvOp, &csc, &active, &state, &degrees);
            let inputs = StepInputs {
                active: &active,
                state: &state,
                degrees: &degrees,
            };
            for (name, operand) in [
                ("csr", HostOperand::Csr(&csr)),
                ("bitmap", HostOperand::Bitmap(&bitmap)),
                ("bcsr", HostOperand::Bcsr(&bcsr)),
            ] {
                for workers in [1usize, 4] {
                    let got = execute_with(
                        &SpmvOp,
                        SwConfig::InnerProduct,
                        operand,
                        &csc,
                        inputs,
                        &parts,
                        workers,
                    );
                    assert_eq!(got.len(), want.len(), "{name} x {active_n} actives");
                    for (g, w) in got.iter().zip(&want) {
                        assert_eq!(g.0, w.0, "{name}");
                        assert_eq!(g.1.to_bits(), w.1.to_bits(), "{name} bit-exact at {}", g.0);
                    }
                }
            }
        }
    }

    /// The ROADMAP flagged the scoped-thread fan-out as never having
    /// run with >1 CPU (single-CPU container ⇒ `worker_count` folds to
    /// the sequential walk). Force the threaded path over a genuine
    /// multi-partition split and assert it is bit-identical to the
    /// sequential walk and to the golden model — for both dataflows,
    /// an f32 min-reduce included, at several worker counts.
    #[test]
    fn forced_fan_out_is_bit_identical_to_sequential() {
        #[derive(Debug)]
        struct MinPlus;
        impl GraphOp for MinPlus {
            type Value = f32;
            fn matrix_op(&self, w: f32, src: f32, _dst: f32, _deg: u32) -> f32 {
                src + w
            }
            fn reduce(&self, a: f32, b: f32) -> f32 {
                a.min(b)
            }
            fn is_update(&self, new: f32, old: f32) -> bool {
                new < old
            }
        }
        let n = 600;
        let (csr, csc, degrees) = setup(n, 9000, 41);
        let parts = RowPartition::nnz_balanced_csr(&csr, 8);
        assert!(parts.len() >= 4, "split must be multi-partition");
        let zero_state = vec![0.0f32; n];
        let inf_state = vec![f32::INFINITY; n];
        for active_n in [3usize, 80, 600] {
            let active: Vec<(Idx, f32)> = (0..active_n)
                .map(|i| ((i * n / active_n) as Idx, 0.5 + i as f32))
                .collect();
            for sw in [SwConfig::InnerProduct, SwConfig::OuterProduct] {
                let spmv_inputs = StepInputs {
                    active: &active,
                    state: &zero_state,
                    degrees: &degrees,
                };
                let minplus_inputs = StepInputs {
                    active: &active,
                    state: &inf_state,
                    degrees: &degrees,
                };
                let seq = execute_with(
                    &SpmvOp,
                    sw,
                    HostOperand::Csr(&csr),
                    &csc,
                    spmv_inputs,
                    &parts,
                    1,
                );
                let seq_min = execute_with(
                    &MinPlus,
                    sw,
                    HostOperand::Csr(&csr),
                    &csc,
                    minplus_inputs,
                    &parts,
                    1,
                );
                let golden = apply(&SpmvOp, &csc, &active, &zero_state, &degrees);
                for workers in [2usize, 4, 8] {
                    let par = execute_with(
                        &SpmvOp,
                        sw,
                        HostOperand::Csr(&csr),
                        &csc,
                        spmv_inputs,
                        &parts,
                        workers,
                    );
                    assert_eq!(par.len(), seq.len(), "{sw:?} w={workers}");
                    for ((pd, pv), (sd, sv)) in par.iter().zip(&seq) {
                        assert_eq!(pd, sd);
                        assert_eq!(pv.to_bits(), sv.to_bits(), "dst {pd}, {sw:?} w={workers}");
                    }
                    assert_eq!(par, golden, "{sw:?} w={workers} vs golden model");
                    let par_min = execute_with(
                        &MinPlus,
                        sw,
                        HostOperand::Csr(&csr),
                        &csc,
                        minplus_inputs,
                        &parts,
                        workers,
                    );
                    assert_eq!(par_min, seq_min, "min-reduce {sw:?} w={workers}");
                }
            }
        }
    }
}
