//! Runtime integration of the [`transmuter::verify`] layer: every
//! kernel invocation is statically linted against the active hardware
//! configuration and the [`crate::Layout`]'s address map, then run
//! under tracing, and the trace is checked for data races.
//!
//! Verification is opt-in (see [`crate::CoSparse::set_verify`]) because
//! it materializes the lazy op streams and records a full trace — fine
//! for tests and kernel development, too heavy for large sweeps.

use transmuter::verify::{self, Diagnostic, ProgramSet, Race, RegionMap};
use transmuter::{Machine, SimError, SimReport, TraceConfig};

/// Accumulated findings across the checked runs of one runtime.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Warning-severity lint findings (error findings abort the run via
    /// [`SimError::Rejected`] instead of landing here).
    pub warnings: Vec<Diagnostic>,
    /// Data races detected in the recorded traces.
    pub races: Vec<Race>,
    /// Number of kernel invocations checked.
    pub runs: usize,
    /// True if any trace hit the event cap, in which case race
    /// detection may have missed conflicts (never invented them).
    pub truncated: bool,
}

impl VerifyReport {
    /// True if no race was detected and no trace was truncated.
    pub fn is_clean(&self) -> bool {
        self.races.is_empty() && !self.truncated
    }
}

/// Event cap for verification traces. Sized for the synthetic matrices
/// verification sweeps use; `VerifyReport::truncated` reports overflow.
const VERIFY_MAX_EVENTS: usize = 4 << 20;

/// Materializes `streams`, lints them against `machine`'s current
/// configuration and `regions`, runs them under tracing, and folds the
/// race-detector findings into `report`.
///
/// A free function (not a `CoSparse` method) so the runtime can borrow
/// its machine mutably while the streams borrow its matrices.
///
/// # Errors
///
/// [`SimError::Rejected`] when the linter finds error-severity
/// diagnostics, or any error the run itself produces.
pub fn run_checked(
    machine: &mut Machine,
    streams: transmuter::StreamSet<'_>,
    regions: &RegionMap,
    report: &mut VerifyReport,
) -> Result<SimReport, SimError> {
    let programs = ProgramSet::materialize(streams);
    machine.set_trace(Some(TraceConfig {
        workers: None,
        max_events: VERIFY_MAX_EVENTS,
    }));
    let result = machine.run_verified(&programs, Some(regions));
    let capture = machine.take_trace_capture();
    machine.set_trace(None);
    let sim = result?;

    let diagnostics = verify::lint(&programs, machine.config(), machine.uarch(), Some(regions));
    report.warnings.extend(diagnostics);
    report.truncated |= capture.truncated;
    report.races.extend(verify::detect_races(
        &capture.events,
        machine.geometry(),
        machine.config(),
        machine.uarch(),
    ));
    report.runs += 1;
    Ok(sim)
}
