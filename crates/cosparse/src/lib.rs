//! The CoSPARSE runtime — the DAC 2021 paper's contribution: a software
//! and hardware reconfigurable SpMV framework for graph analytics.
//!
//! Before every SpMV invocation the runtime walks a decision tree
//! (paper Figure 2) keyed on the frontier density and the operand
//! footprints:
//!
//! * **software** — inner-product ([`SwConfig::InnerProduct`], dense
//!   dataflow over row-major COO) vs outer-product
//!   ([`SwConfig::OuterProduct`], sparse dataflow over CSC with per-PE
//!   heap merge);
//! * **hardware** — one of four memory configurations of the
//!   Transmuter-like substrate ([`HwConfig`]): SC/SCS for IP, PC/PS for
//!   OP.
//!
//! It then reconfigures the simulated machine (≤10-cycle switch + flush
//! drain), converts the frontier representation when the dataflow
//! changed, generates workload-balanced kernel streams, and returns the
//! simulated timing together with the functionally-computed result.
//!
//! Graph algorithms plug in through the [`GraphOp`] trait (paper
//! Table I): BFS, SSSP, PR and CF live in the `graph` crate.
//!
//! # Example
//!
//! ```
//! use cosparse::{CoSparse, Frontier};
//! use transmuter::{Geometry, Machine, MicroArch};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let matrix = sparse::generate::uniform(1 << 12, 1 << 12, 40_000, 42)?;
//! let machine = Machine::new(Geometry::new(2, 4), MicroArch::paper());
//! let mut runtime = CoSparse::new(&matrix, machine);
//!
//! let frontier = Frontier::Sparse(sparse::generate::random_sparse_vector(
//!     1 << 12,
//!     0.005,
//!     7,
//! )?);
//! let out = runtime.spmv(&frontier)?;
//! println!(
//!     "{}/{} in {} cycles",
//!     out.software, out.hardware, out.report.cycles
//! );
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adaptive;
pub mod balance;
pub mod heuristics;
pub mod host;
pub mod kernels;
pub mod layout;
pub mod ops;
mod runtime;
pub mod serve;
pub mod shared;
pub mod verify;

pub use heuristics::{
    decide, decide_exact, default_format, Decision, MatrixSummary, SwConfig, Thresholds,
};
pub use host::{ExecBackend, HostOperand};
pub use layout::Layout;
pub use ops::{apply, GraphOp, OpProfile, SpmvOp, Update};
pub use runtime::{CacheStats, CoSparse, Frontier, Policy, SpmvOutcome, StepOutcome};
pub use serve::{GraphService, ServeConfig, ServeError, ServeStats, Ticket};
pub use shared::{SharedCacheStats, SharedGraph};
pub use verify::{run_checked, VerifyReport};
// Re-export so downstream crates name the hardware configs, storage
// formats and locality reorderings from here.
pub use sparse::{FormatKind, ReorderKind};
pub use transmuter::HwConfig;
