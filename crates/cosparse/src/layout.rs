//! Simulated-address-space layout of the SpMV data structures.
//!
//! The runtime keeps two copies of the (transposed) adjacency matrix in
//! main memory — row-major COO for the inner-product dataflow and CSC
//! for the outer-product dataflow — "to avoid matrix conversion
//! overhead, similar to Ligra" (§III-D.2), plus the dense/sparse
//! frontier, the output vector, per-PE merge heaps and per-PE output
//! FIFOs. Kernels translate structural positions into these addresses;
//! the data itself never exists in the simulator (see DESIGN.md §2).

use transmuter::verify::RegionMap;
use transmuter::{Addr, Geometry};

/// Word size in bytes (matches `MicroArch::word_bytes`).
pub const WORD: u64 = 4;
/// Bytes per interleaved COO entry: `(row, col, value)`.
pub const COO_ENTRY_BYTES: u64 = 3 * WORD;
/// Bytes per interleaved CSC entry: `(row, value)`.
pub const CSC_ENTRY_BYTES: u64 = 2 * WORD;
/// Bytes per sparse-vector entry: `(index, value)`.
pub const SV_ENTRY_BYTES: u64 = 2 * WORD;
/// Bytes per merge-heap node: `(row, column cursor)`.
pub const HEAP_NODE_BYTES: u64 = 2 * WORD;

/// Base addresses of every simulated data structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Row-major COO triplets of the transposed adjacency matrix.
    pub coo_base: Addr,
    /// CSC column-pointer array of the transposed matrix.
    pub csc_ptr_base: Addr,
    /// CSC `(row, value)` pairs of the transposed matrix.
    pub csc_data_base: Addr,
    /// Dense input vector `x` (frontier), `value_words` words per element.
    pub x_base: Addr,
    /// Dense output vector `y`, `value_words` words per element.
    pub y_base: Addr,
    /// Sparse input vector `(index, value)` entries.
    pub sv_base: Addr,
    /// Per-PE output FIFO regions (PE→LCP channel), `fifo_stride` apart.
    pub fifo_base: Addr,
    /// Stride between consecutive PEs' FIFO regions.
    pub fifo_stride: u64,
    /// Per-PE spilled-heap regions (outer product), `heap_stride` apart.
    pub heap_base: Addr,
    /// Stride between consecutive PEs' heap regions.
    pub heap_stride: u64,
    /// Packed alternate-format matrix image (bitmap CSR or BCSR) the
    /// format kernels stream; zero-sized when the plan's format is one
    /// of the always-resident COO/CSC pair.
    pub fmt_base: Addr,
    /// Bytes of the alternate-format image.
    pub fmt_bytes: u64,
    /// Words per vector element (1 for scalar algorithms, K for CF).
    pub value_words: u64,
    /// Matrix rows the layout was sized for.
    pub rows: usize,
    /// Matrix columns the layout was sized for.
    pub cols: usize,
    /// Nonzeros the layout was sized for.
    pub nnz: usize,
    /// Total PE count of the geometry the layout was sized for.
    pub total_pes: usize,
}

impl Layout {
    /// Lays out structures for an `rows x cols` transposed matrix with
    /// `nnz` nonzeros on `geometry`, with `value_words` words per vector
    /// element.
    ///
    /// Regions are line-aligned and padded so distinct structures never
    /// share a cache line.
    pub fn new(
        rows: usize,
        cols: usize,
        nnz: usize,
        geometry: Geometry,
        value_words: usize,
    ) -> Self {
        Layout::with_format_bytes(rows, cols, nnz, geometry, value_words, 0)
    }

    /// [`Layout::new`] with an extra `fmt_bytes`-sized region for an
    /// alternate storage format's packed image (see [`Layout::fmt_base`]).
    pub fn with_format_bytes(
        rows: usize,
        cols: usize,
        nnz: usize,
        geometry: Geometry,
        value_words: usize,
        fmt_bytes: usize,
    ) -> Self {
        const LINE: u64 = 64;
        let align = |a: u64| a.div_ceil(LINE) * LINE;
        let value_words = value_words.max(1) as u64;
        let mut cursor: u64 = 0x1_0000; // leave page zero unused
        let mut take = |bytes: u64| {
            let base = cursor;
            cursor = align(cursor + bytes.max(1)) + LINE;
            base
        };
        let coo_base = take(nnz as u64 * COO_ENTRY_BYTES);
        let csc_ptr_base = take((cols as u64 + 1) * WORD);
        let csc_data_base = take(nnz as u64 * CSC_ENTRY_BYTES);
        let x_base = take(cols as u64 * WORD * value_words);
        let y_base = take(rows as u64 * WORD * value_words);
        let sv_base = take(cols as u64 * SV_ENTRY_BYTES);
        // FIFOs and heaps: size for the worst case (every output/new
        // column belongs to one PE).
        let fifo_stride = align(rows as u64 * SV_ENTRY_BYTES / geometry.total_pes() as u64 + LINE);
        let fifo_base = take(fifo_stride * geometry.total_pes() as u64);
        let heap_stride = align(cols as u64 * HEAP_NODE_BYTES + LINE);
        let heap_base = take(heap_stride * geometry.total_pes() as u64);
        let fmt_bytes = fmt_bytes as u64;
        let fmt_base = take(fmt_bytes);
        Layout {
            coo_base,
            csc_ptr_base,
            csc_data_base,
            x_base,
            y_base,
            sv_base,
            fifo_base,
            fifo_stride,
            heap_base,
            heap_stride,
            fmt_base,
            fmt_bytes,
            value_words,
            rows,
            cols,
            nnz,
            total_pes: geometry.total_pes(),
        }
    }

    /// The address regions kernels are allowed to touch, for the
    /// [`transmuter::verify`] linter's unmapped-address check.
    pub fn regions(&self) -> RegionMap {
        let mut map = RegionMap::new();
        map.add("coo", self.coo_base, self.nnz as u64 * COO_ENTRY_BYTES)
            .add("csc_ptr", self.csc_ptr_base, (self.cols as u64 + 1) * WORD)
            .add(
                "csc_data",
                self.csc_data_base,
                self.nnz as u64 * CSC_ENTRY_BYTES,
            )
            .add("x", self.x_base, self.cols as u64 * WORD * self.value_words)
            .add("y", self.y_base, self.rows as u64 * WORD * self.value_words)
            .add("sv", self.sv_base, self.cols as u64 * SV_ENTRY_BYTES)
            .add(
                "fifo",
                self.fifo_base,
                self.fifo_stride * self.total_pes as u64,
            )
            .add(
                "heap",
                self.heap_base,
                self.heap_stride * self.total_pes as u64,
            );
        if self.fmt_bytes > 0 {
            map.add("fmt", self.fmt_base, self.fmt_bytes);
        }
        map
    }

    /// Address of COO entry `k` (in the kernel's streaming order).
    pub fn coo_entry(&self, k: usize) -> Addr {
        self.coo_base + k as u64 * COO_ENTRY_BYTES
    }

    /// Address of CSC column pointer `j`.
    pub fn csc_ptr(&self, j: usize) -> Addr {
        self.csc_ptr_base + j as u64 * WORD
    }

    /// Address of CSC data entry `k`.
    pub fn csc_entry(&self, k: usize) -> Addr {
        self.csc_data_base + k as u64 * CSC_ENTRY_BYTES
    }

    /// Address of word `w` of dense-vector element `j`.
    pub fn x_elem(&self, j: usize, w: usize) -> Addr {
        self.x_base + (j as u64 * self.value_words + w as u64) * WORD
    }

    /// Address of word `w` of output element `i`.
    pub fn y_elem(&self, i: usize, w: usize) -> Addr {
        self.y_base + (i as u64 * self.value_words + w as u64) * WORD
    }

    /// Address of sparse-vector entry `k`.
    pub fn sv_entry(&self, k: usize) -> Addr {
        self.sv_base + k as u64 * SV_ENTRY_BYTES
    }

    /// Address of slot `k` in global PE `pe`'s output FIFO.
    pub fn fifo_slot(&self, pe: usize, k: usize) -> Addr {
        self.fifo_base
            + pe as u64 * self.fifo_stride
            + (k as u64 * SV_ENTRY_BYTES) % self.fifo_stride
    }

    /// Address of word `w` of the alternate-format image.
    pub fn fmt_word(&self, w: usize) -> Addr {
        self.fmt_base + w as u64 * WORD
    }

    /// Address of spilled heap node `node` for global PE `pe`.
    pub fn heap_node(&self, pe: usize, node: usize) -> Addr {
        self.heap_base
            + pe as u64 * self.heap_stride
            + (node as u64 * HEAP_NODE_BYTES) % self.heap_stride
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let g = Geometry::new(2, 4);
        let l = Layout::new(1000, 1000, 5000, g, 1);
        let regions = [
            (l.coo_base, 5000 * COO_ENTRY_BYTES),
            (l.csc_ptr_base, 1001 * WORD),
            (l.csc_data_base, 5000 * CSC_ENTRY_BYTES),
            (l.x_base, 1000 * WORD),
            (l.y_base, 1000 * WORD),
            (l.sv_base, 1000 * SV_ENTRY_BYTES),
            (l.fifo_base, l.fifo_stride * 8),
            (l.heap_base, l.heap_stride * 8),
        ];
        for (i, &(a, alen)) in regions.iter().enumerate() {
            for &(b, blen) in regions.iter().skip(i + 1) {
                assert!(a + alen <= b || b + blen <= a, "regions {i} overlap");
            }
        }
    }

    #[test]
    fn entry_addresses_stride_correctly() {
        let l = Layout::new(10, 10, 10, Geometry::new(1, 1), 1);
        assert_eq!(l.coo_entry(1) - l.coo_entry(0), 12);
        assert_eq!(l.csc_entry(3) - l.csc_entry(2), 8);
        assert_eq!(l.x_elem(5, 0) - l.x_elem(4, 0), 4);
        assert_eq!(l.sv_entry(1) - l.sv_entry(0), 8);
    }

    #[test]
    fn value_words_scale_vector_strides() {
        let l = Layout::new(10, 10, 10, Geometry::new(1, 1), 16);
        assert_eq!(l.x_elem(1, 0) - l.x_elem(0, 0), 64);
        assert_eq!(l.x_elem(0, 15) - l.x_elem(0, 0), 60);
        assert_eq!(l.y_elem(2, 0) - l.y_elem(1, 0), 64);
    }

    #[test]
    fn per_pe_regions_disjoint() {
        let g = Geometry::new(2, 2);
        let l = Layout::new(100, 100, 400, g, 1);
        assert!(l.fifo_slot(1, 0) >= l.fifo_slot(0, 0) + l.fifo_stride);
        assert!(l.heap_node(3, 0) > l.heap_node(2, 0));
        // FIFO wrap-around stays inside the PE's region.
        let far = l.fifo_slot(0, 1_000_000);
        assert!(far < l.fifo_base + l.fifo_stride);
    }

    #[test]
    fn zero_nnz_is_fine() {
        let l = Layout::new(4, 4, 0, Geometry::new(1, 1), 1);
        assert!(l.csc_ptr_base > l.coo_base);
    }

    #[test]
    fn format_region_is_disjoint_and_strides_by_word() {
        let g = Geometry::new(2, 4);
        let l = Layout::with_format_bytes(1000, 1000, 5000, g, 1, 4096);
        assert_eq!(l.fmt_bytes, 4096);
        assert!(l.fmt_base >= l.heap_base + l.heap_stride * 8);
        assert_eq!(l.fmt_word(3) - l.fmt_word(2), 4);
        // Without format bytes the region is absent but layouts agree
        // on everything before it.
        let plain = Layout::new(1000, 1000, 5000, g, 1);
        assert_eq!(plain.fmt_bytes, 0);
        assert_eq!(plain.coo_base, l.coo_base);
        assert_eq!(plain.heap_base, l.heap_base);
    }
}
