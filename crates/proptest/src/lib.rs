//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of the proptest API its test-suites use: the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`collection::vec`],
//! [`ProptestConfig`] and the `prop_assert*` macros.
//!
//! Semantics differ from upstream in two deliberate ways: case
//! generation is deterministic (a fixed seed stepped per case, so
//! failures always reproduce), and there is **no shrinking** — a failing
//! case reports its case number and values' `Debug` is up to the caller.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Per-test configuration, selected with
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property check produced by `prop_assert!` and friends.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

/// Asserts a condition inside a property test, failing the current case
/// (with an optional formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
                stringify!($a),
                stringify!($b),
                a,
                b,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a != b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}\n  {}",
                stringify!($a),
                stringify!($b),
                a,
                format!($($fmt)+)
            )));
        }
    }};
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(a != b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that draws `cases` inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg); $($rest)*);
    };
    (@with ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let result: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body; ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = result {
                        panic!("property failed at case {}/{}: {}", case + 1, config.cases, e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in -2.0f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (0u32..10, 0u32..10).prop_map(|(a, b)| (a, a + b)),
        ) {
            prop_assert!(pair.1 >= pair.0);
        }

        #[test]
        fn flat_map_reuses_outer(v in (1usize..8).prop_flat_map(|n| collection::vec(0usize..n, n))) {
            prop_assert!(!v.is_empty());
            let n = v.len();
            prop_assert!(v.iter().all(|&x| x < n), "{v:?}");
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        use crate::strategy::Strategy;
        let s = (0u64..1_000_000, 0u64..1_000_000);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_reports() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 0usize..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }
}
