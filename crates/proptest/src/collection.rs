//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Anything usable as a collection size: a fixed `usize` or a
/// `Range<usize>` of admissible lengths.
pub trait IntoSizeRange {
    /// Lower/upper (exclusive) length bounds.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl IntoSizeRange for core::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

impl IntoSizeRange for core::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end() + 1)
    }
}

/// A strategy generating `Vec`s of values drawn from `element`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        debug_assert!(self.min < self.max, "vec strategy over empty size range");
        let len = self.min + rng.below((self.max - self.min) as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    assert!(min < max, "vec size range is empty");
    VecStrategy { element, min, max }
}
