//! The deterministic RNG behind case generation.

/// A SplitMix64 generator seeded from the test's path, so every test
/// draws an independent but fully reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator whose stream is a pure function of `name`.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test path.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
