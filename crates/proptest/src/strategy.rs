//! Value-generation strategies: ranges, tuples, `prop_map`,
//! `prop_flat_map` and constants.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes every generated value with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Derives a second strategy from each generated value and samples
    /// it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A heap-allocated, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy over empty range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy over empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
int_strategy!(usize, u8, u16, u32, u64, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

impl Strategy for core::ops::Range<char> {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        let (lo, hi) = (self.start as u32, self.end as u32);
        assert!(lo < hi, "strategy over empty range");
        loop {
            if let Some(c) = char::from_u32(lo + rng.below((hi - lo) as u64) as u32) {
                return c;
            }
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident $idx:tt),+);)*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}
