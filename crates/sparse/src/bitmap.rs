use crate::{CooMatrix, DenseVector, Idx, Result, SparseError, Triplet};

/// Columns covered by one level-0 bitmap word.
pub const SEG_COLS: usize = 32;

/// A SMASH-style hierarchical-bitmap CSR matrix.
///
/// Each row is divided into fixed 32-column *segments*. Two bitmap
/// levels index the nonzero structure:
///
/// * **level 1** — one bit per `(row, segment)` pair, row-major, packed
///   into `u64` words: set iff the segment holds at least one nonzero;
/// * **level 0** — one `u32` word per *occupied* segment (in row-major
///   segment order): bit `b` set iff column `segment * 32 + b` is
///   stored.
///
/// Values are packed densely in row-major, ascending-column order, so a
/// row walk touches one word per occupied segment plus one word per
/// value — roughly a third of the traffic of streaming 12-byte COO
/// triplets, which is what makes this format win for IP SpMV on
/// matrices whose nonzeros cluster into segments.
#[derive(Debug, Clone, PartialEq)]
pub struct BitmapCsr {
    rows: usize,
    cols: usize,
    segs_per_row: usize,
    /// Level-1 bitmap, bit `row * segs_per_row + seg`.
    l1: Vec<u64>,
    /// Level-0 occupancy words, one per occupied segment.
    l0: Vec<u32>,
    /// Offset of each row's first level-0 word; length `rows + 1`.
    row_seg_ptr: Vec<usize>,
    /// Offset of each row's first value; length `rows + 1`.
    row_ptr: Vec<usize>,
    /// Densely packed values, row-major then ascending column.
    values: Vec<f32>,
}

impl BitmapCsr {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Segments (level-0 word slots) per row: `ceil(cols / 32)`.
    pub fn segs_per_row(&self) -> usize {
        self.segs_per_row
    }

    /// The level-1 bitmap words.
    pub fn l1(&self) -> &[u64] {
        &self.l1
    }

    /// The level-0 occupancy words (one per occupied segment).
    pub fn l0(&self) -> &[u32] {
        &self.l0
    }

    /// Densely packed values.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Per-row offsets into [`Self::l0`]; length `rows + 1`.
    pub fn row_seg_ptr(&self) -> &[usize] {
        &self.row_seg_ptr
    }

    /// Per-row offsets into [`Self::values`]; length `rows + 1`.
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Stored nonzeros in row `r`.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Bytes this image occupies in simulated storage: the two bitmap
    /// levels, the per-row segment/value prefix sums, and the densely
    /// packed values.
    pub fn stored_bytes(&self) -> usize {
        self.l1.len() * 8 + self.l0.len() * 4 + (self.rows + 1) * 8 + self.values.len() * 4
    }

    /// Average stored entries per occupied segment (`nnz / #l0 words`);
    /// `0.0` for an empty matrix. The closer this is to 32, the more one
    /// level-0 word load amortizes.
    pub fn segment_occupancy(&self) -> f64 {
        if self.l0.is_empty() {
            0.0
        } else {
            self.values.len() as f64 / self.l0.len() as f64
        }
    }

    /// Iterates the occupied segment indices of row `r` (ascending),
    /// recovered from the level-1 bitmap.
    pub fn row_segments(&self, r: usize) -> impl Iterator<Item = usize> + '_ {
        let start = r * self.segs_per_row;
        SetBits::new(&self.l1, start, start + self.segs_per_row).map(move |bit| bit - start)
    }

    /// Iterates row `r` as `(col, value)` pairs in ascending column
    /// order, walking the two bitmap levels.
    pub fn iter_row(&self, r: usize) -> RowIter<'_> {
        let start = r * self.segs_per_row;
        RowIter {
            m: self,
            segs: SetBits::new(&self.l1, start, start + self.segs_per_row),
            seg_base_bit: start,
            l0_idx: self.row_seg_ptr[r],
            val_idx: self.row_ptr[r],
            cur_word: 0,
            cur_col_base: 0,
        }
    }

    /// Reference dense SpMV `y = A * x`, reducing each row in ascending
    /// column order (bit-identical to [`CooMatrix::spmv_dense`]).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if `x.len() != self.cols()`.
    pub fn spmv_dense(&self, x: &DenseVector<f32>) -> Result<DenseVector<f32>> {
        if x.len() != self.cols {
            return Err(SparseError::ShapeMismatch {
                expected: self.cols,
                actual: x.len(),
                context: "bitmap spmv",
            });
        }
        let mut y = vec![0.0f32; self.rows];
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for (c, v) in self.iter_row(r) {
                acc += v * x[c as usize];
            }
            *out = acc;
        }
        Ok(DenseVector::from(y))
    }
}

impl From<&CooMatrix> for BitmapCsr {
    fn from(coo: &CooMatrix) -> Self {
        let rows = coo.rows();
        let cols = coo.cols();
        let segs_per_row = cols.div_ceil(SEG_COLS);
        let mut l1 = vec![0u64; (rows * segs_per_row).div_ceil(64)];
        let mut l0: Vec<u32> = Vec::new();
        let mut row_seg_ptr = vec![0usize; rows + 1];
        let mut row_ptr = vec![0usize; rows + 1];
        let mut values = Vec::with_capacity(coo.nnz());
        let mut last: Option<(Idx, usize)> = None;
        for t in coo.entries() {
            let r = t.row as usize;
            let seg = t.col as usize / SEG_COLS;
            if last != Some((t.row, seg)) {
                l0.push(0);
                row_seg_ptr[r + 1] += 1;
                let bit = r * segs_per_row + seg;
                l1[bit / 64] |= 1u64 << (bit % 64);
                last = Some((t.row, seg));
            }
            *l0.last_mut().expect("pushed above") |= 1u32 << (t.col as usize % SEG_COLS);
            row_ptr[r + 1] += 1;
            values.push(t.val);
        }
        for r in 0..rows {
            row_seg_ptr[r + 1] += row_seg_ptr[r];
            row_ptr[r + 1] += row_ptr[r];
        }
        BitmapCsr {
            rows,
            cols,
            segs_per_row,
            l1,
            l0,
            row_seg_ptr,
            row_ptr,
            values,
        }
    }
}

impl From<&BitmapCsr> for CooMatrix {
    fn from(m: &BitmapCsr) -> Self {
        let mut entries = Vec::with_capacity(m.nnz());
        for r in 0..m.rows {
            for (c, v) in m.iter_row(r) {
                entries.push(Triplet {
                    row: r as Idx,
                    col: c,
                    val: v,
                });
            }
        }
        CooMatrix::from_sorted_triplets(m.rows, m.cols, entries)
            .expect("bitmap walk is sorted and in bounds")
    }
}

/// Iterator over set bits in the bit range `[start, end)` of a `u64`
/// word array, ascending.
#[derive(Debug, Clone)]
struct SetBits<'a> {
    words: &'a [u64],
    /// Remaining bits of the word currently being drained, already
    /// shifted so bit 0 corresponds to `word_base`.
    cur: u64,
    word_base: usize,
    next_word: usize,
    end: usize,
}

impl<'a> SetBits<'a> {
    fn new(words: &'a [u64], start: usize, end: usize) -> Self {
        let word = start / 64;
        let mut cur = words.get(word).copied().unwrap_or(0);
        // Mask off bits below `start` in the first word; `start % 64`
        // is always < 64 so the shift is defined.
        cur &= !0u64 << (start % 64);
        SetBits {
            words,
            cur,
            word_base: word * 64,
            next_word: word + 1,
            end,
        }
    }
}

impl Iterator for SetBits<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.cur != 0 {
                let bit = self.word_base + self.cur.trailing_zeros() as usize;
                if bit >= self.end {
                    return None;
                }
                self.cur &= self.cur - 1;
                return Some(bit);
            }
            if self.next_word * 64 >= self.end {
                return None;
            }
            self.cur = self.words.get(self.next_word).copied().unwrap_or(0);
            self.word_base = self.next_word * 64;
            self.next_word += 1;
        }
    }
}

/// Iterator over one row of a [`BitmapCsr`], yielding `(col, value)` in
/// ascending column order.
#[derive(Debug, Clone)]
pub struct RowIter<'a> {
    m: &'a BitmapCsr,
    segs: SetBits<'a>,
    seg_base_bit: usize,
    l0_idx: usize,
    val_idx: usize,
    cur_word: u32,
    cur_col_base: usize,
}

impl Iterator for RowIter<'_> {
    type Item = (Idx, f32);

    fn next(&mut self) -> Option<(Idx, f32)> {
        loop {
            if self.cur_word != 0 {
                let b = self.cur_word.trailing_zeros() as usize;
                self.cur_word &= self.cur_word - 1;
                let col = (self.cur_col_base + b) as Idx;
                let val = self.m.values[self.val_idx];
                self.val_idx += 1;
                return Some((col, val));
            }
            let seg = self.segs.next()? - self.seg_base_bit;
            self.cur_word = self.m.l0[self.l0_idx];
            self.l0_idx += 1;
            self.cur_col_base = seg * SEG_COLS;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooMatrix {
        CooMatrix::from_triplets(
            4,
            70,
            vec![
                (0, 0, 1.0),
                (0, 1, 2.0),
                (0, 33, 3.0),
                (0, 69, 4.0),
                (2, 31, 5.0),
                (2, 32, 6.0),
                (3, 64, 7.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_is_lossless() {
        let coo = sample();
        let bm = BitmapCsr::from(&coo);
        assert_eq!(CooMatrix::from(&bm), coo);
    }

    #[test]
    fn structure_counts() {
        let bm = BitmapCsr::from(&sample());
        assert_eq!(bm.nnz(), 7);
        assert_eq!(bm.segs_per_row(), 3);
        // Occupied segments: row 0 → {0, 1, 2}, row 2 → {0, 1}, row 3 → {2}.
        assert_eq!(bm.l0().len(), 6);
        assert_eq!(bm.row_seg_ptr(), &[0, 3, 3, 5, 6]);
        assert_eq!(bm.row_ptr(), &[0, 4, 4, 6, 7]);
        assert_eq!(bm.row_segments(0).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(bm.row_segments(1).count(), 0);
        assert_eq!(bm.row_segments(3).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn iter_row_ascending_columns() {
        let bm = BitmapCsr::from(&sample());
        let row0: Vec<_> = bm.iter_row(0).collect();
        assert_eq!(row0, vec![(0, 1.0), (1, 2.0), (33, 3.0), (69, 4.0)]);
        assert_eq!(bm.iter_row(1).count(), 0);
    }

    #[test]
    fn spmv_bits_match_coo_golden() {
        let coo = crate::generate::uniform(60, 90, 700, 5).unwrap();
        let bm = BitmapCsr::from(&coo);
        let x = DenseVector::from((0..90).map(|i| (i as f32).sin()).collect::<Vec<_>>());
        let want = coo.spmv_dense(&x).unwrap();
        let got = bm.spmv_dense(&x).unwrap();
        for (w, g) in want.iter().zip(got.iter()) {
            assert_eq!(w.to_bits(), g.to_bits());
        }
    }

    #[test]
    fn empty_and_degenerate_shapes() {
        let empty = CooMatrix::new(0, 0);
        let bm = BitmapCsr::from(&empty);
        assert_eq!((bm.rows(), bm.cols(), bm.nnz()), (0, 0, 0));
        assert_eq!(CooMatrix::from(&bm), empty);

        let tall = CooMatrix::new(5, 0);
        let bm = BitmapCsr::from(&tall);
        assert_eq!(bm.segs_per_row(), 0);
        assert_eq!(CooMatrix::from(&bm), tall);
        assert_eq!(bm.segment_occupancy(), 0.0);
    }

    #[test]
    fn wide_row_straddles_l1_words() {
        // 2 rows x 4096 cols → 128 segments/row: row 1's level-1 bits
        // live in words 2 and 3, exercising the multi-word SetBits walk.
        let coo = CooMatrix::from_triplets(2, 4096, vec![(1, 0, 1.0), (1, 4095, 2.0)]).unwrap();
        let bm = BitmapCsr::from(&coo);
        assert_eq!(bm.row_segments(1).collect::<Vec<_>>(), vec![0, 127]);
        assert_eq!(CooMatrix::from(&bm), coo);
    }
}
