//! Sparse matrix and vector infrastructure for the CoSPARSE reproduction.
//!
//! This crate provides everything the CoSPARSE runtime needs from its data
//! layer:
//!
//! * the three storage formats the paper uses — row-major [`CooMatrix`]
//!   (inner-product dataflow), [`CscMatrix`] (outer-product dataflow) and
//!   [`CsrMatrix`] (baselines and conversions);
//! * dense and sparse frontier vectors ([`DenseVector`], [`SparseVector`])
//!   with the lightweight format conversions the runtime performs between
//!   iterations;
//! * matrix generators: uniformly random, power-law (Zipf column
//!   popularity) and R-MAT, plus synthetic analogues of the paper's
//!   Table III real-graph suite ([`generate`]);
//! * the static workload-balancing machinery of §III-B: nnz-balanced row
//!   partitions and vblock (vertical) tiling ([`partition`]);
//! * Matrix Market IO ([`io`]) and matrix statistics ([`stats`]).
//!
//! # Example
//!
//! ```
//! use sparse::{CooMatrix, CscMatrix, DenseVector};
//!
//! # fn main() -> Result<(), sparse::SparseError> {
//! // 3x3 matrix with a diagonal and one off-diagonal entry.
//! let coo = CooMatrix::from_triplets(
//!     3,
//!     3,
//!     vec![(0, 0, 1.0), (1, 1, 2.0), (2, 2, 3.0), (0, 2, 4.0)],
//! )?;
//! let csc = CscMatrix::from(&coo);
//! let x = DenseVector::from(vec![1.0f32, 1.0, 1.0]);
//! let y = csc.spmv_dense(&x)?;
//! assert_eq!(y.as_slice(), &[5.0, 2.0, 3.0]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod coo;
mod csc;
mod csr;
mod error;
mod vector;

/// OSKI-style blocked CSR storage.
pub mod bcsr;
/// SMASH-style hierarchical-bitmap CSR storage.
pub mod bitmap;
/// The [`FormatKind`]/[`StoredMatrix`] storage-format axis.
pub mod format;
pub mod generate;
pub mod io;
pub mod partition;
/// Locality-aware row/column reordering — the fourth reconfiguration axis.
pub mod reorder;
pub mod stats;

pub use bcsr::BcsrMatrix;
pub use bitmap::BitmapCsr;
pub use coo::{CooMatrix, Triplet};
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use error::SparseError;
pub use format::{FormatKind, FormatProbe, StoredMatrix};
pub use reorder::{Permutation, ReorderKind, ReorderProbe};
pub use vector::{DenseVector, SparseVector};

/// Index type used for rows and columns throughout the workspace.
///
/// `u32` comfortably covers the paper's largest graph (livejournal,
/// 4.8 M vertices) while halving the memory traffic relative to `usize`,
/// which matters because the simulator models word-granular accesses.
pub type Idx = u32;

/// Result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, SparseError>;
