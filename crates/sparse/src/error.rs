use std::fmt;

/// Error type for sparse-matrix construction, conversion and IO.
#[derive(Debug)]
#[non_exhaustive]
pub enum SparseError {
    /// A row or column index was outside the declared matrix shape.
    IndexOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Declared number of rows.
        rows: usize,
        /// Declared number of columns.
        cols: usize,
    },
    /// Operand shapes are incompatible (e.g. SpMV with a wrong-length vector).
    ShapeMismatch {
        /// Shape expected by the operation, e.g. the matrix column count.
        expected: usize,
        /// Shape actually supplied.
        actual: usize,
        /// What the operation was doing.
        context: &'static str,
    },
    /// A vector entry index was outside the declared dimension.
    VectorIndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Declared dimension.
        dim: usize,
    },
    /// Sparse vector entries were not strictly increasing by index.
    UnsortedEntries {
        /// Position of the first violation.
        position: usize,
    },
    /// Matrix Market parsing failed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// An underlying IO error.
    Io(std::io::Error),
    /// A generator was asked for an impossible configuration
    /// (e.g. more nonzeros than cells).
    InvalidGenerator(String),
    /// A row/column permutation was not a bijection on its index range.
    InvalidPermutation(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds {
                row,
                col,
                rows,
                cols,
            } => write!(
                f,
                "entry ({row}, {col}) is outside the {rows}x{cols} matrix shape"
            ),
            SparseError::ShapeMismatch {
                expected,
                actual,
                context,
            } => {
                write!(
                    f,
                    "shape mismatch in {context}: expected {expected}, got {actual}"
                )
            }
            SparseError::VectorIndexOutOfBounds { index, dim } => {
                write!(f, "vector index {index} is outside dimension {dim}")
            }
            SparseError::UnsortedEntries { position } => {
                write!(
                    f,
                    "sparse vector entries are not strictly increasing at position {position}"
                )
            }
            SparseError::Parse { line, message } => {
                write!(f, "matrix market parse error at line {line}: {message}")
            }
            SparseError::Io(e) => write!(f, "io error: {e}"),
            SparseError::InvalidGenerator(msg) => write!(f, "invalid generator request: {msg}"),
            SparseError::InvalidPermutation(msg) => write!(f, "invalid permutation: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SparseError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = SparseError::ShapeMismatch {
            expected: 4,
            actual: 3,
            context: "spmv",
        };
        let s = e.to_string();
        assert!(s.contains("spmv"));
        assert!(s.contains('4') && s.contains('3'));
        assert!(s.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn io_error_preserves_source() {
        use std::error::Error;
        let e = SparseError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
