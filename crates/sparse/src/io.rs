//! Matrix Market (`.mtx`) coordinate-format IO.
//!
//! Supports the subset the paper's datasets use: `matrix coordinate`
//! with `real`, `integer` or `pattern` fields and `general` or
//! `symmetric` symmetry. Symmetric inputs are expanded to both
//! triangles on read, matching how graph frameworks consume SuiteSparse
//! files.

use crate::{CooMatrix, Idx, Result, SparseError};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Reads a Matrix Market coordinate file from any reader.
///
/// The reader can be passed as `&mut r` thanks to the blanket
/// `Read for &mut R` impl.
///
/// # Errors
///
/// Returns [`SparseError::Parse`] for malformed content,
/// [`SparseError::Io`] for IO failures, and index errors if entries
/// exceed the declared shape.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), sparse::SparseError> {
/// let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.5\n2 2 2.5\n";
/// let m = sparse::io::read_matrix_market(text.as_bytes())?;
/// assert_eq!(m.nnz(), 2);
/// # Ok(())
/// # }
/// ```
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CooMatrix> {
    let mut lines = BufReader::new(reader).lines();
    let mut line_no = 0usize;

    let header = loop {
        match lines.next() {
            Some(line) => {
                line_no += 1;
                let line = line?;
                if line_no == 1 {
                    break line;
                }
            }
            None => {
                return Err(SparseError::Parse {
                    line: line_no,
                    message: "empty file".to_string(),
                })
            }
        }
    };
    let header_fields: Vec<&str> = header.split_whitespace().collect();
    if header_fields.len() < 5
        || !header_fields[0].eq_ignore_ascii_case("%%MatrixMarket")
        || !header_fields[1].eq_ignore_ascii_case("matrix")
        || !header_fields[2].eq_ignore_ascii_case("coordinate")
    {
        return Err(SparseError::Parse {
            line: 1,
            message: format!("unsupported header: {header:?}"),
        });
    }
    let field = header_fields[3].to_ascii_lowercase();
    let pattern = match field.as_str() {
        "real" | "integer" => false,
        "pattern" => true,
        other => {
            return Err(SparseError::Parse {
                line: 1,
                message: format!("unsupported field type {other:?}"),
            })
        }
    };
    let symmetry = header_fields[4].to_ascii_lowercase();
    let symmetric = match symmetry.as_str() {
        "general" => false,
        "symmetric" => true,
        other => {
            return Err(SparseError::Parse {
                line: 1,
                message: format!("unsupported symmetry {other:?}"),
            })
        }
    };

    // Size line: first non-comment, non-blank line.
    let (rows, cols, nnz) = loop {
        let line = match lines.next() {
            Some(line) => {
                line_no += 1;
                line?
            }
            None => {
                return Err(SparseError::Parse {
                    line: line_no,
                    message: "missing size line".to_string(),
                })
            }
        };
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let parts: Vec<&str> = trimmed.split_whitespace().collect();
        if parts.len() != 3 {
            return Err(SparseError::Parse {
                line: line_no,
                message: format!("size line must have 3 fields, got {}", parts.len()),
            });
        }
        let parse = |s: &str| -> Result<usize> {
            s.parse().map_err(|_| SparseError::Parse {
                line: line_no,
                message: format!("invalid integer {s:?}"),
            })
        };
        break (parse(parts[0])?, parse(parts[1])?, parse(parts[2])?);
    };

    let mut triplets: Vec<(Idx, Idx, f32)> = Vec::with_capacity(nnz);
    let mut seen = 0usize;
    for line in lines {
        line_no += 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let parts: Vec<&str> = trimmed.split_whitespace().collect();
        let want = if pattern { 2 } else { 3 };
        if parts.len() < want {
            return Err(SparseError::Parse {
                line: line_no,
                message: format!("entry line must have {want} fields, got {}", parts.len()),
            });
        }
        let r: usize = parts[0].parse().map_err(|_| SparseError::Parse {
            line: line_no,
            message: format!("invalid row index {:?}", parts[0]),
        })?;
        let c: usize = parts[1].parse().map_err(|_| SparseError::Parse {
            line: line_no,
            message: format!("invalid column index {:?}", parts[1]),
        })?;
        if r == 0 || c == 0 {
            return Err(SparseError::Parse {
                line: line_no,
                message: "matrix market indices are 1-based".to_string(),
            });
        }
        let v: f32 = if pattern {
            1.0
        } else {
            parts[2].parse().map_err(|_| SparseError::Parse {
                line: line_no,
                message: format!("invalid value {:?}", parts[2]),
            })?
        };
        let (r, c) = ((r - 1) as Idx, (c - 1) as Idx);
        triplets.push((r, c, v));
        if symmetric && r != c {
            triplets.push((c, r, v));
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(SparseError::Parse {
            line: line_no,
            message: format!("size line declared {nnz} entries but file has {seen}"),
        });
    }
    CooMatrix::from_triplets(rows, cols, triplets)
}

/// Reads a Matrix Market file from a path.
///
/// # Errors
///
/// See [`read_matrix_market`].
pub fn read_matrix_market_file<P: AsRef<Path>>(path: P) -> Result<CooMatrix> {
    read_matrix_market(std::fs::File::open(path)?)
}

/// Writes a matrix in Matrix Market `coordinate real general` format.
///
/// The writer can be passed as `&mut w`.
///
/// # Errors
///
/// Returns [`SparseError::Io`] on write failure.
pub fn write_matrix_market<W: Write>(matrix: &CooMatrix, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "{} {} {}", matrix.rows(), matrix.cols(), matrix.nnz())?;
    for (r, c, v) in matrix.iter() {
        writeln!(w, "{} {} {}", r + 1, c + 1, v)?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let m = crate::generate::uniform(20, 30, 80, 5).unwrap();
        let mut buf = Vec::new();
        write_matrix_market(&m, &mut buf).unwrap();
        let back = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(back.rows(), 20);
        assert_eq!(back.cols(), 30);
        assert_eq!(back.nnz(), 80);
        for (a, b) in m.iter().zip(back.iter()) {
            assert_eq!((a.0, a.1), (b.0, b.1));
            assert!((a.2 - b.2).abs() < 1e-5);
        }
    }

    #[test]
    fn pattern_matrices_get_unit_weights() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n% comment\n2 2 2\n1 2\n2 1\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 2);
        assert!(m.iter().all(|(_, _, v)| v == 1.0));
    }

    #[test]
    fn symmetric_is_expanded() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 5.0\n3 3 1.0\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        // (1,0) and (0,1) plus the diagonal (2,2).
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 oops 3\n";
        match read_matrix_market(text.as_bytes()) {
            Err(SparseError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn wrong_count_detected() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn zero_based_indices_rejected() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn unsupported_formats_rejected() {
        for text in [
            "%%MatrixMarket matrix array real general\n",
            "%%MatrixMarket matrix coordinate complex general\n1 1 0\n",
            "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n",
            "not a header\n",
        ] {
            assert!(read_matrix_market(text.as_bytes()).is_err(), "{text:?}");
        }
    }
}

/// Reads a SNAP-style edge list: one `src dst [weight]` pair per line,
/// `#`-prefixed comment lines ignored, vertices 0-based. This is the
/// distribution format of the paper's SNAP datasets (livejournal,
/// pokec, youtube, twitter).
///
/// The vertex count is `max(vertex id) + 1` unless `min_vertices`
/// demands more; missing weights default to 1.0.
///
/// # Errors
///
/// Returns [`SparseError::Parse`] for malformed lines and
/// [`SparseError::Io`] for IO failures.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), sparse::SparseError> {
/// let text = "# comment\n0 1\n1 2 0.5\n";
/// let g = sparse::io::read_edge_list(text.as_bytes(), 0)?;
/// assert_eq!(g.rows(), 3);
/// assert_eq!(g.nnz(), 2);
/// # Ok(())
/// # }
/// ```
pub fn read_edge_list<R: Read>(reader: R, min_vertices: usize) -> Result<CooMatrix> {
    let mut triplets: Vec<(Idx, Idx, f32)> = Vec::new();
    let mut max_v = 0usize;
    for (i, line) in BufReader::new(reader).lines().enumerate() {
        let line_no = i + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse_v = |tok: Option<&str>| -> Result<usize> {
            tok.ok_or(SparseError::Parse {
                line: line_no,
                message: "edge line needs `src dst [weight]`".to_string(),
            })?
            .parse()
            .map_err(|_| SparseError::Parse {
                line: line_no,
                message: "invalid vertex id".to_string(),
            })
        };
        let src = parse_v(parts.next())?;
        let dst = parse_v(parts.next())?;
        let weight: f32 = match parts.next() {
            Some(tok) => tok.parse().map_err(|_| SparseError::Parse {
                line: line_no,
                message: format!("invalid weight {tok:?}"),
            })?,
            None => 1.0,
        };
        max_v = max_v.max(src).max(dst);
        triplets.push((src as Idx, dst as Idx, weight));
    }
    let n = if triplets.is_empty() {
        min_vertices
    } else {
        (max_v + 1).max(min_vertices)
    };
    CooMatrix::from_triplets(n, n, triplets)
}

/// Reads a SNAP-style edge list from a path; see [`read_edge_list`].
///
/// # Errors
///
/// See [`read_edge_list`].
pub fn read_edge_list_file<P: AsRef<Path>>(path: P, min_vertices: usize) -> Result<CooMatrix> {
    read_edge_list(std::fs::File::open(path)?, min_vertices)
}

#[cfg(test)]
mod edge_list_tests {
    use super::*;

    #[test]
    fn basic_edges_with_comments() {
        let text = "# snap header\n% other comment\n0 3\n3 1 2.5\n\n1 0\n";
        let g = read_edge_list(text.as_bytes(), 0).unwrap();
        assert_eq!(g.rows(), 4);
        assert_eq!(g.nnz(), 3);
        let w: Vec<f32> = g.iter().map(|(_, _, v)| v).collect();
        assert!(w.contains(&2.5));
        assert_eq!(w.iter().filter(|v| **v == 1.0).count(), 2);
    }

    #[test]
    fn min_vertices_pads_dimension() {
        let g = read_edge_list("0 1\n".as_bytes(), 10).unwrap();
        assert_eq!(g.rows(), 10);
    }

    #[test]
    fn duplicate_edges_combine() {
        let g = read_edge_list("0 1 1.0\n0 1 2.0\n".as_bytes(), 0).unwrap();
        assert_eq!(g.nnz(), 1);
        assert_eq!(g.entries()[0].val, 3.0);
    }

    #[test]
    fn malformed_lines_error_with_position() {
        match read_edge_list("0 1\nbroken\n".as_bytes(), 0) {
            Err(SparseError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(read_edge_list("0\n".as_bytes(), 0).is_err());
        assert!(read_edge_list("0 1 notaweight\n".as_bytes(), 0).is_err());
    }

    #[test]
    fn empty_input_gives_empty_matrix() {
        let g = read_edge_list("# nothing\n".as_bytes(), 0).unwrap();
        assert_eq!(g.nnz(), 0);
        assert_eq!(g.rows(), 0);
    }

    #[test]
    fn file_roundtrip_via_tempdir() {
        let dir = std::env::temp_dir();
        let path = dir.join("cosparse_edge_list_test.txt");
        std::fs::write(&path, "0 1\n1 2\n2 0\n").unwrap();
        let g = read_edge_list_file(&path, 0).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g.nnz(), 3);
        assert_eq!(g.rows(), 3);
    }
}
