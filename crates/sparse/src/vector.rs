use crate::{Idx, Result, SparseError};
use std::cell::Cell;
use std::ops::{Index, IndexMut};

/// A dense vector: every element stored, used as the frontier
/// representation for the inner-product dataflow (and always for PR/CF).
///
/// The nonzero count is cached after the first [`DenseVector::nnz`] call
/// and invalidated on any mutable access, so iterative runtimes that
/// consult the density every step do not rescan an unchanged vector.
#[derive(Clone)]
pub struct DenseVector<T> {
    data: Vec<T>,
    nnz_cache: Cell<Option<usize>>,
}

impl<T: std::fmt::Debug> std::fmt::Debug for DenseVector<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DenseVector")
            .field("data", &self.data)
            .finish()
    }
}

impl<T: PartialEq> PartialEq for DenseVector<T> {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl<T: Copy> DenseVector<T> {
    /// Creates a vector of `len` copies of `fill`.
    pub fn filled(len: usize, fill: T) -> Self {
        DenseVector {
            data: vec![fill; len],
            nnz_cache: Cell::new(None),
        }
    }

    /// Length (dimension) of the vector.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the dimension is zero.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the underlying storage. Invalidates the cached
    /// nonzero count.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        self.nnz_cache.set(None);
        &mut self.data
    }

    /// Number of entries different from `T::default()`.
    ///
    /// Cached: the first call scans the vector, later calls are O(1)
    /// until a mutable access ([`DenseVector::as_mut_slice`] or
    /// `IndexMut`) invalidates the cache.
    pub fn nnz(&self) -> usize
    where
        T: Default + PartialEq,
    {
        if let Some(n) = self.nnz_cache.get() {
            return n;
        }
        let zero = T::default();
        let n = self.data.iter().filter(|v| **v != zero).count();
        self.nnz_cache.set(Some(n));
        n
    }

    /// Consumes the vector, returning the underlying storage.
    pub fn into_inner(self) -> Vec<T> {
        self.data
    }

    /// Iterates over the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Converts to a sparse vector, keeping entries for which `is_active`
    /// returns true.
    ///
    /// This is the "lightweight vector conversion" of §III-D.2, performed
    /// when the runtime switches from the IP to the OP dataflow. The
    /// returned entries are sorted by index (the scan is in order).
    pub fn to_sparse<F: Fn(&T) -> bool>(&self, is_active: F) -> SparseVector<T> {
        let entries: Vec<(Idx, T)> = self
            .data
            .iter()
            .enumerate()
            .filter(|(_, v)| is_active(v))
            .map(|(i, v)| (i as Idx, *v))
            .collect();
        SparseVector {
            dim: self.data.len(),
            entries,
        }
    }
}

impl<T> From<Vec<T>> for DenseVector<T> {
    fn from(data: Vec<T>) -> Self {
        DenseVector {
            data,
            nnz_cache: Cell::new(None),
        }
    }
}

impl<T> Index<usize> for DenseVector<T> {
    type Output = T;
    fn index(&self, i: usize) -> &T {
        &self.data[i]
    }
}

impl<T> IndexMut<usize> for DenseVector<T> {
    fn index_mut(&mut self, i: usize) -> &mut T {
        self.nnz_cache.set(None);
        &mut self.data[i]
    }
}

impl<T> FromIterator<T> for DenseVector<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        DenseVector {
            data: iter.into_iter().collect(),
            nnz_cache: Cell::new(None),
        }
    }
}

/// A sparse vector: `(index, value)` tuples sorted by strictly increasing
/// index, used as the frontier representation for the outer-product
/// dataflow.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVector<T> {
    dim: usize,
    entries: Vec<(Idx, T)>,
}

impl<T: Copy> SparseVector<T> {
    /// Creates an empty sparse vector of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        SparseVector {
            dim,
            entries: Vec::new(),
        }
    }

    /// Builds from `(index, value)` entries in any order.
    ///
    /// # Errors
    ///
    /// Returns an error if an index is `>= dim` or duplicated.
    pub fn from_entries(dim: usize, mut entries: Vec<(Idx, T)>) -> Result<Self> {
        entries.sort_unstable_by_key(|&(i, _)| i);
        Self::from_sorted(dim, entries)
    }

    /// Builds from entries already sorted by strictly increasing index.
    ///
    /// # Errors
    ///
    /// Returns an error if an index is `>= dim`, or the order is not
    /// strictly increasing (which includes duplicates).
    pub fn from_sorted(dim: usize, entries: Vec<(Idx, T)>) -> Result<Self> {
        for (pos, &(i, _)) in entries.iter().enumerate() {
            if i as usize >= dim {
                return Err(SparseError::VectorIndexOutOfBounds {
                    index: i as usize,
                    dim,
                });
            }
            if pos > 0 && entries[pos - 1].0 >= i {
                return Err(SparseError::UnsortedEntries { position: pos });
            }
        }
        Ok(SparseVector { dim, entries })
    }

    /// Dimension of the vector (not the number of stored entries).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored (nonzero / active) entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `nnz / dim` — the quantity driving every CoSPARSE reconfiguration
    /// decision.
    pub fn density(&self) -> f64 {
        if self.dim == 0 {
            0.0
        } else {
            self.entries.len() as f64 / self.dim as f64
        }
    }

    /// The sorted `(index, value)` entries.
    pub fn entries(&self) -> &[(Idx, T)] {
        &self.entries
    }

    /// Iterates over `(index, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (Idx, T)> + '_ {
        self.entries.iter().copied()
    }

    /// Looks up the value at `index`, if stored.
    pub fn get(&self, index: Idx) -> Option<T> {
        self.entries
            .binary_search_by_key(&index, |&(i, _)| i)
            .ok()
            .map(|pos| self.entries[pos].1)
    }

    /// Converts to a dense vector, writing `background` at missing indices.
    pub fn to_dense(&self, background: T) -> DenseVector<T> {
        let mut data = vec![background; self.dim];
        for &(i, v) in &self.entries {
            data[i as usize] = v;
        }
        DenseVector {
            data,
            nnz_cache: Cell::new(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_roundtrip_through_sparse() {
        let d = DenseVector::from(vec![0.0f32, 1.0, 0.0, 2.0]);
        let s = d.to_sparse(|v| *v != 0.0);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.density(), 0.5);
        assert_eq!(s.to_dense(0.0), d);
    }

    #[test]
    fn sparse_entries_sorted_and_validated() {
        let s = SparseVector::from_entries(5, vec![(3, 1.0f32), (1, 2.0)]).unwrap();
        assert_eq!(s.entries(), &[(1, 2.0), (3, 1.0)]);
        assert!(SparseVector::from_entries(5, vec![(5, 1.0f32)]).is_err());
        assert!(SparseVector::from_entries(5, vec![(2, 1.0f32), (2, 2.0)]).is_err());
        assert!(SparseVector::from_sorted(5, vec![(3, 1.0f32), (1, 2.0)]).is_err());
    }

    #[test]
    fn get_binary_search() {
        let s = SparseVector::from_entries(10, vec![(7, 9.0f32), (2, 4.0)]).unwrap();
        assert_eq!(s.get(2), Some(4.0));
        assert_eq!(s.get(7), Some(9.0));
        assert_eq!(s.get(3), None);
    }

    #[test]
    fn empty_vector_density() {
        let s = SparseVector::<f32>::new(0);
        assert_eq!(s.density(), 0.0);
        let s = SparseVector::<f32>::new(4);
        assert_eq!(s.density(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn dense_index_and_collect() {
        let mut d: DenseVector<i32> = (0..4).collect();
        d[2] = 9;
        assert_eq!(d[2], 9);
        assert_eq!(d.len(), 4);
        assert_eq!(d.into_inner(), vec![0, 1, 9, 3]);
    }

    #[test]
    fn filled_constructor() {
        let d = DenseVector::filled(3, 7u32);
        assert_eq!(d.as_slice(), &[7, 7, 7]);
    }

    #[test]
    fn nnz_cache_invalidated_by_index_mut() {
        let mut d = DenseVector::from(vec![0.0f32, 1.0, 0.0, 2.0]);
        assert_eq!(d.nnz(), 2);
        assert_eq!(d.nnz(), 2); // cached path
        d[0] = 3.0;
        assert_eq!(d.nnz(), 3);
        d[1] = 0.0;
        assert_eq!(d.nnz(), 2);
    }

    #[test]
    fn nnz_cache_invalidated_by_as_mut_slice() {
        let mut d = DenseVector::from(vec![1u32, 0, 0]);
        assert_eq!(d.nnz(), 1);
        d.as_mut_slice()[2] = 5;
        assert_eq!(d.nnz(), 2);
    }

    #[test]
    fn equality_ignores_nnz_cache_state() {
        let a = DenseVector::from(vec![1.0f32, 0.0]);
        let b = DenseVector::from(vec![1.0f32, 0.0]);
        let _ = a.nnz(); // populate a's cache only
        assert_eq!(a, b);
        assert_eq!(b, a);
        let c = a.clone(); // clone carries the cache
        assert_eq!(c.nnz(), 1);
        assert_eq!(c, b);
    }
}
