use crate::{CooMatrix, DenseVector, Idx, Result, SparseError, Triplet};
use std::collections::BTreeMap;

/// Block shapes the fill-ratio probe considers, largest area first.
/// `(1, 1)` is the always-valid fallback (degenerate CSR-of-blocks).
pub const PROBE_SHAPES: [(usize, usize); 5] = [(4, 4), (4, 2), (2, 4), (2, 2), (1, 1)];

/// Minimum fill ratio (`nnz / stored cells`) a probed block shape must
/// reach before it beats the `(1, 1)` fallback.
pub const PROBE_MIN_FILL: f64 = 0.5;

/// An OSKI-style blocked CSR (BCSR) matrix: `r x c` register blocks,
/// blocks stored CSR-fashion by block row with ascending block-column
/// indices.
///
/// One block-column index and one occupancy mask cover up to `r * c`
/// entries, amortizing index traffic the way OSKI's register blocking
/// amortizes index loads — the win grows with the fill ratio, which is
/// why construction probes candidate shapes and falls back to `(1, 1)`
/// when no shape fills at least [`PROBE_MIN_FILL`].
///
/// The per-block occupancy mask keeps the format lossless: explicit
/// zero fill is never confused with stored entries, so COO round-trips
/// preserve the exact nonzero pattern and SpMV skips fill entirely
/// (bit-identical to the unblocked golden model).
#[derive(Debug, Clone, PartialEq)]
pub struct BcsrMatrix {
    rows: usize,
    cols: usize,
    br: usize,
    bc: usize,
    /// Offset of each block row's first block; length `block_rows + 1`.
    block_row_ptr: Vec<usize>,
    /// Block-column index of each block, ascending within a block row.
    block_col: Vec<Idx>,
    /// Occupancy bit `i * bc + j` per block (`r * c <= 16`).
    mask: Vec<u16>,
    /// `block_count * br * bc` values, row-major within each block;
    /// unoccupied cells hold `0.0`.
    values: Vec<f32>,
    nnz: usize,
}

impl BcsrMatrix {
    /// Builds with an explicit `r x c` block shape.
    ///
    /// # Panics
    ///
    /// Panics if `r * c` is 0 or exceeds 16 (the occupancy mask width).
    pub fn with_shape(coo: &CooMatrix, br: usize, bc: usize) -> Self {
        assert!(
            (1..=16).contains(&(br * bc)),
            "block shape {br}x{bc} outside the 16-bit mask"
        );
        let rows = coo.rows();
        let cols = coo.cols();
        let block_rows = rows.div_ceil(br);
        let mut block_row_ptr = vec![0usize; block_rows + 1];
        let mut block_col: Vec<Idx> = Vec::new();
        let mut mask: Vec<u16> = Vec::new();
        let mut values: Vec<f32> = Vec::new();
        // Group entries by block row (entries are row-major, so block
        // rows arrive in order), then lay out each block row's blocks in
        // ascending block-column order.
        let mut at = 0usize;
        let entries = coo.entries();
        for brow in 0..block_rows {
            let row_end = ((brow + 1) * br) as Idx;
            let start = at;
            while at < entries.len() && entries[at].row < row_end {
                at += 1;
            }
            let mut blocks: BTreeMap<Idx, (u16, Vec<f32>)> = BTreeMap::new();
            for t in &entries[start..at] {
                let bcol = t.col / bc as Idx;
                let (m, vals) = blocks
                    .entry(bcol)
                    .or_insert_with(|| (0, vec![0.0f32; br * bc]));
                let i = t.row as usize - brow * br;
                let j = t.col as usize - bcol as usize * bc;
                *m |= 1u16 << (i * bc + j);
                vals[i * bc + j] = t.val;
            }
            for (bcol, (m, vals)) in blocks {
                block_col.push(bcol);
                mask.push(m);
                values.extend_from_slice(&vals);
            }
            block_row_ptr[brow + 1] = block_col.len();
        }
        BcsrMatrix {
            rows,
            cols,
            br,
            bc,
            block_row_ptr,
            block_col,
            mask,
            values,
            nnz: coo.nnz(),
        }
    }

    /// Exact fill ratio `coo` would have when blocked `br x bc`:
    /// `nnz / (block_count * br * bc)`. Returns `0.0` for an empty
    /// matrix. `O(nnz)` — cheap enough to run per candidate shape.
    pub fn fill_probe(coo: &CooMatrix, br: usize, bc: usize) -> f64 {
        if coo.nnz() == 0 {
            return 0.0;
        }
        // Entries are row-major; distinct blocks within a block row are
        // counted through a sorted scan of block coordinates.
        let mut bcols: Vec<Idx> = Vec::new();
        let mut blocks = 0usize;
        let mut cur_brow = Idx::MAX;
        for t in coo.entries() {
            let brow = t.row / br as Idx;
            if brow != cur_brow {
                bcols.sort_unstable();
                bcols.dedup();
                blocks += bcols.len();
                bcols.clear();
                cur_brow = brow;
            }
            bcols.push(t.col / bc as Idx);
        }
        bcols.sort_unstable();
        bcols.dedup();
        blocks += bcols.len();
        coo.nnz() as f64 / (blocks * br * bc) as f64
    }

    /// Picks the block shape for `coo`: the largest-area candidate in
    /// [`PROBE_SHAPES`] whose fill ratio reaches [`PROBE_MIN_FILL`],
    /// falling back to `(1, 1)`.
    pub fn probe_shape(coo: &CooMatrix) -> (usize, usize) {
        for &(r, c) in &PROBE_SHAPES {
            if r * c == 1 || Self::fill_probe(coo, r, c) >= PROBE_MIN_FILL {
                return (r, c);
            }
        }
        (1, 1)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros (fill excluded).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The block shape `(r, c)`.
    pub fn block_shape(&self) -> (usize, usize) {
        (self.br, self.bc)
    }

    /// Number of stored blocks.
    pub fn block_count(&self) -> usize {
        self.block_col.len()
    }

    /// Achieved fill ratio `nnz / (block_count * r * c)`; `0.0` when
    /// empty.
    pub fn fill_ratio(&self) -> f64 {
        if self.block_col.is_empty() {
            0.0
        } else {
            self.nnz as f64 / (self.block_count() * self.br * self.bc) as f64
        }
    }

    /// Per-block-row offsets into [`Self::block_col`]; length
    /// `rows.div_ceil(r) + 1`.
    pub fn block_row_ptr(&self) -> &[usize] {
        &self.block_row_ptr
    }

    /// Block-column indices, ascending within each block row.
    pub fn block_col(&self) -> &[Idx] {
        &self.block_col
    }

    /// Per-block occupancy masks (bit `i * c + j`).
    pub fn mask(&self) -> &[u16] {
        &self.mask
    }

    /// Block value storage (`block_count * r * c`, fill as `0.0`).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Bytes this image occupies in simulated storage: block-row
    /// pointers plus, per block, a column index, a 16-bit mask and the
    /// full `r x c` value slab.
    pub fn stored_bytes(&self) -> usize {
        self.block_row_ptr.len() * 4 + self.block_count() * (4 + 2 + self.br * self.bc * 4)
    }

    /// Stored nonzeros in block row `brow` (mask population).
    pub fn block_row_nnz(&self, brow: usize) -> usize {
        self.mask[self.block_row_ptr[brow]..self.block_row_ptr[brow + 1]]
            .iter()
            .map(|m| m.count_ones() as usize)
            .sum()
    }

    /// Reference dense SpMV `y = A * x`, reducing each destination row
    /// in ascending column order and skipping fill (bit-identical to
    /// [`CooMatrix::spmv_dense`]).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if `x.len() != self.cols()`.
    pub fn spmv_dense(&self, x: &DenseVector<f32>) -> Result<DenseVector<f32>> {
        if x.len() != self.cols {
            return Err(SparseError::ShapeMismatch {
                expected: self.cols,
                actual: x.len(),
                context: "bcsr spmv",
            });
        }
        let mut y = vec![0.0f32; self.rows];
        let block_rows = self.rows.div_ceil(self.br);
        let mut acc = vec![0.0f32; self.br];
        for brow in 0..block_rows {
            acc.fill(0.0);
            for b in self.block_row_ptr[brow]..self.block_row_ptr[brow + 1] {
                let base_col = self.block_col[b] as usize * self.bc;
                let m = self.mask[b];
                let vals = &self.values[b * self.br * self.bc..];
                for i in 0..self.br {
                    for j in 0..self.bc {
                        if m & (1u16 << (i * self.bc + j)) != 0 {
                            acc[i] += vals[i * self.bc + j] * x[base_col + j];
                        }
                    }
                }
            }
            for (i, a) in acc.iter().enumerate() {
                let r = brow * self.br + i;
                if r < self.rows {
                    y[r] = *a;
                }
            }
        }
        Ok(DenseVector::from(y))
    }
}

impl From<&CooMatrix> for BcsrMatrix {
    /// Builds with the shape chosen by [`BcsrMatrix::probe_shape`].
    fn from(coo: &CooMatrix) -> Self {
        let (r, c) = Self::probe_shape(coo);
        Self::with_shape(coo, r, c)
    }
}

impl From<&BcsrMatrix> for CooMatrix {
    fn from(m: &BcsrMatrix) -> Self {
        let mut entries = Vec::with_capacity(m.nnz);
        let block_rows = m.rows.div_ceil(m.br);
        for brow in 0..block_rows {
            // Emit row-major: sweep local rows across the block row's
            // (ascending) blocks so triplets come out sorted.
            for i in 0..m.br {
                for b in m.block_row_ptr[brow]..m.block_row_ptr[brow + 1] {
                    let base_col = m.block_col[b] as usize * m.bc;
                    for j in 0..m.bc {
                        if m.mask[b] & (1u16 << (i * m.bc + j)) != 0 {
                            entries.push(Triplet {
                                row: (brow * m.br + i) as Idx,
                                col: (base_col + j) as Idx,
                                val: m.values[b * m.br * m.bc + i * m.bc + j],
                            });
                        }
                    }
                }
            }
        }
        CooMatrix::from_sorted_triplets(m.rows, m.cols, entries)
            .expect("block walk is sorted and in bounds")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense 2x2 blocks along the diagonal of an 8x8 matrix.
    fn block_diagonal() -> CooMatrix {
        let mut ts = Vec::new();
        for b in 0..4u32 {
            for i in 0..2u32 {
                for j in 0..2u32 {
                    ts.push((b * 2 + i, b * 2 + j, (b * 4 + i * 2 + j + 1) as f32));
                }
            }
        }
        CooMatrix::from_triplets(8, 8, ts).unwrap()
    }

    #[test]
    fn round_trip_is_lossless() {
        let coo = block_diagonal();
        for &(r, c) in &PROBE_SHAPES {
            let b = BcsrMatrix::with_shape(&coo, r, c);
            assert_eq!(CooMatrix::from(&b), coo, "shape {r}x{c}");
        }
    }

    #[test]
    fn probe_picks_dense_blocks() {
        let coo = block_diagonal();
        // 2x2 blocking is a perfect fill; 4x4 blocking of a 2x2 block
        // diagonal stores 2 blocks of 16 cells for 8 entries each (fill
        // 0.5, exactly at threshold and earlier in probe order).
        assert_eq!(BcsrMatrix::fill_probe(&coo, 2, 2), 1.0);
        let b = BcsrMatrix::from(&coo);
        assert!(b.fill_ratio() >= PROBE_MIN_FILL);
        assert_eq!(b.nnz(), 16);
    }

    #[test]
    fn probe_falls_back_on_scattered_matrices() {
        let coo = crate::generate::uniform(64, 64, 80, 9).unwrap();
        assert_eq!(BcsrMatrix::probe_shape(&coo), (1, 1));
    }

    #[test]
    fn spmv_bits_match_coo_golden() {
        let x = DenseVector::from((0..64).map(|i| (i as f32).cos()).collect::<Vec<_>>());
        for seed in 0..3 {
            let coo = crate::generate::uniform(64, 64, 600, seed).unwrap();
            let want = coo.spmv_dense(&x).unwrap();
            for &(r, c) in &PROBE_SHAPES {
                let b = BcsrMatrix::with_shape(&coo, r, c);
                let got = b.spmv_dense(&x).unwrap();
                for (w, g) in want.iter().zip(got.iter()) {
                    assert_eq!(w.to_bits(), g.to_bits(), "shape {r}x{c}");
                }
            }
        }
    }

    #[test]
    fn ragged_edge_rows_are_preserved() {
        // 5 rows blocked 2x2: the last block row covers only row 4.
        let coo = CooMatrix::from_triplets(5, 5, vec![(4, 0, 1.0), (4, 4, 2.0)]).unwrap();
        let b = BcsrMatrix::with_shape(&coo, 2, 2);
        assert_eq!(CooMatrix::from(&b), coo);
        let x = DenseVector::from(vec![1.0f32; 5]);
        assert_eq!(b.spmv_dense(&x).unwrap().as_slice()[4], 3.0);
    }

    #[test]
    fn empty_matrix_degenerates() {
        let coo = CooMatrix::new(0, 0);
        let b = BcsrMatrix::from(&coo);
        assert_eq!(b.block_count(), 0);
        assert_eq!(b.fill_ratio(), 0.0);
        assert_eq!(CooMatrix::from(&b), coo);
    }
}
