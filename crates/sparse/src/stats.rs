//! Matrix statistics used by the reconfiguration heuristics and the
//! benchmark reports (degree skew, density, memory footprints).

use crate::CooMatrix;

/// Summary statistics of a sparse matrix's structure.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixStats {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Number of stored nonzeros.
    pub nnz: usize,
    /// `nnz / (rows * cols)`.
    pub density: f64,
    /// Mean nonzeros per row.
    pub avg_row_nnz: f64,
    /// Largest row.
    pub max_row_nnz: usize,
    /// Number of rows with no nonzeros.
    pub empty_rows: usize,
    /// Number of columns with no nonzeros.
    pub empty_cols: usize,
    /// Gini coefficient of the row-nnz distribution (0 = perfectly
    /// uniform, →1 = all mass in one row). Uniform random matrices land
    /// near 0.3–0.5 at these densities; power-law matrices exceed 0.6.
    pub row_gini: f64,
}

impl MatrixStats {
    /// Computes statistics for a matrix.
    pub fn of(m: &CooMatrix) -> MatrixStats {
        let row_counts = m.row_counts();
        let col_counts = m.col_counts();
        let nnz = m.nnz();
        let rows = m.rows();
        MatrixStats {
            rows,
            cols: m.cols(),
            nnz,
            density: m.density(),
            avg_row_nnz: if rows == 0 {
                0.0
            } else {
                nnz as f64 / rows as f64
            },
            max_row_nnz: row_counts.iter().copied().max().unwrap_or(0),
            empty_rows: row_counts.iter().filter(|&&c| c == 0).count(),
            empty_cols: col_counts.iter().filter(|&&c| c == 0).count(),
            row_gini: gini(&row_counts),
        }
    }

    /// Bytes needed for the COO copy (row, col, value words — the IP
    /// working set the hardware-reconfiguration heuristic sizes against).
    pub fn coo_bytes(&self) -> usize {
        self.nnz * 3 * 4
    }

    /// Bytes needed for the CSC copy (col_ptr + row indices + values).
    pub fn csc_bytes(&self) -> usize {
        (self.cols + 1) * 4 + self.nnz * 2 * 4
    }

    /// Bytes for a dense f32 vector over the columns.
    pub fn dense_vector_bytes(&self) -> usize {
        self.cols * 4
    }
}

/// Gini coefficient of a non-negative distribution.
///
/// Returns 0.0 for empty or all-zero input.
pub fn gini(counts: &[usize]) -> f64 {
    let n = counts.len();
    if n == 0 {
        return 0.0;
    }
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut sorted: Vec<usize> = counts.to_vec();
    sorted.sort_unstable();
    // G = (2 * sum_i i*x_(i) ) / (n * sum x) - (n + 1) / n, with i 1-based.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
        .sum();
    (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{power_law, uniform};

    #[test]
    fn gini_extremes() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0, 0]), 0.0);
        assert!(gini(&[5, 5, 5, 5]).abs() < 1e-12);
        // All mass in one of many rows → close to 1.
        let mut v = vec![0usize; 1000];
        v[0] = 100;
        assert!(gini(&v) > 0.99);
    }

    #[test]
    fn power_law_has_higher_gini_than_uniform() {
        let n = 2048;
        let nnz = 20_000;
        let u = MatrixStats::of(&uniform(n, n, nnz, 1).unwrap());
        let p = MatrixStats::of(&power_law(n, n, nnz, 1.0, 1).unwrap());
        assert!(
            p.row_gini > u.row_gini + 0.15,
            "power-law gini {} vs uniform {}",
            p.row_gini,
            u.row_gini
        );
    }

    #[test]
    fn stats_basic_fields() {
        let m = uniform(100, 200, 400, 2).unwrap();
        let s = MatrixStats::of(&m);
        assert_eq!((s.rows, s.cols, s.nnz), (100, 200, 400));
        assert!((s.density - 400.0 / 20_000.0).abs() < 1e-12);
        assert!((s.avg_row_nnz - 4.0).abs() < 1e-12);
        assert!(s.max_row_nnz >= 4);
        assert_eq!(s.coo_bytes(), 400 * 12);
        assert_eq!(s.csc_bytes(), 201 * 4 + 400 * 8);
        assert_eq!(s.dense_vector_bytes(), 800);
    }

    #[test]
    fn empty_rows_counted() {
        let m = CooMatrix::from_triplets(4, 4, vec![(0, 0, 1.0), (0, 1, 1.0)]).unwrap();
        let s = MatrixStats::of(&m);
        assert_eq!(s.empty_rows, 3);
        assert_eq!(s.empty_cols, 2);
    }
}
