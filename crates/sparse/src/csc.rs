use crate::{CooMatrix, DenseVector, Idx, Result, SparseError, SparseVector};

/// A sparse matrix in Compressed Sparse Column format.
///
/// This is the storage format CoSPARSE's outer-product (OP) dataflow uses:
/// a sparse frontier selects a subset of columns, and each PE merge-sorts
/// the selected columns by row index (§III-A). `col_ptr` gives O(1) access
/// to each column's contiguous `(row, value)` run.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<Idx>,
    values: Vec<f32>,
}

impl CscMatrix {
    /// Builds a CSC matrix from raw arrays.
    ///
    /// # Errors
    ///
    /// Returns an error if `col_ptr` does not have `cols + 1` monotone
    /// entries ending at `row_idx.len()`, if `row_idx` and `values`
    /// lengths differ, or if any row index is out of bounds.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<Idx>,
        values: Vec<f32>,
    ) -> Result<Self> {
        if col_ptr.len() != cols + 1 {
            return Err(SparseError::ShapeMismatch {
                expected: cols + 1,
                actual: col_ptr.len(),
                context: "csc col_ptr length",
            });
        }
        if row_idx.len() != values.len() {
            return Err(SparseError::ShapeMismatch {
                expected: row_idx.len(),
                actual: values.len(),
                context: "csc values length",
            });
        }
        if col_ptr.first() != Some(&0) || col_ptr.last() != Some(&row_idx.len()) {
            return Err(SparseError::ShapeMismatch {
                expected: row_idx.len(),
                actual: *col_ptr.last().unwrap_or(&0),
                context: "csc col_ptr bounds",
            });
        }
        if col_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(SparseError::UnsortedEntries { position: 0 });
        }
        if let Some(&bad) = row_idx.iter().find(|&&r| r as usize >= rows) {
            return Err(SparseError::IndexOutOfBounds {
                row: bad as usize,
                col: 0,
                rows,
                cols,
            });
        }
        Ok(CscMatrix {
            rows,
            cols,
            col_ptr,
            row_idx,
            values,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Fraction of cells that are stored.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// The column pointer array (`cols + 1` entries).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Row indices, column-major.
    pub fn row_idx(&self) -> &[Idx] {
        &self.row_idx
    }

    /// Values, column-major.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Row indices and values of column `c`, sorted by row.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> (&[Idx], &[f32]) {
        let (lo, hi) = (self.col_ptr[c], self.col_ptr[c + 1]);
        (&self.row_idx[lo..hi], &self.values[lo..hi])
    }

    /// Nonzero count of column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col_nnz(&self, c: usize) -> usize {
        self.col_ptr[c + 1] - self.col_ptr[c]
    }

    /// Reference dense SpMV: `y = A * x` (golden model).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if `x.len() != self.cols()`.
    pub fn spmv_dense(&self, x: &DenseVector<f32>) -> Result<DenseVector<f32>> {
        if x.len() != self.cols {
            return Err(SparseError::ShapeMismatch {
                expected: self.cols,
                actual: x.len(),
                context: "csc spmv",
            });
        }
        let mut y = vec![0.0f32; self.rows];
        for c in 0..self.cols {
            let xv = x[c];
            if xv == 0.0 {
                continue;
            }
            let (rows, vals) = self.col(c);
            for (r, v) in rows.iter().zip(vals) {
                y[*r as usize] += v * xv;
            }
        }
        Ok(DenseVector::from(y))
    }

    /// Reference sparse-vector SpMV: `y = A * x` with sparse `x`, sparse `y`.
    ///
    /// Only columns selected by `x`'s nonzeros are touched — exactly the
    /// work-skipping property that makes the outer-product dataflow win
    /// for sparse frontiers.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if `x.dim() != self.cols()`.
    pub fn spmv_sparse(&self, x: &SparseVector<f32>) -> Result<SparseVector<f32>> {
        if x.dim() != self.cols {
            return Err(SparseError::ShapeMismatch {
                expected: self.cols,
                actual: x.dim(),
                context: "csc sparse spmv",
            });
        }
        let mut acc: Vec<(Idx, f32)> = Vec::new();
        for (c, xv) in x.iter() {
            let (rows, vals) = self.col(c as usize);
            for (r, v) in rows.iter().zip(vals) {
                acc.push((*r, v * xv));
            }
        }
        acc.sort_unstable_by_key(|&(r, _)| r);
        let mut merged: Vec<(Idx, f32)> = Vec::with_capacity(acc.len());
        for (r, v) in acc {
            match merged.last_mut() {
                Some((lr, lv)) if *lr == r => *lv += v,
                _ => merged.push((r, v)),
            }
        }
        SparseVector::from_sorted(self.rows, merged)
    }
}

impl From<&CooMatrix> for CscMatrix {
    fn from(coo: &CooMatrix) -> Self {
        let cols = coo.cols();
        let mut col_ptr = vec![0usize; cols + 1];
        for (_, c, _) in coo.iter() {
            col_ptr[c as usize + 1] += 1;
        }
        for i in 0..cols {
            col_ptr[i + 1] += col_ptr[i];
        }
        let mut cursor = col_ptr.clone();
        let mut row_idx = vec![0 as Idx; coo.nnz()];
        let mut values = vec![0.0f32; coo.nnz()];
        // Row-major input order means each column receives its rows in
        // increasing row order: columns come out sorted by row.
        for (r, c, v) in coo.iter() {
            let slot = cursor[c as usize];
            row_idx[slot] = r;
            values[slot] = v;
            cursor[c as usize] += 1;
        }
        CscMatrix {
            rows: coo.rows(),
            cols,
            col_ptr,
            row_idx,
            values,
        }
    }
}

impl From<&CscMatrix> for CooMatrix {
    fn from(csc: &CscMatrix) -> Self {
        let mut triplets = Vec::with_capacity(csc.nnz());
        for c in 0..csc.cols() {
            let (rows, vals) = csc.col(c);
            for (r, v) in rows.iter().zip(vals) {
                triplets.push((*r, c as Idx, *v));
            }
        }
        CooMatrix::from_triplets(csc.rows(), csc.cols(), triplets)
            .expect("csc indices are in bounds by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_coo() -> CooMatrix {
        CooMatrix::from_triplets(
            3,
            4,
            vec![
                (2, 1, 1.0),
                (0, 0, 2.0),
                (0, 3, 3.0),
                (1, 2, 4.0),
                (2, 3, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn coo_roundtrip() {
        let coo = small_coo();
        let csc = CscMatrix::from(&coo);
        assert_eq!(CooMatrix::from(&csc), coo);
    }

    #[test]
    fn columns_sorted_by_row() {
        let csc = CscMatrix::from(&small_coo());
        for c in 0..csc.cols() {
            let (rows, _) = csc.col(c);
            assert!(rows.windows(2).all(|w| w[0] < w[1]), "column {c} unsorted");
        }
    }

    #[test]
    fn col_access() {
        let csc = CscMatrix::from(&small_coo());
        let (rows, vals) = csc.col(3);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[3.0, 5.0]);
        assert_eq!(csc.col_nnz(1), 1);
    }

    #[test]
    fn dense_spmv_matches_coo() {
        let coo = small_coo();
        let csc = CscMatrix::from(&coo);
        let x = DenseVector::from(vec![1.0f32, -1.0, 0.5, 2.0]);
        assert_eq!(
            csc.spmv_dense(&x).unwrap().as_slice(),
            coo.spmv_dense(&x).unwrap().as_slice()
        );
    }

    #[test]
    fn sparse_spmv_matches_dense() {
        let coo = small_coo();
        let csc = CscMatrix::from(&coo);
        let xs = SparseVector::from_entries(4, vec![(1, 2.0f32), (3, -1.0)]).unwrap();
        let xd = xs.to_dense(0.0);
        let yd = csc.spmv_dense(&xd).unwrap();
        let ys = csc.spmv_sparse(&xs).unwrap().to_dense(0.0);
        assert_eq!(yd.as_slice(), ys.as_slice());
    }

    #[test]
    fn sparse_spmv_skips_untouched_columns() {
        let csc = CscMatrix::from(&small_coo());
        let xs = SparseVector::from_entries(4, Vec::<(Idx, f32)>::new()).unwrap();
        let ys = csc.spmv_sparse(&xs).unwrap();
        assert_eq!(ys.nnz(), 0);
    }

    #[test]
    fn from_raw_validates() {
        assert!(CscMatrix::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(CscMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 9], vec![1.0, 1.0]).is_err());
        assert!(CscMatrix::from_raw(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err());
        assert!(CscMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 1.0]).is_ok());
    }
}
