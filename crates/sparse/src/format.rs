use crate::{BcsrMatrix, BitmapCsr, CooMatrix, CscMatrix, CsrMatrix, DenseVector, Result};
use std::fmt;

/// The storage formats the runtime can reconfigure between — the third
/// reconfiguration axis next to software dataflow and hardware config.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FormatKind {
    /// Row-major coordinate triplets (the paper's IP streaming format).
    Coo,
    /// Compressed sparse column (the paper's OP merge format).
    Csc,
    /// Compressed sparse row (host row loops, baselines).
    Csr,
    /// SMASH-style hierarchical-bitmap CSR ([`BitmapCsr`]).
    Bitmap,
    /// OSKI-style blocked CSR ([`BcsrMatrix`]).
    Bcsr,
}

impl FormatKind {
    /// Every supported format, in declaration order.
    pub const ALL: [FormatKind; 5] = [
        FormatKind::Coo,
        FormatKind::Csc,
        FormatKind::Csr,
        FormatKind::Bitmap,
        FormatKind::Bcsr,
    ];

    /// Short lowercase name (stable; used in bench workload labels).
    pub fn name(self) -> &'static str {
        match self {
            FormatKind::Coo => "coo",
            FormatKind::Csc => "csc",
            FormatKind::Csr => "csr",
            FormatKind::Bitmap => "bitmap",
            FormatKind::Bcsr => "bcsr",
        }
    }
}

impl fmt::Display for FormatKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A sparse matrix stored in one concrete [`FormatKind`], behind one
/// API: shape/nnz accessors, lossless COO round-trip, and a reference
/// SpMV that is `to_bits`-identical to the COO golden model in every
/// format (all five reduce each destination row in ascending source
/// order).
#[derive(Debug, Clone, PartialEq)]
pub enum StoredMatrix {
    /// Coordinate triplets.
    Coo(CooMatrix),
    /// Compressed sparse column.
    Csc(CscMatrix),
    /// Compressed sparse row.
    Csr(CsrMatrix),
    /// Hierarchical-bitmap CSR.
    Bitmap(BitmapCsr),
    /// Blocked CSR.
    Bcsr(BcsrMatrix),
}

impl StoredMatrix {
    /// Converts `coo` into the requested storage format.
    pub fn from_coo(coo: &CooMatrix, kind: FormatKind) -> Self {
        match kind {
            FormatKind::Coo => StoredMatrix::Coo(coo.clone()),
            FormatKind::Csc => StoredMatrix::Csc(CscMatrix::from(coo)),
            FormatKind::Csr => StoredMatrix::Csr(CsrMatrix::from(coo)),
            FormatKind::Bitmap => StoredMatrix::Bitmap(BitmapCsr::from(coo)),
            FormatKind::Bcsr => StoredMatrix::Bcsr(BcsrMatrix::from(coo)),
        }
    }

    /// Which format this matrix is stored in.
    pub fn kind(&self) -> FormatKind {
        match self {
            StoredMatrix::Coo(_) => FormatKind::Coo,
            StoredMatrix::Csc(_) => FormatKind::Csc,
            StoredMatrix::Csr(_) => FormatKind::Csr,
            StoredMatrix::Bitmap(_) => FormatKind::Bitmap,
            StoredMatrix::Bcsr(_) => FormatKind::Bcsr,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        match self {
            StoredMatrix::Coo(m) => m.rows(),
            StoredMatrix::Csc(m) => m.rows(),
            StoredMatrix::Csr(m) => m.rows(),
            StoredMatrix::Bitmap(m) => m.rows(),
            StoredMatrix::Bcsr(m) => m.rows(),
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        match self {
            StoredMatrix::Coo(m) => m.cols(),
            StoredMatrix::Csc(m) => m.cols(),
            StoredMatrix::Csr(m) => m.cols(),
            StoredMatrix::Bitmap(m) => m.cols(),
            StoredMatrix::Bcsr(m) => m.cols(),
        }
    }

    /// Number of stored nonzeros (fill never counts).
    pub fn nnz(&self) -> usize {
        match self {
            StoredMatrix::Coo(m) => m.nnz(),
            StoredMatrix::Csc(m) => m.nnz(),
            StoredMatrix::Csr(m) => m.nnz(),
            StoredMatrix::Bitmap(m) => m.nnz(),
            StoredMatrix::Bcsr(m) => m.nnz(),
        }
    }

    /// Converts back to canonical row-major COO (lossless for every
    /// format).
    pub fn to_coo(&self) -> CooMatrix {
        match self {
            StoredMatrix::Coo(m) => m.clone(),
            StoredMatrix::Csc(m) => CooMatrix::from(m),
            StoredMatrix::Csr(m) => CooMatrix::from(m),
            StoredMatrix::Bitmap(m) => CooMatrix::from(m),
            StoredMatrix::Bcsr(m) => CooMatrix::from(m),
        }
    }

    /// Reference dense SpMV `y = A * x` in whichever format is stored;
    /// bit-identical across formats.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SparseError::ShapeMismatch`] on a wrong-length
    /// `x`.
    pub fn spmv_dense(&self, x: &DenseVector<f32>) -> Result<DenseVector<f32>> {
        match self {
            StoredMatrix::Coo(m) => m.spmv_dense(x),
            StoredMatrix::Csc(m) => m.spmv_dense(x),
            StoredMatrix::Csr(m) => m.spmv_dense(x),
            StoredMatrix::Bitmap(m) => m.spmv_dense(x),
            StoredMatrix::Bcsr(m) => m.spmv_dense(x),
        }
    }

    /// Bytes of simulated storage this format occupies (4-byte words:
    /// indices, pointers, bitmap words, values; COO triplets are the
    /// paper's packed 12 bytes).
    pub fn stored_bytes(&self) -> usize {
        match self {
            StoredMatrix::Coo(m) => m.nnz() * 12,
            StoredMatrix::Csc(m) => (m.cols() + 1) * 4 + m.nnz() * 8,
            StoredMatrix::Csr(m) => (m.rows() + 1) * 4 + m.nnz() * 8,
            StoredMatrix::Bitmap(m) => m.stored_bytes(),
            StoredMatrix::Bcsr(m) => m.stored_bytes(),
        }
    }
}

/// Cheap structural probe feeding the format decision tree: how well
/// the matrix suits each candidate format, computed once per graph in
/// `O(nnz)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FormatProbe {
    /// Average stored entries per occupied 32-column segment
    /// ([`BitmapCsr::segment_occupancy`] without building the format).
    pub seg_occupancy: f64,
    /// Best blocked fill ratio found by [`BcsrMatrix::probe_shape`].
    pub block_fill: f64,
    /// The block shape achieving `block_fill`.
    pub block_shape: (usize, usize),
}

impl FormatProbe {
    /// Probes `coo` for segment clustering and blockability.
    pub fn of(coo: &CooMatrix) -> Self {
        let mut segs = 0usize;
        let mut last = None;
        for t in coo.entries() {
            let key = (t.row, t.col / crate::bitmap::SEG_COLS as crate::Idx);
            if last != Some(key) {
                segs += 1;
                last = Some(key);
            }
        }
        let seg_occupancy = if segs == 0 {
            0.0
        } else {
            coo.nnz() as f64 / segs as f64
        };
        let block_shape = BcsrMatrix::probe_shape(coo);
        let block_fill = if block_shape == (1, 1) {
            // (1, 1) means no candidate reached the threshold; report
            // the best real blocking so the decision tree sees a value
            // below the crossover rather than a vacuous 1.0.
            crate::bcsr::PROBE_SHAPES
                .iter()
                .filter(|&&(r, c)| r * c > 1)
                .map(|&(r, c)| BcsrMatrix::fill_probe(coo, r, c))
                .fold(0.0, f64::max)
        } else {
            BcsrMatrix::fill_probe(coo, block_shape.0, block_shape.1)
        };
        FormatProbe {
            seg_occupancy,
            block_fill,
            block_shape,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooMatrix {
        crate::generate::uniform(40, 50, 300, 17).unwrap()
    }

    #[test]
    fn every_format_round_trips() {
        let coo = sample();
        for kind in FormatKind::ALL {
            let m = StoredMatrix::from_coo(&coo, kind);
            assert_eq!(m.kind(), kind);
            assert_eq!((m.rows(), m.cols(), m.nnz()), (40, 50, 300));
            assert_eq!(m.to_coo(), coo, "round trip through {kind}");
        }
    }

    #[test]
    fn spmv_bits_identical_across_formats() {
        let coo = sample();
        let x = DenseVector::from((0..50).map(|i| 1.0 + (i as f32) * 0.25).collect::<Vec<_>>());
        let want = coo.spmv_dense(&x).unwrap();
        for kind in FormatKind::ALL {
            let got = StoredMatrix::from_coo(&coo, kind).spmv_dense(&x).unwrap();
            for (w, g) in want.iter().zip(got.iter()) {
                assert_eq!(w.to_bits(), g.to_bits(), "format {kind}");
            }
        }
    }

    #[test]
    fn probe_reflects_structure() {
        // Scattered uniform: no blocking, near-singleton segments.
        let p = FormatProbe::of(&crate::generate::uniform(64, 4096, 300, 3).unwrap());
        assert!(p.seg_occupancy < 1.5, "occupancy {}", p.seg_occupancy);
        assert_eq!(p.block_shape, (1, 1));

        // Dense band: every segment packed, rows blocked tightly.
        let mut ts = Vec::new();
        for r in 0..32u32 {
            for c in 0..32u32 {
                ts.push((r, c, 1.0));
            }
        }
        let dense = CooMatrix::from_triplets(32, 32, ts).unwrap();
        let p = FormatProbe::of(&dense);
        assert_eq!(p.seg_occupancy, 32.0);
        assert_eq!(p.block_fill, 1.0);
        assert!(p.block_shape.0 * p.block_shape.1 > 1);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(FormatKind::Bitmap.name(), "bitmap");
        assert_eq!(FormatKind::Bcsr.to_string(), "bcsr");
    }
}
