use crate::{CooMatrix, DenseVector, Idx, Result, SparseError};

/// A sparse matrix in Compressed Sparse Row format.
///
/// Used by the CPU/Ligra-style baselines (MKL and Ligra both consume CSR)
/// and as the workhorse format for row partitioning: `row_ptr` makes the
/// nnz-balanced prefix-scan partitioning of §III-B an `O(P log nnz)`
/// operation.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<Idx>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw arrays.
    ///
    /// # Errors
    ///
    /// Returns an error if `row_ptr` does not have `rows + 1` monotone
    /// entries ending at `col_idx.len()`, if `col_idx` and `values`
    /// lengths differ, or if any column index is out of bounds.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<Idx>,
        values: Vec<f32>,
    ) -> Result<Self> {
        if row_ptr.len() != rows + 1 {
            return Err(SparseError::ShapeMismatch {
                expected: rows + 1,
                actual: row_ptr.len(),
                context: "csr row_ptr length",
            });
        }
        if col_idx.len() != values.len() {
            return Err(SparseError::ShapeMismatch {
                expected: col_idx.len(),
                actual: values.len(),
                context: "csr values length",
            });
        }
        if row_ptr.first() != Some(&0) || row_ptr.last() != Some(&col_idx.len()) {
            return Err(SparseError::ShapeMismatch {
                expected: col_idx.len(),
                actual: *row_ptr.last().unwrap_or(&0),
                context: "csr row_ptr bounds",
            });
        }
        if row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(SparseError::UnsortedEntries { position: 0 });
        }
        if let Some(&bad) = col_idx.iter().find(|&&c| c as usize >= cols) {
            return Err(SparseError::IndexOutOfBounds {
                row: 0,
                col: bad as usize,
                rows,
                cols,
            });
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Fraction of cells that are stored.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// The row pointer array (`rows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column indices, row-major.
    pub fn col_idx(&self) -> &[Idx] {
        &self.col_idx
    }

    /// Values, row-major.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Column indices and values of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> (&[Idx], &[f32]) {
        let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Nonzero count of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Out-degree of every row (alias for per-row nnz), used by PageRank's
    /// `V[src] / deg(src)` matrix op.
    pub fn out_degrees(&self) -> Vec<usize> {
        (0..self.rows).map(|r| self.row_nnz(r)).collect()
    }

    /// Reference dense SpMV: `y = A * x` (golden model; not on a timing path).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if `x.len() != self.cols()`.
    pub fn spmv_dense(&self, x: &DenseVector<f32>) -> Result<DenseVector<f32>> {
        if x.len() != self.cols {
            return Err(SparseError::ShapeMismatch {
                expected: self.cols,
                actual: x.len(),
                context: "csr spmv",
            });
        }
        let mut y = vec![0.0f32; self.rows];
        for (r, out) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(r);
            let mut acc = 0.0f32;
            for (c, v) in cols.iter().zip(vals) {
                acc += v * x[*c as usize];
            }
            *out = acc;
        }
        Ok(DenseVector::from(y))
    }
}

impl From<&CooMatrix> for CsrMatrix {
    fn from(coo: &CooMatrix) -> Self {
        let rows = coo.rows();
        let mut row_ptr = vec![0usize; rows + 1];
        for (r, _, _) in coo.iter() {
            row_ptr[r as usize + 1] += 1;
        }
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        // COO is canonically row-major sorted, so a single pass suffices.
        let mut col_idx = Vec::with_capacity(coo.nnz());
        let mut values = Vec::with_capacity(coo.nnz());
        for (_, c, v) in coo.iter() {
            col_idx.push(c);
            values.push(v);
        }
        CsrMatrix {
            rows,
            cols: coo.cols(),
            row_ptr,
            col_idx,
            values,
        }
    }
}

impl From<&CsrMatrix> for CooMatrix {
    fn from(csr: &CsrMatrix) -> Self {
        let mut triplets = Vec::with_capacity(csr.nnz());
        for r in 0..csr.rows() {
            let (cols, vals) = csr.row(r);
            for (c, v) in cols.iter().zip(vals) {
                triplets.push(crate::Triplet {
                    row: r as Idx,
                    col: *c,
                    val: *v,
                });
            }
        }
        CooMatrix::from_sorted_triplets(csr.rows(), csr.cols(), triplets)
            .expect("csr rows are sorted by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_coo() -> CooMatrix {
        CooMatrix::from_triplets(
            3,
            4,
            vec![(2, 1, 1.0), (0, 0, 2.0), (0, 3, 3.0), (1, 2, 4.0)],
        )
        .unwrap()
    }

    #[test]
    fn coo_roundtrip() {
        let coo = small_coo();
        let csr = CsrMatrix::from(&coo);
        assert_eq!(CooMatrix::from(&csr), coo);
    }

    #[test]
    fn row_access() {
        let csr = CsrMatrix::from(&small_coo());
        let (cols, vals) = csr.row(0);
        assert_eq!(cols, &[0, 3]);
        assert_eq!(vals, &[2.0, 3.0]);
        assert_eq!(csr.row_nnz(1), 1);
        assert_eq!(csr.out_degrees(), vec![2, 1, 1]);
    }

    #[test]
    fn spmv_matches_coo() {
        let coo = small_coo();
        let csr = CsrMatrix::from(&coo);
        let x = DenseVector::from(vec![1.0f32, -1.0, 0.5, 2.0]);
        assert_eq!(
            csr.spmv_dense(&x).unwrap().as_slice(),
            coo.spmv_dense(&x).unwrap().as_slice()
        );
    }

    #[test]
    fn from_raw_validates() {
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // row_ptr ending short of nnz.
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 3], vec![0, 1], vec![1.0, 1.0]).is_err());
        // trailing empty row is perfectly legal.
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 1], vec![0], vec![1.0]).is_ok());
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 5], vec![1.0, 1.0]).is_err());
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err());
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 1.0]).is_ok());
    }

    #[test]
    fn empty_rows_are_fine() {
        let coo = CooMatrix::from_triplets(4, 4, vec![(3, 0, 1.0)]).unwrap();
        let csr = CsrMatrix::from(&coo);
        assert_eq!(csr.row_nnz(0), 0);
        assert_eq!(csr.row_nnz(3), 1);
    }
}
