//! Static workload-balancing partitions (§III-B of the paper).
//!
//! Both SpMV dataflows first split the matrix into *row partitions with
//! the same number of nonzero elements* — one per tile (OP) or per PE
//! (IP) — so every worker receives a similar amount of work regardless
//! of degree skew. The inner-product dataflow additionally tiles columns
//! into *vblocks* sized so the corresponding input-vector segment fits
//! in the shared scratchpad.

use crate::{CooMatrix, CsrMatrix};
use std::ops::Range;

/// A partition of matrix rows into contiguous ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowPartition {
    ranges: Vec<Range<usize>>,
    nnz_per_part: Vec<usize>,
}

impl RowPartition {
    /// Splits rows into `parts` contiguous ranges with approximately
    /// equal nonzero counts (the paper's static balancing scheme).
    ///
    /// ```
    /// use sparse::partition::RowPartition;
    ///
    /// // The hot row (10 nnz) lands in the second partition, which
    /// // then takes nothing else it can avoid.
    /// let p = RowPartition::nnz_balanced(&[1, 1, 10, 1, 1], 2);
    /// assert_eq!(p.range(0), 0..2);
    /// assert_eq!(p.part_nnz(1), 12);
    /// ```
    ///
    /// Works from per-row nonzero counts, so it accepts any format.
    /// Empty parts are possible when `parts > rows` or when single rows
    /// exceed the nnz budget; ranges always cover all rows exactly once.
    ///
    /// # Panics
    ///
    /// Panics if `parts == 0`.
    pub fn nnz_balanced(row_counts: &[usize], parts: usize) -> Self {
        assert!(parts > 0, "cannot partition into zero parts");
        let total: usize = row_counts.iter().sum();
        let mut ranges = Vec::with_capacity(parts);
        let mut nnz_per_part = Vec::with_capacity(parts);
        let mut row = 0usize;
        let mut consumed = 0usize;
        for p in 0..parts {
            let start = row;
            // Cumulative target: keeps rounding errors from piling onto
            // the last part.
            let target = total * (p + 1) / parts;
            let mut part_nnz = 0usize;
            while row < row_counts.len() && (consumed < target || p == parts - 1) {
                // Greedy: take the row if it moves us toward the target;
                // stop once adding it would overshoot more than it helps,
                // unless the part is still empty.
                let next = row_counts[row];
                if consumed + next > target && part_nnz > 0 && p != parts - 1 {
                    let overshoot = consumed + next - target;
                    let undershoot = target - consumed;
                    if overshoot >= undershoot {
                        break;
                    }
                }
                consumed += next;
                part_nnz += next;
                row += 1;
            }
            ranges.push(start..row);
            nnz_per_part.push(part_nnz);
        }
        // The final part always absorbs any remaining rows (handled by
        // the `p == parts - 1` clause above).
        debug_assert_eq!(row, row_counts.len());
        RowPartition {
            ranges,
            nnz_per_part,
        }
    }

    /// Naive partitioning into `parts` ranges with equal *row* counts
    /// (ignoring nnz). This is the "w/o partition" ablation baseline of
    /// Figure 7: skewed matrices leave some workers nearly idle.
    ///
    /// # Panics
    ///
    /// Panics if `parts == 0`.
    pub fn equal_rows(row_counts: &[usize], parts: usize) -> Self {
        assert!(parts > 0, "cannot partition into zero parts");
        let rows = row_counts.len();
        let mut ranges = Vec::with_capacity(parts);
        let mut nnz_per_part = Vec::with_capacity(parts);
        for p in 0..parts {
            let start = rows * p / parts;
            let end = rows * (p + 1) / parts;
            ranges.push(start..end);
            nnz_per_part.push(row_counts[start..end].iter().sum());
        }
        RowPartition {
            ranges,
            nnz_per_part,
        }
    }

    /// Convenience: nnz-balanced partition of a CSR matrix.
    pub fn nnz_balanced_csr(m: &CsrMatrix, parts: usize) -> Self {
        let counts: Vec<usize> = (0..m.rows()).map(|r| m.row_nnz(r)).collect();
        Self::nnz_balanced(&counts, parts)
    }

    /// Convenience: nnz-balanced partition of a COO matrix.
    pub fn nnz_balanced_coo(m: &CooMatrix, parts: usize) -> Self {
        Self::nnz_balanced(&m.row_counts(), parts)
    }

    /// Number of parts.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True if there are no parts (never constructed this way).
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The row range of part `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= self.len()`.
    pub fn range(&self, p: usize) -> Range<usize> {
        self.ranges[p].clone()
    }

    /// Nonzero count assigned to part `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= self.len()`.
    pub fn part_nnz(&self, p: usize) -> usize {
        self.nnz_per_part[p]
    }

    /// Iterates over the row ranges.
    pub fn iter(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        self.ranges.iter().cloned()
    }

    /// Load imbalance: `max part nnz / mean part nnz` (1.0 = perfect).
    /// Returns 1.0 for an all-empty matrix.
    pub fn imbalance(&self) -> f64 {
        let total: usize = self.nnz_per_part.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.len() as f64;
        let max = *self.nnz_per_part.iter().max().expect("non-empty") as f64;
        max / mean
    }

    /// Maps part `p`'s row range to the contiguous triplet range inside a
    /// canonical (row-major sorted) COO matrix.
    ///
    /// # Panics
    ///
    /// Panics if `p >= self.len()`.
    pub fn triplet_range(&self, coo: &CooMatrix, p: usize) -> Range<usize> {
        let rows = self.range(p);
        let entries = coo.entries();
        let start = entries.partition_point(|t| (t.row as usize) < rows.start);
        let end = entries.partition_point(|t| (t.row as usize) < rows.end);
        start..end
    }
}

/// A partition of matrix columns into fixed-width vertical blocks
/// (vblocks), sized so each block's input-vector segment fits in the
/// shared scratchpad (§III-A, Figure 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VBlocks {
    cols: usize,
    width: usize,
}

impl VBlocks {
    /// Creates vblocks of `width` columns over a `cols`-column matrix.
    ///
    /// `width` is normally the number of vector elements that fit in the
    /// L1 SPM assigned to vector storage.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(cols: usize, width: usize) -> Self {
        assert!(width > 0, "vblock width must be positive");
        VBlocks { cols, width }
    }

    /// A single vblock covering all columns (vblocking disabled — the
    /// Figure 7 "w/o partition" variant for the vector dimension).
    pub fn whole(cols: usize) -> Self {
        VBlocks {
            cols,
            width: cols.max(1),
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        if self.cols == 0 {
            0
        } else {
            self.cols.div_ceil(self.width)
        }
    }

    /// True if the matrix has no columns.
    pub fn is_empty(&self) -> bool {
        self.cols == 0
    }

    /// Column range of block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b >= self.len()`.
    pub fn range(&self, b: usize) -> Range<usize> {
        assert!(b < self.len(), "vblock index {b} out of range");
        let start = b * self.width;
        start..(start + self.width).min(self.cols)
    }

    /// Block index owning column `c`.
    pub fn block_of(&self, c: usize) -> usize {
        c / self.width
    }

    /// Iterates over all block column ranges.
    pub fn iter(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        (0..self.len()).map(|b| self.range(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{power_law, uniform};

    #[test]
    fn nnz_balanced_covers_all_rows() {
        let counts = vec![5, 0, 3, 9, 1, 1, 7, 2];
        let p = RowPartition::nnz_balanced(&counts, 3);
        assert_eq!(p.len(), 3);
        let mut covered = Vec::new();
        for r in p.iter() {
            covered.extend(r);
        }
        assert_eq!(covered, (0..8).collect::<Vec<_>>());
        let total: usize = (0..3).map(|i| p.part_nnz(i)).sum();
        assert_eq!(total, 28);
    }

    #[test]
    fn nnz_balanced_beats_equal_rows_on_skew() {
        let m = power_law(2000, 2000, 30_000, 1.1, 4).unwrap();
        let counts = m.row_counts();
        let bal = RowPartition::nnz_balanced(&counts, 16);
        let naive = RowPartition::equal_rows(&counts, 16);
        assert!(
            bal.imbalance() < naive.imbalance(),
            "balanced {} vs naive {}",
            bal.imbalance(),
            naive.imbalance()
        );
        assert!(
            bal.imbalance() < 1.5,
            "balanced imbalance {}",
            bal.imbalance()
        );
    }

    #[test]
    fn nnz_balanced_on_uniform_is_tight() {
        let m = uniform(4096, 4096, 60_000, 2).unwrap();
        let p = RowPartition::nnz_balanced_coo(&m, 32);
        assert!(p.imbalance() < 1.05, "imbalance {}", p.imbalance());
    }

    #[test]
    fn more_parts_than_rows() {
        let counts = vec![4, 4];
        let p = RowPartition::nnz_balanced(&counts, 5);
        assert_eq!(p.len(), 5);
        let covered: usize = p.iter().map(|r| r.len()).sum();
        assert_eq!(covered, 2);
    }

    #[test]
    fn all_empty_rows() {
        let counts = vec![0; 10];
        let p = RowPartition::nnz_balanced(&counts, 4);
        assert_eq!(p.imbalance(), 1.0);
        let covered: usize = p.iter().map(|r| r.len()).sum();
        assert_eq!(covered, 10);
    }

    #[test]
    fn triplet_range_is_contiguous_and_correct() {
        let m = uniform(100, 100, 500, 9).unwrap();
        let p = RowPartition::nnz_balanced_coo(&m, 7);
        let mut total = 0usize;
        let mut prev_end = 0usize;
        for i in 0..p.len() {
            let tr = p.triplet_range(&m, i);
            assert_eq!(tr.start, prev_end, "triplet ranges must tile the matrix");
            prev_end = tr.end;
            assert_eq!(tr.len(), p.part_nnz(i));
            for t in &m.entries()[tr.clone()] {
                assert!(p.range(i).contains(&(t.row as usize)));
            }
            total += tr.len();
        }
        assert_eq!(total, m.nnz());
    }

    #[test]
    fn vblocks_tile_columns() {
        let vb = VBlocks::new(10, 4);
        assert_eq!(vb.len(), 3);
        assert_eq!(vb.range(0), 0..4);
        assert_eq!(vb.range(2), 8..10);
        assert_eq!(vb.block_of(9), 2);
        let covered: usize = vb.iter().map(|r| r.len()).sum();
        assert_eq!(covered, 10);
    }

    #[test]
    fn whole_vblock() {
        let vb = VBlocks::whole(100);
        assert_eq!(vb.len(), 1);
        assert_eq!(vb.range(0), 0..100);
    }

    #[test]
    fn zero_cols() {
        let vb = VBlocks::new(0, 4);
        assert_eq!(vb.len(), 0);
        assert!(vb.is_empty());
    }
}
