use crate::{DenseVector, Idx, Result, SparseError};

/// One nonzero element: `(row, col, value)`.
///
/// The inner-product kernel streams these sequentially, which is why the
/// paper stores the matrix "in row-major COO format to facilitate spatial
/// locality" (§III-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triplet {
    /// Row index.
    pub row: Idx,
    /// Column index.
    pub col: Idx,
    /// Value (edge weight).
    pub val: f32,
}

/// A sparse matrix in coordinate (COO) format, canonically sorted
/// row-major (by row, then column) with duplicate entries combined.
///
/// This is the storage format CoSPARSE's inner-product (IP) dataflow uses:
/// each PE walks a contiguous slice of triplets, so matrix accesses are
/// perfectly sequential and only the frontier-vector accesses are random.
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<Triplet>,
}

impl CooMatrix {
    /// Creates an empty matrix of the given shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        CooMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Builds a canonical COO matrix from `(row, col, value)` triplets.
    ///
    /// Triplets may arrive in any order; duplicates are summed. Entries
    /// whose value is exactly `0.0` are kept (graph adjacency matrices
    /// use the *pattern*, and the paper's BFS edges are unweighted).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if any triplet lies
    /// outside `rows x cols`.
    pub fn from_triplets(rows: usize, cols: usize, triplets: Vec<(Idx, Idx, f32)>) -> Result<Self> {
        let mut entries: Vec<Triplet> = Vec::with_capacity(triplets.len());
        for (row, col, val) in triplets {
            if row as usize >= rows || col as usize >= cols {
                return Err(SparseError::IndexOutOfBounds {
                    row: row as usize,
                    col: col as usize,
                    rows,
                    cols,
                });
            }
            entries.push(Triplet { row, col, val });
        }
        entries.sort_unstable_by_key(|a| (a.row, a.col));
        // Combine duplicates by summation.
        let mut combined: Vec<Triplet> = Vec::with_capacity(entries.len());
        for t in entries {
            match combined.last_mut() {
                Some(last) if last.row == t.row && last.col == t.col => last.val += t.val,
                _ => combined.push(t),
            }
        }
        Ok(CooMatrix {
            rows,
            cols,
            entries: combined,
        })
    }

    /// Builds a canonical COO matrix from pre-sorted, duplicate-free
    /// triplets without re-sorting.
    ///
    /// # Errors
    ///
    /// Returns an error if the triplets are not strictly increasing in
    /// `(row, col)` order or lie outside the shape.
    pub fn from_sorted_triplets(rows: usize, cols: usize, entries: Vec<Triplet>) -> Result<Self> {
        for (i, t) in entries.iter().enumerate() {
            if t.row as usize >= rows || t.col as usize >= cols {
                return Err(SparseError::IndexOutOfBounds {
                    row: t.row as usize,
                    col: t.col as usize,
                    rows,
                    cols,
                });
            }
            if i > 0 {
                let p = &entries[i - 1];
                if (p.row, p.col) >= (t.row, t.col) {
                    return Err(SparseError::UnsortedEntries { position: i });
                }
            }
        }
        Ok(CooMatrix {
            rows,
            cols,
            entries,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzero entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Fraction of cells that are stored: `nnz / (rows * cols)`.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// The canonical row-major entry slice.
    pub fn entries(&self) -> &[Triplet] {
        &self.entries
    }

    /// Iterates over entries as `(row, col, value)` tuples.
    pub fn iter(&self) -> impl Iterator<Item = (Idx, Idx, f32)> + '_ {
        self.entries.iter().map(|t| (t.row, t.col, t.val))
    }

    /// Returns the transpose (entries re-sorted into the transposed
    /// row-major order).
    pub fn transpose(&self) -> CooMatrix {
        let mut entries: Vec<Triplet> = self
            .entries
            .iter()
            .map(|t| Triplet {
                row: t.col,
                col: t.row,
                val: t.val,
            })
            .collect();
        entries.sort_unstable_by_key(|a| (a.row, a.col));
        CooMatrix {
            rows: self.cols,
            cols: self.rows,
            entries,
        }
    }

    /// Reference dense SpMV: `y = A * x`.
    ///
    /// This is the functional golden model used to validate the kernel
    /// implementations; it is not on any simulated timing path.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if `x.len() != self.cols()`.
    pub fn spmv_dense(&self, x: &DenseVector<f32>) -> Result<DenseVector<f32>> {
        if x.len() != self.cols {
            return Err(SparseError::ShapeMismatch {
                expected: self.cols,
                actual: x.len(),
                context: "coo spmv",
            });
        }
        let mut y = vec![0.0f32; self.rows];
        for t in &self.entries {
            y[t.row as usize] += t.val * x[t.col as usize];
        }
        Ok(DenseVector::from(y))
    }

    /// Per-row nonzero counts.
    pub fn row_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.rows];
        for t in &self.entries {
            counts[t.row as usize] += 1;
        }
        counts
    }

    /// Per-column nonzero counts (out of place; `O(nnz)`).
    pub fn col_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.cols];
        for t in &self.entries {
            counts[t.col as usize] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CooMatrix {
        CooMatrix::from_triplets(
            3,
            4,
            vec![(2, 1, 1.0), (0, 0, 2.0), (0, 3, 3.0), (1, 2, 4.0)],
        )
        .unwrap()
    }

    #[test]
    fn from_triplets_sorts_row_major() {
        let m = small();
        let order: Vec<(Idx, Idx)> = m.iter().map(|(r, c, _)| (r, c)).collect();
        assert_eq!(order, vec![(0, 0), (0, 3), (1, 2), (2, 1)]);
    }

    #[test]
    fn duplicates_are_summed() {
        let m = CooMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, 2.5)]).unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.entries()[0].val, 3.5);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let err = CooMatrix::from_triplets(2, 2, vec![(2, 0, 1.0)]).unwrap_err();
        assert!(matches!(err, SparseError::IndexOutOfBounds { row: 2, .. }));
    }

    #[test]
    fn from_sorted_rejects_unsorted() {
        let ts = vec![
            Triplet {
                row: 1,
                col: 0,
                val: 1.0,
            },
            Triplet {
                row: 0,
                col: 0,
                val: 1.0,
            },
        ];
        let err = CooMatrix::from_sorted_triplets(2, 2, ts).unwrap_err();
        assert!(matches!(err, SparseError::UnsortedEntries { position: 1 }));
    }

    #[test]
    fn transpose_involution() {
        let m = small();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_swaps_shape() {
        let t = small().transpose();
        assert_eq!((t.rows(), t.cols()), (4, 3));
        assert_eq!(t.nnz(), 4);
    }

    #[test]
    fn spmv_matches_hand_computation() {
        let m = small();
        let x = DenseVector::from(vec![1.0f32, 2.0, 3.0, 4.0]);
        let y = m.spmv_dense(&x).unwrap();
        assert_eq!(y.as_slice(), &[2.0 + 12.0, 12.0, 2.0]);
    }

    #[test]
    fn spmv_shape_mismatch() {
        let m = small();
        let x = DenseVector::from(vec![1.0f32; 3]);
        assert!(m.spmv_dense(&x).is_err());
    }

    #[test]
    fn density_and_counts() {
        let m = small();
        assert!((m.density() - 4.0 / 12.0).abs() < 1e-12);
        assert_eq!(m.row_counts(), vec![2, 1, 1]);
        assert_eq!(m.col_counts(), vec![1, 1, 1, 1]);
    }

    #[test]
    fn empty_matrix_density_is_zero() {
        assert_eq!(CooMatrix::new(0, 0).density(), 0.0);
        assert_eq!(CooMatrix::new(3, 3).density(), 0.0);
    }
}
