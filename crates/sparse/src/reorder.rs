//! Locality-aware row/column reordering — the fourth reconfiguration
//! axis.
//!
//! A sparse matrix arrives in whatever order its generator (or its
//! on-disk file) produced, and that arrival order decides how the
//! x-vector and matrix lines are revisited during SpMV. The
//! hypergraph-partitioning line of work (Akbudak/Kayaaslan/Aykanat)
//! shows that permuting rows and columns to concentrate reuse is the
//! single biggest locality lever left once the storage format is fixed;
//! OSKI reports that blocked formats reward bandwidth-reducing
//! permutations most.
//!
//! This module provides the cheap end of that spectrum:
//!
//! * [`ReorderKind::DegreeSort`] — rows and columns independently
//!   sorted by descending degree, packing the hubs of a power-law
//!   graph into the first cache lines;
//! * [`ReorderKind::Rcm`] — reverse Cuthill–McKee over the symmetrized
//!   pattern, the classic bandwidth-reducing breadth-first ordering;
//! * [`ReorderKind::WindowCluster`] — a segment/window-clustering
//!   heuristic inspired by the hypergraph model: columns are assigned
//!   new indices in the order heavy rows touch them, so columns that
//!   co-occur in a row land in the same [`SEG_COLS`]-wide segment.
//!
//! All three produce an exact [`Permutation`]: a validated bijection on
//! rows and on columns with lossless [`Permutation::apply_coo`] /
//! [`Permutation::invert`], so a reordered matrix is a pure re-indexing
//! — every entry, explicit zeros included, survives bit-for-bit.
//! [`ReorderProbe`] samples bandwidth and segment occupancy before and
//! after each candidate permutation so the runtime's decision tree can
//! pick a reordering from O(nnz / stride) work, the same way the format
//! axis is steered by [`FormatProbe`](crate::FormatProbe).
//!
//! [`SEG_COLS`]: crate::bitmap::SEG_COLS

use crate::bitmap::SEG_COLS;
use crate::coo::CooMatrix;
use crate::{Idx, Result, SparseError};
use std::collections::HashSet;
use std::fmt;

/// Which reordering the plan applies to the matrix image — `None` keeps
/// the arrival order. The runtime treats this as a reconfiguration axis
/// alongside the software dataflow, hardware substrate and storage
/// format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReorderKind {
    /// Arrival order: no permutation is applied.
    #[default]
    None,
    /// Rows and columns independently sorted by descending degree.
    DegreeSort,
    /// Reverse Cuthill–McKee over the symmetrized pattern (square
    /// matrices; identity on rectangles).
    Rcm,
    /// Segment/window clustering: columns renumbered in the order the
    /// heaviest rows touch them (square matrices; identity on
    /// rectangles).
    WindowCluster,
}

impl ReorderKind {
    /// Every kind, `None` first — the sweep order used by benches.
    pub const ALL: [ReorderKind; 4] = [
        ReorderKind::None,
        ReorderKind::DegreeSort,
        ReorderKind::Rcm,
        ReorderKind::WindowCluster,
    ];

    /// The non-trivial candidates a probe evaluates, in
    /// [`ReorderProbe`] array order.
    pub const CANDIDATES: [ReorderKind; 3] = [
        ReorderKind::DegreeSort,
        ReorderKind::Rcm,
        ReorderKind::WindowCluster,
    ];

    /// Short lowercase name, used in plan keys, bench tables and CLI
    /// labels.
    pub fn name(self) -> &'static str {
        match self {
            ReorderKind::None => "arrival",
            ReorderKind::DegreeSort => "degsort",
            ReorderKind::Rcm => "rcm",
            ReorderKind::WindowCluster => "window",
        }
    }

    /// Position of `self` in [`ReorderKind::CANDIDATES`] (`None` has
    /// no slot).
    pub fn candidate_index(self) -> Option<usize> {
        ReorderKind::CANDIDATES.iter().position(|&k| k == self)
    }
}

impl fmt::Display for ReorderKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An exact, validated row/column permutation.
///
/// `row_new[r]` is the new index of old row `r`; `col_new[c]` the new
/// index of old column `c`. Both are bijections (checked at
/// construction), so applying a permutation never merges or drops
/// entries and [`Permutation::invert`] is a true inverse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    row_new: Vec<Idx>,
    col_new: Vec<Idx>,
}

/// Checks that `perm` is a bijection on `0..perm.len()`.
fn validate_bijection(perm: &[Idx], what: &str) -> Result<()> {
    let n = perm.len();
    let mut seen = vec![false; n];
    for (i, &p) in perm.iter().enumerate() {
        let p = p as usize;
        if p >= n {
            return Err(SparseError::InvalidPermutation(format!(
                "{what} maps {i} to {p}, outside 0..{n}"
            )));
        }
        if seen[p] {
            return Err(SparseError::InvalidPermutation(format!(
                "{what} maps two indices to {p}"
            )));
        }
        seen[p] = true;
    }
    Ok(())
}

/// Turns a visit order (`order[k]` = old index placed at new position
/// `k`) into a new-of-old map.
fn invert_order(order: &[Idx]) -> Vec<Idx> {
    let mut new_of = vec![0 as Idx; order.len()];
    for (new, &old) in order.iter().enumerate() {
        new_of[old as usize] = new as Idx;
    }
    new_of
}

impl Permutation {
    /// The identity permutation on a `rows` × `cols` shape.
    pub fn identity(rows: usize, cols: usize) -> Permutation {
        Permutation {
            row_new: (0..rows as Idx).collect(),
            col_new: (0..cols as Idx).collect(),
        }
    }

    /// Builds a permutation from explicit new-of-old maps, validating
    /// both as bijections.
    ///
    /// # Errors
    ///
    /// [`SparseError::InvalidPermutation`] if either map is out of
    /// bounds or maps two indices to the same target.
    pub fn new(row_new: Vec<Idx>, col_new: Vec<Idx>) -> Result<Permutation> {
        validate_bijection(&row_new, "row permutation")?;
        validate_bijection(&col_new, "column permutation")?;
        Ok(Permutation { row_new, col_new })
    }

    /// A symmetric (square) permutation: rows and columns share one
    /// new-of-old map.
    ///
    /// # Errors
    ///
    /// [`SparseError::InvalidPermutation`] if `new_of` is not a
    /// bijection.
    pub fn symmetric(new_of: Vec<Idx>) -> Result<Permutation> {
        validate_bijection(&new_of, "symmetric permutation")?;
        Ok(Permutation {
            row_new: new_of.clone(),
            col_new: new_of,
        })
    }

    /// Number of rows the permutation covers.
    pub fn rows(&self) -> usize {
        self.row_new.len()
    }

    /// Number of columns the permutation covers.
    pub fn cols(&self) -> usize {
        self.col_new.len()
    }

    /// New index of each old row.
    pub fn row_new(&self) -> &[Idx] {
        &self.row_new
    }

    /// New index of each old column.
    pub fn col_new(&self) -> &[Idx] {
        &self.col_new
    }

    /// Whether both maps are the identity.
    pub fn is_identity(&self) -> bool {
        self.row_new
            .iter()
            .enumerate()
            .all(|(i, &p)| p as usize == i)
            && self
                .col_new
                .iter()
                .enumerate()
                .all(|(i, &p)| p as usize == i)
    }

    /// The inverse permutation (old-of-new becomes new-of-old).
    pub fn invert(&self) -> Permutation {
        Permutation {
            row_new: invert_order(&self.row_new),
            col_new: invert_order(&self.col_new),
        }
    }

    /// Applies the permutation to a matrix: entry `(r, c, v)` moves to
    /// `(row_new[r], col_new[c], v)` bit-for-bit. Because the maps are
    /// bijections the result has exactly the same entries — explicit
    /// zeros included — so `apply_coo` then [`Permutation::invert`]
    /// `.apply_coo` is the identity on the canonical triplet list.
    ///
    /// # Panics
    ///
    /// If the matrix shape does not match the permutation's.
    pub fn apply_coo(&self, coo: &CooMatrix) -> CooMatrix {
        assert_eq!(coo.rows(), self.rows(), "row shape mismatch");
        assert_eq!(coo.cols(), self.cols(), "column shape mismatch");
        let triplets: Vec<(Idx, Idx, f32)> = coo
            .iter()
            .map(|(r, c, v)| (self.row_new[r as usize], self.col_new[c as usize], v))
            .collect();
        CooMatrix::from_triplets(coo.rows(), coo.cols(), triplets)
            .expect("bijection keeps every entry in bounds")
    }

    /// Permutes a dense vector from old column space into new column
    /// space: `out[col_new[i]] = x[i]`.
    ///
    /// # Panics
    ///
    /// If `x.len()` does not match the column count.
    pub fn permute_dense(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols(), "vector length mismatch");
        let mut out = vec![0.0f32; x.len()];
        for (i, &v) in x.iter().enumerate() {
            out[self.col_new[i] as usize] = v;
        }
        out
    }

    /// Un-permutes a result vector from new row space back into old row
    /// space: `out[i] = y[row_new[i]]`. Inverse of streaming the
    /// reordered matrix against a [`Permutation::permute_dense`]'d
    /// input.
    ///
    /// # Panics
    ///
    /// If `y.len()` does not match the row count.
    pub fn unpermute_result(&self, y: &[f32]) -> Vec<f32> {
        assert_eq!(y.len(), self.rows(), "vector length mismatch");
        (0..y.len()).map(|i| y[self.row_new[i] as usize]).collect()
    }

    /// Maps a sorted active-column list through `col_new` into `out`,
    /// re-sorted ascending — the form kernels expect. Allocation-free
    /// when `out` has capacity.
    pub fn permute_active(&self, active: &[Idx], out: &mut Vec<Idx>) {
        out.clear();
        out.extend(active.iter().map(|&c| self.col_new[c as usize]));
        out.sort_unstable();
    }
}

/// Computes the permutation for `kind` on `coo`. `ReorderKind::None`
/// (and the square-only heuristics on rectangular matrices) return the
/// identity.
pub fn compute(kind: ReorderKind, coo: &CooMatrix) -> Permutation {
    match kind {
        ReorderKind::None => Permutation::identity(coo.rows(), coo.cols()),
        ReorderKind::DegreeSort => degree_sort(coo),
        ReorderKind::Rcm => rcm(coo),
        ReorderKind::WindowCluster => window_cluster(coo),
    }
}

/// New-of-old map that sorts indices by descending degree, ties broken
/// by original index (stable, so equal-degree matrices keep arrival
/// order).
fn degree_order(counts: &[usize]) -> Vec<Idx> {
    let mut order: Vec<Idx> = (0..counts.len() as Idx).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(counts[i as usize]), i));
    invert_order(&order)
}

/// Rows and columns independently sorted by descending degree. Works on
/// any shape; on power-law graphs this packs the hub columns — the ones
/// every row touches — into the first x-vector cache lines.
pub fn degree_sort(coo: &CooMatrix) -> Permutation {
    Permutation {
        row_new: degree_order(&coo.row_counts()),
        col_new: degree_order(&coo.col_counts()),
    }
}

/// Symmetrized adjacency lists (CSR-shaped, self-loops dropped,
/// duplicates removed), each list pre-sorted by ascending
/// (degree, index) — the neighbor visit order both BFS heuristics use.
fn symmetric_adjacency(coo: &CooMatrix) -> Vec<Vec<Idx>> {
    let n = coo.rows();
    let mut adj: Vec<Vec<Idx>> = vec![Vec::new(); n];
    for (r, c, _) in coo.iter() {
        if r != c {
            adj[r as usize].push(c);
            adj[c as usize].push(r);
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    let degrees: Vec<usize> = adj.iter().map(Vec::len).collect();
    for list in &mut adj {
        list.sort_by_key(|&v| (degrees[v as usize], v));
    }
    adj
}

/// Reverse Cuthill–McKee over the symmetrized pattern: breadth-first
/// from the lowest-degree vertex of each component, neighbors visited
/// in ascending degree, final order reversed. The classic
/// bandwidth-reducing ordering; identity on rectangular matrices.
pub fn rcm(coo: &CooMatrix) -> Permutation {
    if coo.rows() != coo.cols() {
        return Permutation::identity(coo.rows(), coo.cols());
    }
    let n = coo.rows();
    let adj = symmetric_adjacency(coo);

    // Global (degree, index) order: the first unvisited vertex in this
    // list is the minimum-degree vertex of its (entirely unvisited)
    // component, so each component starts from a pseudo-peripheral
    // seed.
    let mut starts: Vec<Idx> = (0..n as Idx).collect();
    starts.sort_by_key(|&v| (adj[v as usize].len(), v));

    let mut visited = vec![false; n];
    let mut order: Vec<Idx> = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();
    for &start in &starts {
        if visited[start as usize] {
            continue;
        }
        visited[start as usize] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &u in &adj[v as usize] {
                if !visited[u as usize] {
                    visited[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    order.reverse();
    Permutation::symmetric(invert_order(&order)).expect("BFS visits each vertex once")
}

/// Segment/window clustering, the hypergraph-inspired heuristic: walk
/// rows in descending degree and hand each not-yet-renumbered column
/// the next new index, so columns that co-occur in heavy rows land in
/// the same [`SEG_COLS`]-wide segment (one bitmap word, one x-vector
/// window). Rows share the symmetric map; identity on rectangles.
pub fn window_cluster(coo: &CooMatrix) -> Permutation {
    if coo.rows() != coo.cols() {
        return Permutation::identity(coo.rows(), coo.cols());
    }
    let n = coo.rows();
    let row_counts = coo.row_counts();

    // Per-row triplet slices: the canonical entry list is sorted by
    // (row, col), so rows are contiguous runs.
    let mut row_start = vec![0usize; n + 1];
    for r in 0..n {
        row_start[r + 1] = row_start[r] + row_counts[r];
    }
    let entries = coo.entries();

    let mut row_order: Vec<Idx> = (0..n as Idx).collect();
    row_order.sort_by_key(|&r| (std::cmp::Reverse(row_counts[r as usize]), r));

    const UNASSIGNED: Idx = Idx::MAX;
    let mut new_of = vec![UNASSIGNED; n];
    let mut next: Idx = 0;
    for &r in &row_order {
        let r = r as usize;
        for t in &entries[row_start[r]..row_start[r + 1]] {
            let c = t.col as usize;
            if new_of[c] == UNASSIGNED {
                new_of[c] = next;
                next += 1;
            }
        }
    }
    // Columns no row touches keep their relative order at the tail.
    for slot in &mut new_of {
        if *slot == UNASSIGNED {
            *slot = next;
            next += 1;
        }
    }
    Permutation::symmetric(new_of).expect("every column assigned exactly once")
}

/// Mean |new_row − new_col| over entries sampled at `stride` — the
/// bandwidth estimate both RCM and the decision gate use. `perm =
/// None` measures arrival order. Returns 0 for empty samples.
pub fn bandwidth_estimate(coo: &CooMatrix, perm: Option<&Permutation>, stride: usize) -> f64 {
    let stride = stride.max(1);
    let mut sum = 0.0f64;
    let mut count = 0u64;
    for t in coo.entries().iter().step_by(stride) {
        let (r, c) = match perm {
            Some(p) => (p.row_new[t.row as usize], p.col_new[t.col as usize]),
            None => (t.row, t.col),
        };
        sum += (f64::from(r) - f64::from(c)).abs();
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// Sampled entries per distinct `(row, col / SEG_COLS)` segment — the
/// same occupancy statistic [`FormatProbe`](crate::FormatProbe) uses to
/// steer the bitmap format, here evaluated under a candidate
/// permutation. Higher is better (denser segments). Returns 0 for
/// empty samples.
pub fn segment_occupancy(coo: &CooMatrix, perm: Option<&Permutation>, stride: usize) -> f64 {
    let stride = stride.max(1);
    let mut segments: HashSet<(Idx, Idx)> = HashSet::new();
    let mut count = 0u64;
    for t in coo.entries().iter().step_by(stride) {
        let (r, c) = match perm {
            Some(p) => (p.row_new[t.row as usize], p.col_new[t.col as usize]),
            None => (t.row, t.col),
        };
        segments.insert((r, c / SEG_COLS as Idx));
        count += 1;
    }
    if segments.is_empty() {
        0.0
    } else {
        count as f64 / segments.len() as f64
    }
}

/// Entries to sample per probe statistic — keeps the probe O(1)-ish on
/// big matrices while exact on small ones.
const PROBE_SAMPLES: usize = 4096;

/// Cheap locality statistics before and after each candidate
/// permutation, computed once per graph and cached on the shared graph
/// state. The decision tree turns these into a [`ReorderKind`] the same
/// way segment occupancy and block fill steer the format axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReorderProbe {
    /// Sampled mean |row − col| in arrival order.
    pub arrival_bandwidth: f64,
    /// Sampled segment occupancy in arrival order.
    pub arrival_occupancy: f64,
    /// Post-permute bandwidth per [`ReorderKind::CANDIDATES`] slot.
    pub bandwidth: [f64; 3],
    /// Post-permute segment occupancy per candidate slot.
    pub occupancy: [f64; 3],
}

impl ReorderProbe {
    /// Probes `coo`: candidate permutations are computed transiently,
    /// statistics sampled at a stride targeting [`PROBE_SAMPLES`]
    /// entries.
    pub fn of(coo: &CooMatrix) -> ReorderProbe {
        let stride = (coo.nnz() / PROBE_SAMPLES).max(1);
        let mut probe = ReorderProbe {
            arrival_bandwidth: bandwidth_estimate(coo, None, stride),
            arrival_occupancy: segment_occupancy(coo, None, stride),
            bandwidth: [0.0; 3],
            occupancy: [0.0; 3],
        };
        for (slot, kind) in ReorderKind::CANDIDATES.into_iter().enumerate() {
            let perm = compute(kind, coo);
            probe.bandwidth[slot] = bandwidth_estimate(coo, Some(&perm), stride);
            probe.occupancy[slot] = segment_occupancy(coo, Some(&perm), stride);
        }
        probe
    }

    /// Improvement ratio of `kind` over arrival order: the better of
    /// bandwidth shrinkage (`arrival / permuted`) and occupancy growth
    /// (`permuted / arrival`). 1.0 means "no better"; `None` and
    /// degenerate statistics report 1.0.
    pub fn gain(&self, kind: ReorderKind) -> f64 {
        let Some(slot) = kind.candidate_index() else {
            return 1.0;
        };
        let bw_gain = if self.bandwidth[slot] > 0.0 {
            self.arrival_bandwidth / self.bandwidth[slot]
        } else {
            1.0
        };
        let occ_gain = if self.arrival_occupancy > 0.0 {
            self.occupancy[slot] / self.arrival_occupancy
        } else {
            1.0
        };
        bw_gain.max(occ_gain)
    }

    /// The candidate with the highest [`ReorderProbe::gain`] and that
    /// gain, for the decision gate to threshold.
    pub fn best(&self) -> (ReorderKind, f64) {
        let mut best = (ReorderKind::DegreeSort, f64::MIN);
        for kind in ReorderKind::CANDIDATES {
            let g = self.gain(kind);
            if g > best.1 {
                best = (kind, g);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> CooMatrix {
        // A path with vertices deliberately scrambled: vertex i sits at
        // matrix index (i * 7) % n, so arrival bandwidth is large and
        // RCM has something to recover.
        let place = |i: usize| ((i * 7) % n) as Idx;
        let mut triplets = Vec::new();
        for i in 0..n - 1 {
            triplets.push((place(i), place(i + 1), 1.0));
            triplets.push((place(i + 1), place(i), 1.0));
        }
        CooMatrix::from_triplets(n, n, triplets).unwrap()
    }

    #[test]
    fn identity_is_identity() {
        let p = Permutation::identity(4, 7);
        assert!(p.is_identity());
        assert_eq!(p.invert(), p);
        let m = CooMatrix::from_triplets(4, 7, vec![(1, 6, 2.5), (3, 0, -1.0)]).unwrap();
        let back = p.apply_coo(&m);
        assert_eq!(back.entries(), m.entries());
    }

    #[test]
    fn construction_rejects_non_bijections() {
        assert!(Permutation::new(vec![0, 0], vec![0, 1]).is_err());
        assert!(Permutation::new(vec![0, 2], vec![0, 1]).is_err());
        assert!(Permutation::symmetric(vec![1, 1, 0]).is_err());
    }

    #[test]
    fn apply_then_inverse_is_identity() {
        let m = path_graph(31);
        for kind in ReorderKind::ALL {
            let p = compute(kind, &m);
            let back = p.invert().apply_coo(&p.apply_coo(&m));
            assert_eq!(back.entries(), m.entries(), "{kind} round trip");
        }
    }

    #[test]
    fn rcm_reduces_bandwidth_on_a_scrambled_path() {
        let m = path_graph(97);
        let p = rcm(&m);
        let before = bandwidth_estimate(&m, None, 1);
        let after = bandwidth_estimate(&m, Some(&p), 1);
        // RCM on a path recovers (nearly) the natural ordering:
        // bandwidth collapses from O(n) to O(1).
        assert!(
            after < before / 4.0,
            "rcm bandwidth {after} not < {before} / 4"
        );
    }

    #[test]
    fn window_cluster_packs_cooccurring_columns() {
        // Two heavy rows each touching a scattered column set; the
        // clustering must give each row's columns consecutive indices.
        let n = 128;
        let cols_a = [5usize, 40, 77, 101];
        let cols_b = [9usize, 33, 64, 120];
        let mut triplets = Vec::new();
        for &c in &cols_a {
            triplets.push((0 as Idx, c as Idx, 1.0));
        }
        for &c in &cols_b {
            triplets.push((1 as Idx, c as Idx, 1.0));
        }
        let m = CooMatrix::from_triplets(n, n, triplets).unwrap();
        let p = window_cluster(&m);
        let news: Vec<Idx> = cols_a.iter().map(|&c| p.col_new()[c]).collect();
        assert_eq!(news, vec![0, 1, 2, 3], "row 0's columns pack first");
        let news: Vec<Idx> = cols_b.iter().map(|&c| p.col_new()[c]).collect();
        assert_eq!(news, vec![4, 5, 6, 7], "row 1's columns pack next");
    }

    #[test]
    fn degree_sort_handles_rectangles() {
        let m =
            CooMatrix::from_triplets(2, 5, vec![(0, 4, 1.0), (1, 4, 1.0), (1, 0, 2.0)]).unwrap();
        let p = degree_sort(&m);
        assert_eq!(p.rows(), 2);
        assert_eq!(p.cols(), 5);
        // Column 4 has the highest degree: it moves to new index 0.
        assert_eq!(p.col_new()[4], 0);
        // Row 1 (degree 2) leads row 0 (degree 1).
        assert_eq!(p.row_new()[1], 0);
        assert_eq!(p.row_new()[0], 1);
    }

    #[test]
    fn square_only_heuristics_degrade_to_identity_on_rectangles() {
        let m = CooMatrix::from_triplets(3, 8, vec![(0, 7, 1.0)]).unwrap();
        assert!(rcm(&m).is_identity());
        assert!(window_cluster(&m).is_identity());
    }

    #[test]
    fn empty_matrix_probes_are_finite() {
        let m = CooMatrix::new(6, 6);
        let probe = ReorderProbe::of(&m);
        assert_eq!(probe.arrival_bandwidth, 0.0);
        assert_eq!(probe.arrival_occupancy, 0.0);
        let (_, gain) = probe.best();
        assert!(gain.is_finite());
        assert!(gain <= 1.0 + f64::EPSILON);
    }

    #[test]
    fn permute_dense_roundtrips_through_unpermute() {
        let m = path_graph(17);
        let p = rcm(&m);
        let x: Vec<f32> = (0..17).map(|i| i as f32 * 0.25).collect();
        let permuted = p.permute_dense(&x);
        let back = p.unpermute_result(&permuted);
        assert_eq!(back, x);
    }

    #[test]
    fn permute_active_sorts_mapped_indices() {
        let m = path_graph(9);
        let p = degree_sort(&m);
        let active: Vec<Idx> = vec![0, 3, 8];
        let mut out = Vec::new();
        p.permute_active(&active, &mut out);
        let mut want: Vec<Idx> = active.iter().map(|&c| p.col_new()[c as usize]).collect();
        want.sort_unstable();
        assert_eq!(out, want);
        assert!(out.windows(2).all(|w| w[0] < w[1]));
    }
}
