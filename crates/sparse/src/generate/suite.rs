//! Synthetic analogues of the paper's Table III real-graph suite.
//!
//! The paper evaluates on five graphs from SNAP / SuiteSparse. This
//! offline reproduction cannot download them, so each graph is replaced
//! by a synthetic analogue with the same vertex count, edge count,
//! directedness and degree-distribution family (R-MAT for the social
//! networks, uniform for `vsp` which SuiteSparse labels "random"). See
//! DESIGN.md §2 for why this preserves the reconfiguration behaviour.
//!
//! A scale divisor shrinks the two largest graphs by default so the
//! cycle-approximate simulator stays tractable on one core; vertex and
//! edge counts shrink together, preserving the average degree that
//! drives frontier evolution. Set the environment variable
//! `COSPARSE_FULL_SCALE=1` (or `GraphSpec::scaled(1)`) for full
//! size.

use super::rmat::{rmat, RmatParams};
use super::uniform::uniform;
use crate::{CooMatrix, Result};

/// The five graphs of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuiteGraph {
    /// livejournal: 4,847,571 vertices, 68,992,772 edges, directed social network.
    LiveJournal,
    /// pokec: 1,632,803 vertices, 30,622,564 edges, directed social network.
    Pokec,
    /// youtube: 1,134,890 vertices, 2,987,624 edges, undirected social network.
    Youtube,
    /// twitter: 81,306 vertices, 1,768,149 edges, directed social network.
    Twitter,
    /// vsp: 21,996 vertices, 2,442,056 edges, undirected random graph.
    Vsp,
}

impl SuiteGraph {
    /// All five suite graphs, in the paper's Table III order.
    pub const ALL: [SuiteGraph; 5] = [
        SuiteGraph::LiveJournal,
        SuiteGraph::Pokec,
        SuiteGraph::Youtube,
        SuiteGraph::Twitter,
        SuiteGraph::Vsp,
    ];

    /// The Fig 8 subset (SpMV vs CPU/GPU): vsp, twitter, youtube, pokec.
    pub const SPMV_SET: [SuiteGraph; 4] = [
        SuiteGraph::Vsp,
        SuiteGraph::Twitter,
        SuiteGraph::Youtube,
        SuiteGraph::Pokec,
    ];

    /// Lower-case name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            SuiteGraph::LiveJournal => "livejournal",
            SuiteGraph::Pokec => "pokec",
            SuiteGraph::Youtube => "youtube",
            SuiteGraph::Twitter => "twitter",
            SuiteGraph::Vsp => "vsp",
        }
    }

    /// Full-scale specification matching Table III.
    pub fn spec(self) -> GraphSpec {
        match self {
            SuiteGraph::LiveJournal => GraphSpec {
                graph: self,
                vertices: 4_847_571,
                edges: 68_992_772,
                directed: true,
                family: Family::Rmat,
                default_scale_divisor: 64,
            },
            SuiteGraph::Pokec => GraphSpec {
                graph: self,
                vertices: 1_632_803,
                edges: 30_622_564,
                directed: true,
                family: Family::Rmat,
                default_scale_divisor: 16,
            },
            SuiteGraph::Youtube => GraphSpec {
                graph: self,
                vertices: 1_134_890,
                edges: 2_987_624,
                directed: false,
                family: Family::Rmat,
                default_scale_divisor: 8,
            },
            SuiteGraph::Twitter => GraphSpec {
                graph: self,
                vertices: 81_306,
                edges: 1_768_149,
                directed: true,
                family: Family::Rmat,
                default_scale_divisor: 1,
            },
            SuiteGraph::Vsp => GraphSpec {
                graph: self,
                vertices: 21_996,
                edges: 2_442_056,
                directed: false,
                family: Family::Uniform,
                default_scale_divisor: 1,
            },
        }
    }

    /// Generates the graph's adjacency matrix at the default scale
    /// divisor (or full scale when `COSPARSE_FULL_SCALE=1` is set).
    ///
    /// # Errors
    ///
    /// Propagates generator errors; see [`GraphSpec::generate`].
    pub fn adjacency(self, seed: u64) -> Result<CooMatrix> {
        let mut spec = self.spec();
        if std::env::var("COSPARSE_FULL_SCALE")
            .map(|v| v == "1")
            .unwrap_or(false)
        {
            spec = spec.scaled(1);
        }
        spec.generate(seed)
    }
}

/// Degree-distribution family for a suite analogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// R-MAT (Graph500 parameters) — social-network-like skew.
    Rmat,
    /// Uniformly random pattern.
    Uniform,
}

/// Specification of one suite graph (vertex/edge counts may be scaled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphSpec {
    /// Which paper graph this describes.
    pub graph: SuiteGraph,
    /// Vertex count at this scale.
    pub vertices: usize,
    /// Edge count at this scale (undirected edges counted once).
    pub edges: usize,
    /// Whether the paper's graph is directed.
    pub directed: bool,
    /// Degree-distribution family of the synthetic analogue.
    pub family: Family,
    /// Divisor applied by [`SuiteGraph::adjacency`] by default.
    pub default_scale_divisor: usize,
}

impl GraphSpec {
    /// Returns a copy scaled down by `divisor` (vertices and edges both
    /// divided, preserving average degree). `divisor = 1` is full scale.
    pub fn scaled(mut self, divisor: usize) -> GraphSpec {
        let d = divisor.max(1);
        self.vertices = (self.vertices / d).max(16);
        self.edges = (self.edges / d).max(32);
        self.default_scale_divisor = d;
        self
    }

    /// Graph density in the paper's Table III convention:
    /// `edges / vertices^2`, counting undirected edges once.
    ///
    /// Note the stored adjacency matrix of an undirected graph holds
    /// `~2 * edges` nonzeros (both directions); use
    /// [`CooMatrix::density`] on the generated matrix for the storage
    /// density.
    pub fn density(&self) -> f64 {
        self.edges as f64 / (self.vertices as f64 * self.vertices as f64)
    }

    /// Average out-degree at this scale.
    pub fn avg_degree(&self) -> f64 {
        self.edges as f64 / self.vertices as f64
    }

    /// Generates the adjacency matrix for this spec.
    ///
    /// Directed graphs store one triplet per edge; undirected graphs are
    /// symmetrized (both `(u,v)` and `(v,u)`), so `nnz ≈ 2 * edges`.
    /// R-MAT generates on the enclosing power-of-two dimension and keeps
    /// only in-range endpoints, topping up until the edge budget is met.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::SparseError::InvalidGenerator`] from the
    /// underlying generators.
    pub fn generate(&self, seed: u64) -> Result<CooMatrix> {
        let n = self.vertices;
        let base = match self.family {
            Family::Uniform => uniform(n, n, self.edges, seed)?,
            Family::Rmat => {
                let scale = (usize::BITS - (n - 1).leading_zeros()).max(4);
                // Oversample: some R-MAT endpoints fall outside 0..n.
                let mut kept: Vec<(u32, u32, f32)> = Vec::with_capacity(self.edges);
                let mut attempt = 0u64;
                while kept.len() < self.edges && attempt < 8 {
                    let need = self.edges - kept.len();
                    let over = need + need / 2 + 1024;
                    let m = rmat(
                        scale,
                        over,
                        RmatParams::GRAPH500,
                        seed.wrapping_add(attempt),
                    )?;
                    for (r, c, v) in m.iter() {
                        if (r as usize) < n && (c as usize) < n {
                            kept.push((r, c, v));
                            if kept.len() == self.edges {
                                break;
                            }
                        }
                    }
                    attempt += 1;
                }
                CooMatrix::from_triplets(n, n, kept)?
            }
        };
        if self.directed {
            Ok(base)
        } else {
            let mut triplets: Vec<(u32, u32, f32)> = Vec::with_capacity(base.nnz() * 2);
            for (r, c, v) in base.iter() {
                triplets.push((r, c, v));
                if r != c {
                    triplets.push((c, r, v));
                }
            }
            CooMatrix::from_triplets(n, n, triplets)
        }
    }
}

/// Generates the full suite (all five graphs) at default scales.
///
/// # Errors
///
/// Propagates the first generator error encountered.
pub fn synthetic_suite(seed: u64) -> Result<Vec<(SuiteGraph, CooMatrix)>> {
    SuiteGraph::ALL
        .iter()
        .map(|&g| g.adjacency(seed).map(|m| (g, m)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table_iii() {
        let s = SuiteGraph::Pokec.spec();
        assert_eq!(s.vertices, 1_632_803);
        assert_eq!(s.edges, 30_622_564);
        assert!(s.directed);
        let s = SuiteGraph::Vsp.spec();
        assert_eq!(s.vertices, 21_996);
        assert!(!s.directed);
        // Paper reports vsp density 5.0e-3 (with symmetrized nnz).
        assert!(
            (s.density() - 5.0e-3).abs() < 2.0e-3,
            "density {}",
            s.density()
        );
    }

    #[test]
    fn densities_match_paper_order_of_magnitude() {
        // Table III densities: lj 2.9e-6, pokec 1.2e-5, yt 2.3e-6 (dir-ish),
        // twitter 2.7e-4. Allow a factor ~2.5 for the undirected
        // symmetrization convention.
        let cases = [
            (SuiteGraph::LiveJournal, 2.9e-6),
            (SuiteGraph::Pokec, 1.2e-5),
            (SuiteGraph::Twitter, 2.7e-4),
        ];
        for (g, want) in cases {
            let got = g.spec().density();
            assert!(
                got / want < 2.5 && want / got < 2.5,
                "{}: density {got:e} vs paper {want:e}",
                g.name()
            );
        }
    }

    #[test]
    fn scaled_preserves_avg_degree() {
        let full = SuiteGraph::Pokec.spec();
        let small = full.scaled(16);
        let ratio = small.avg_degree() / full.avg_degree();
        assert!((ratio - 1.0).abs() < 0.01, "avg degree drifted: {ratio}");
    }

    #[test]
    fn vsp_generates_exact_counts() {
        let spec = SuiteGraph::Vsp.spec().scaled(8);
        let m = spec.generate(1).unwrap();
        assert_eq!(m.rows(), spec.vertices);
        // Undirected: symmetrized, so close to 2x (diagonal entries kept once).
        assert!(m.nnz() >= spec.edges && m.nnz() <= 2 * spec.edges);
    }

    #[test]
    fn twitter_analogue_is_skewed() {
        let spec = SuiteGraph::Twitter.spec().scaled(4);
        let m = spec.generate(2).unwrap();
        assert_eq!(m.rows(), spec.vertices);
        assert!(
            m.nnz() as f64 >= 0.95 * spec.edges as f64,
            "nnz {}",
            m.nnz()
        );
        let max_row = m.row_counts().into_iter().max().unwrap();
        let mean = m.nnz() as f64 / m.rows() as f64;
        assert!(
            max_row as f64 > 10.0 * mean,
            "social analogue should be skewed"
        );
    }

    #[test]
    fn undirected_matrix_is_symmetric_pattern() {
        let spec = SuiteGraph::Vsp.spec().scaled(32);
        let m = spec.generate(3).unwrap();
        let t = m.transpose();
        let a: std::collections::HashSet<(u32, u32)> = m.iter().map(|(r, c, _)| (r, c)).collect();
        let b: std::collections::HashSet<(u32, u32)> = t.iter().map(|(r, c, _)| (r, c)).collect();
        assert_eq!(a, b);
    }
}
