use super::sample_distinct;
use crate::{CooMatrix, Idx, Result, SparseError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Quadrant probabilities for the R-MAT recursive matrix generator.
///
/// The classic Graph500 parameters are `a=0.57, b=0.19, c=0.19, d=0.05`,
/// which produce the heavy-tailed degree distributions of real social
/// networks. Probabilities must sum to 1 (within 1e-6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// Probability of the bottom-right quadrant.
    pub d: f64,
}

impl RmatParams {
    /// The Graph500 reference parameters.
    pub const GRAPH500: RmatParams = RmatParams {
        a: 0.57,
        b: 0.19,
        c: 0.19,
        d: 0.05,
    };

    fn validate(&self) -> Result<()> {
        let sum = self.a + self.b + self.c + self.d;
        if (sum - 1.0).abs() > 1e-6 || [self.a, self.b, self.c, self.d].iter().any(|p| *p < 0.0) {
            return Err(SparseError::InvalidGenerator(format!(
                "rmat quadrant probabilities must be non-negative and sum to 1, got {self:?}"
            )));
        }
        Ok(())
    }
}

impl Default for RmatParams {
    fn default() -> Self {
        RmatParams::GRAPH500
    }
}

/// Generates an R-MAT matrix of dimension `2^scale x 2^scale` with (up
/// to) `nnz` distinct nonzeros.
///
/// R-MAT recursively drops each nonzero into one of four quadrants with
/// probabilities [`RmatParams`]; the self-similar recursion yields
/// power-law in/out degrees, community structure, and the skew that
/// stresses CoSPARSE's workload balancing.
///
/// Like [`super::power_law`], extreme skew can saturate below `nnz`;
/// check `matrix.nnz()` when the exact count matters.
///
/// # Errors
///
/// Returns [`crate::SparseError::InvalidGenerator`] for invalid quadrant
/// probabilities, a `scale` that overflows `u32` indices (> 31), or an
/// impossible `nnz`.
///
/// # Examples
///
/// ```
/// use sparse::generate::{rmat, RmatParams};
/// # fn main() -> Result<(), sparse::SparseError> {
/// let m = rmat(10, 8_000, RmatParams::GRAPH500, 42)?;
/// assert_eq!(m.rows(), 1024);
/// # Ok(())
/// # }
/// ```
pub fn rmat(scale: u32, nnz: usize, params: RmatParams, seed: u64) -> Result<CooMatrix> {
    params.validate()?;
    if scale > 31 {
        return Err(SparseError::InvalidGenerator(format!(
            "rmat scale {scale} exceeds u32 index space"
        )));
    }
    let n = 1usize << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let cells = sample_distinct(n, n, nnz, || {
        let (mut r, mut c) = (0u32, 0u32);
        for _ in 0..scale {
            let u: f64 = rng.gen();
            let (dr, dc) = if u < params.a {
                (0, 0)
            } else if u < params.a + params.b {
                (0, 1)
            } else if u < params.a + params.b + params.c {
                (1, 0)
            } else {
                (1, 1)
            };
            r = (r << 1) | dr;
            c = (c << 1) | dc;
        }
        (r as Idx, c as Idx)
    })?;
    let mut wrng = StdRng::seed_from_u64(seed ^ 0x2545_f491_4f6c_dd1d);
    let triplets = cells
        .into_iter()
        .map(|(r, c)| (r, c, 1.0 - wrng.gen::<f32>()))
        .collect();
    CooMatrix::from_triplets(n, n, triplets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_is_power_of_two() {
        let m = rmat(8, 1000, RmatParams::default(), 1).unwrap();
        assert_eq!((m.rows(), m.cols()), (256, 256));
    }

    #[test]
    fn skewed_toward_low_ids() {
        // With Graph500 parameters, quadrant (0,0) dominates, so the
        // first half of rows should hold clearly more than half the mass.
        let m = rmat(10, 20_000, RmatParams::GRAPH500, 2).unwrap();
        let counts = m.row_counts();
        let first_half: usize = counts[..512].iter().sum();
        assert!(first_half as f64 > 0.6 * m.nnz() as f64);
    }

    #[test]
    fn invalid_params_rejected() {
        let bad = RmatParams {
            a: 0.9,
            b: 0.3,
            c: 0.0,
            d: 0.0,
        };
        assert!(rmat(4, 10, bad, 0).is_err());
        assert!(rmat(40, 10, RmatParams::default(), 0).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = rmat(9, 3000, RmatParams::default(), 77).unwrap();
        let b = rmat(9, 3000, RmatParams::default(), 77).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_params_give_balanced_quadrants() {
        let p = RmatParams {
            a: 0.25,
            b: 0.25,
            c: 0.25,
            d: 0.25,
        };
        let m = rmat(9, 10_000, p, 3).unwrap();
        let counts = m.row_counts();
        let first_half: usize = counts[..256].iter().sum();
        let frac = first_half as f64 / m.nnz() as f64;
        assert!((frac - 0.5).abs() < 0.05, "quadrants unbalanced: {frac}");
    }
}
