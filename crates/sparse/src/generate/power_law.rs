use super::{sample_cdf, sample_distinct, zipf_cdf};
use crate::{CooMatrix, Idx, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Generates a power-law `rows x cols` matrix with (up to) `nnz` distinct
/// nonzeros: endpoint popularity follows a Zipf(`alpha`) distribution
/// over randomly permuted vertex ids, so a few rows/columns are very
/// dense and most are near-empty — the skew that motivates the paper's
/// workload-balancing scheme (§III-B, Figure 7).
///
/// `alpha` around `0.8..1.2` gives realistic social-network-like skew;
/// larger values concentrate harder. Heavy-tailed sampling resamples
/// popular cells often, so for extreme `alpha` the returned matrix may
/// hold slightly fewer than `nnz` entries; the achieved count is
/// `matrix.nnz()`.
///
/// # Errors
///
/// Returns [`crate::SparseError::InvalidGenerator`] if `nnz` exceeds the
/// number of cells.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), sparse::SparseError> {
/// let m = sparse::generate::power_law(1 << 12, 1 << 12, 40_000, 1.0, 42)?;
/// // A power-law matrix concentrates nonzeros in a few heavy rows.
/// let max_row = m.row_counts().into_iter().max().unwrap();
/// assert!(max_row > 40_000 / (1 << 12) * 10);
/// # Ok(())
/// # }
/// ```
pub fn power_law(rows: usize, cols: usize, nnz: usize, alpha: f64, seed: u64) -> Result<CooMatrix> {
    let row_cdf = zipf_cdf(rows, alpha);
    let col_cdf = zipf_cdf(cols, alpha);
    let mut rng = StdRng::seed_from_u64(seed);
    // Permute ids so the heavy vertices are not 0..k (which would give
    // artificial spatial locality the paper's real graphs do not have).
    let mut row_perm: Vec<Idx> = (0..rows as Idx).collect();
    row_perm.shuffle(&mut rng);
    let mut col_perm: Vec<Idx> = (0..cols as Idx).collect();
    col_perm.shuffle(&mut rng);

    let cells = sample_distinct(rows, cols, nnz, || {
        let r = row_perm[sample_cdf(&row_cdf, rng.gen::<f64>())];
        let c = col_perm[sample_cdf(&col_cdf, rng.gen::<f64>())];
        (r, c)
    })?;
    let mut wrng = StdRng::seed_from_u64(seed ^ 0x5851_f42d_4c95_7f2d);
    let triplets = cells
        .into_iter()
        .map(|(r, c)| (r, c, 1.0 - wrng.gen::<f32>()))
        .collect();
    CooMatrix::from_triplets(rows, cols, triplets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_skewed_compared_to_uniform() {
        let n = 1 << 10;
        let nnz = 8_000;
        let pl = power_law(n, n, nnz, 1.0, 5).unwrap();
        let un = crate::generate::uniform(n, n, nnz, 5).unwrap();
        let max_pl = pl.row_counts().into_iter().max().unwrap();
        let max_un = un.row_counts().into_iter().max().unwrap();
        assert!(
            max_pl > 3 * max_un,
            "power-law max row {max_pl} not ≫ uniform max row {max_un}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = power_law(256, 256, 1000, 1.1, 9).unwrap();
        let b = power_law(256, 256, 1000, 1.1, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn respects_shape() {
        let m = power_law(100, 60, 500, 0.9, 1).unwrap();
        assert_eq!((m.rows(), m.cols()), (100, 60));
        assert!(m.nnz() <= 500);
        // Mild skew should still reach the target count.
        assert!(m.nnz() >= 490, "achieved {}", m.nnz());
    }

    #[test]
    fn alpha_zero_degenerates_to_uniformish() {
        let n = 512;
        let m = power_law(n, n, 4000, 0.0, 3).unwrap();
        let max = m.row_counts().into_iter().max().unwrap();
        assert!(max < 40, "alpha=0 should be near-uniform, max row {max}");
    }
}
