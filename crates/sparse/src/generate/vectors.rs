use crate::{DenseVector, Idx, Result, SparseVector};
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::{Rng, SeedableRng};

/// Generates a sparse vector of dimension `dim` with exactly
/// `round(dim * density)` nonzero entries at uniformly random indices,
/// values in `(0, 1]`.
///
/// This is the input-vector generator behind the density sweeps of
/// Figures 4–6 and 8 (densities 0.0025–0.04 and 0.001–1.0).
///
/// # Errors
///
/// Returns [`crate::SparseError::InvalidGenerator`] if `density` is not
/// in `[0, 1]` or is not finite.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), sparse::SparseError> {
/// let v = sparse::generate::random_sparse_vector(10_000, 0.01, 7)?;
/// assert_eq!(v.nnz(), 100);
/// # Ok(())
/// # }
/// ```
pub fn random_sparse_vector(dim: usize, density: f64, seed: u64) -> Result<SparseVector<f32>> {
    if !(0.0..=1.0).contains(&density) {
        return Err(crate::SparseError::InvalidGenerator(format!(
            "vector density {density} outside [0, 1]"
        )));
    }
    let nnz = ((dim as f64 * density).round() as usize).min(dim);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut indices: Vec<usize> = sample(&mut rng, dim.max(1), nnz).into_vec();
    indices.sort_unstable();
    let entries: Vec<(Idx, f32)> = indices
        .into_iter()
        .map(|i| (i as Idx, 1.0 - rng.gen::<f32>()))
        .collect();
    SparseVector::from_sorted(dim, entries)
}

/// Generates a fully dense random vector with values in `(0, 1]`.
pub fn random_dense_vector(dim: usize, seed: u64) -> DenseVector<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..dim).map(|_| 1.0 - rng.gen::<f32>()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_nnz() {
        let v = random_sparse_vector(1000, 0.05, 1).unwrap();
        assert_eq!(v.nnz(), 50);
        assert!((v.density() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn density_bounds_checked() {
        assert!(random_sparse_vector(10, -0.1, 0).is_err());
        assert!(random_sparse_vector(10, 1.5, 0).is_err());
        assert!(random_sparse_vector(10, f64::NAN, 0).is_err());
    }

    #[test]
    fn density_one_is_full() {
        let v = random_sparse_vector(64, 1.0, 2).unwrap();
        assert_eq!(v.nnz(), 64);
    }

    #[test]
    fn density_zero_is_empty() {
        let v = random_sparse_vector(64, 0.0, 2).unwrap();
        assert!(v.is_empty());
    }

    #[test]
    fn deterministic_and_sorted() {
        let a = random_sparse_vector(500, 0.1, 9).unwrap();
        let b = random_sparse_vector(500, 0.1, 9).unwrap();
        assert_eq!(a, b);
        let idx: Vec<_> = a.iter().map(|(i, _)| i).collect();
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn dense_vector_values_in_range() {
        let d = random_dense_vector(100, 3);
        assert_eq!(d.len(), 100);
        assert!(d.iter().all(|v| *v > 0.0 && *v <= 1.0));
    }
}
