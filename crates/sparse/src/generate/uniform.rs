use super::sample_distinct;
use crate::{CooMatrix, Idx, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a uniformly random `rows x cols` matrix with exactly `nnz`
/// distinct nonzeros (an Erdős–Rényi `G(n, m)` pattern), weights in
/// `(0, 1]`.
///
/// This is the matrix family behind the paper's threshold-calibration
/// sweeps (Figures 4–6): `N ∈ {131k, 262k, 524k, 1M}` with a fixed
/// nonzero budget, so the largest matrix is also the sparsest.
///
/// # Errors
///
/// Returns [`crate::SparseError::InvalidGenerator`] if `nnz` exceeds the
/// number of cells.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), sparse::SparseError> {
/// let m = sparse::generate::uniform(1000, 1000, 5000, 42)?;
/// assert_eq!(m.nnz(), 5000);
/// # Ok(())
/// # }
/// ```
pub fn uniform(rows: usize, cols: usize, nnz: usize, seed: u64) -> Result<CooMatrix> {
    let mut rng = StdRng::seed_from_u64(seed);
    let cells = sample_distinct(rows, cols, nnz, || {
        (rng.gen_range(0..rows) as Idx, rng.gen_range(0..cols) as Idx)
    })?;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let triplets = cells
        .into_iter()
        .map(|(r, c)| (r, c, 1.0 - rng.gen::<f32>()))
        .collect();
    CooMatrix::from_triplets(rows, cols, triplets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_nnz_and_shape() {
        let m = uniform(64, 32, 100, 7).unwrap();
        assert_eq!((m.rows(), m.cols(), m.nnz()), (64, 32, 100));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            uniform(50, 50, 200, 3).unwrap(),
            uniform(50, 50, 200, 3).unwrap()
        );
        assert_ne!(
            uniform(50, 50, 200, 3).unwrap(),
            uniform(50, 50, 200, 4).unwrap()
        );
    }

    #[test]
    fn weights_positive() {
        let m = uniform(30, 30, 50, 1).unwrap();
        assert!(m.iter().all(|(_, _, v)| v > 0.0 && v <= 1.0));
    }

    #[test]
    fn full_matrix_possible() {
        let m = uniform(8, 8, 64, 0).unwrap();
        assert_eq!(m.nnz(), 64);
    }

    #[test]
    fn rows_are_roughly_balanced() {
        // Uniform sampling should not concentrate mass: with 100 rows and
        // 10k nonzeros, the max row should stay well under 10x the mean.
        let m = uniform(100, 100, 5000, 11).unwrap();
        let max = m.row_counts().into_iter().max().unwrap();
        assert!(max < 150, "max row nnz {max} too skewed for uniform");
    }
}
