//! Format-conversion properties: every storage format behind
//! [`StoredMatrix`] must be a lossless re-encoding of the canonical COO
//! matrix, and its dense SpMV must be bit-identical to the COO golden
//! reduction — format choice is a performance decision, never a
//! numerical one.

use proptest::prelude::*;
use sparse::{CooMatrix, DenseVector, FormatKind, Idx, StoredMatrix};

/// Values that exercise the representational corners: exact zero
/// (pattern entries must survive), negatives, subnormal-adjacent
/// magnitudes, and values whose sums are order-sensitive in f32.
const VALUES: [f32; 8] = [
    0.0,
    1.0,
    -1.5,
    0.25,
    3.7e-3,
    -2.5e4,
    f32::MIN_POSITIVE,
    1.000_000_1,
];

/// An arbitrary small matrix: shape plus raw triplets (duplicates are
/// summed by the COO constructor, making it canonical), and a seed for
/// the input vector.
fn arb_case() -> impl Strategy<Value = (CooMatrix, u64)> {
    (1usize..40, 1usize..40, 0u64..1000).prop_flat_map(|(rows, cols, seed)| {
        proptest::collection::vec((0..rows, 0..cols, 0usize..VALUES.len()), 0..120).prop_map(
            move |raw| {
                let triplets = raw
                    .into_iter()
                    .map(|(r, c, v)| (r as Idx, c as Idx, VALUES[v]))
                    .collect();
                let coo = CooMatrix::from_triplets(rows, cols, triplets).expect("in-bounds");
                (coo, seed)
            },
        )
    })
}

fn assert_roundtrip(coo: &CooMatrix, kind: FormatKind) -> Result<(), TestCaseError> {
    let stored = StoredMatrix::from_coo(coo, kind);
    prop_assert_eq!(stored.kind(), kind);
    prop_assert_eq!(stored.rows(), coo.rows());
    prop_assert_eq!(stored.cols(), coo.cols());
    prop_assert_eq!(stored.nnz(), coo.nnz());
    let back = stored.to_coo();
    prop_assert_eq!(back.rows(), coo.rows());
    prop_assert_eq!(back.cols(), coo.cols());
    let got: Vec<(Idx, Idx, u32)> = back.iter().map(|(r, c, v)| (r, c, v.to_bits())).collect();
    let want: Vec<(Idx, Idx, u32)> = coo.iter().map(|(r, c, v)| (r, c, v.to_bits())).collect();
    prop_assert_eq!(got, want, "{} -> COO lost or perturbed entries", kind);
    Ok(())
}

fn assert_spmv_matches_golden(
    coo: &CooMatrix,
    kind: FormatKind,
    x: &DenseVector<f32>,
) -> Result<(), TestCaseError> {
    let stored = StoredMatrix::from_coo(coo, kind);
    let want = coo.spmv_dense(x).expect("golden spmv");
    let got = stored.spmv_dense(x).expect("format spmv");
    prop_assert_eq!(got.len(), want.len());
    for r in 0..want.len() {
        prop_assert_eq!(
            got[r].to_bits(),
            want[r].to_bits(),
            "{} row {}: {} vs {}",
            kind,
            r,
            got[r],
            want[r]
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// COO -> {CSC, CSR, bitmap, BCSR} -> COO is the identity on the
    /// canonical triplet list, bit-exact values included.
    #[test]
    fn every_format_roundtrips_losslessly(case in arb_case()) {
        let (coo, _) = case;
        for kind in FormatKind::ALL {
            assert_roundtrip(&coo, kind)?;
        }
    }

    /// Dense SpMV through every format reduces each destination row in
    /// ascending source order, so the result is `to_bits`-identical to
    /// the COO golden model.
    #[test]
    fn every_format_spmv_is_bit_identical_to_coo(case in arb_case()) {
        let (coo, seed) = case;
        let x = sparse::generate::random_dense_vector(coo.cols(), seed);
        for kind in FormatKind::ALL {
            assert_spmv_matches_golden(&coo, kind, &x)?;
        }
    }
}

/// The degenerate shapes proptest reaches only by luck, pinned: fully
/// empty, single entry in the far corner (everything before it is an
/// empty row/column), a lone explicit zero, and a matrix whose only
/// occupied column leaves every other column empty.
#[test]
fn degenerate_shapes_roundtrip_and_multiply() {
    let cases: Vec<CooMatrix> = vec![
        CooMatrix::new(5, 7),
        CooMatrix::from_triplets(9, 9, vec![(8, 8, 2.5)]).unwrap(),
        CooMatrix::from_triplets(4, 4, vec![(2, 1, 0.0)]).unwrap(),
        CooMatrix::from_triplets(6, 33, vec![(0, 32, 1.0), (3, 32, -2.0), (5, 32, 0.5)]).unwrap(),
        CooMatrix::from_triplets(1, 1, vec![(0, 0, -0.0)]).unwrap(),
    ];
    for coo in &cases {
        let x = sparse::generate::random_dense_vector(coo.cols(), 17);
        let want = coo.spmv_dense(&x).unwrap();
        for kind in FormatKind::ALL {
            let stored = StoredMatrix::from_coo(coo, kind);
            let back = stored.to_coo();
            let got: Vec<_> = back.iter().map(|(r, c, v)| (r, c, v.to_bits())).collect();
            let exp: Vec<_> = coo.iter().map(|(r, c, v)| (r, c, v.to_bits())).collect();
            assert_eq!(
                got,
                exp,
                "{kind} round-trip on {}x{}",
                coo.rows(),
                coo.cols()
            );
            let y = stored.spmv_dense(&x).unwrap();
            for r in 0..want.len() {
                assert_eq!(y[r].to_bits(), want[r].to_bits(), "{kind} spmv row {r}");
            }
        }
    }
}
