//! Reordering properties: a [`Permutation`] is a pure re-indexing.
//! Applying any reordering, encoding through any storage format, and
//! inverting must reproduce the canonical COO matrix bit-for-bit — and
//! an SpMV streamed over the reordered image, fed a permuted input and
//! un-permuted on the way out, must match the arrival-order product on
//! every bit. Reordering is a locality decision, never a numerical one.

use proptest::prelude::*;
use sparse::reorder::{compute, Permutation, ReorderKind};
use sparse::{CooMatrix, DenseVector, FormatKind, Idx, StoredMatrix};

/// Dyadic-grid values: every entry is a multiple of 1/8 with magnitude
/// at most 4, so any product of an entry and an input value is a
/// multiple of 1/64 bounded well inside f32's 24-bit mantissa. Row sums
/// of up to 120 such products are exact, hence order-independent —
/// which is what lets the reordered-summation tests demand `to_bits`
/// equality instead of a tolerance.
const VALUES: [f32; 8] = [0.0, 0.125, -0.375, 1.0, -2.0, 0.5, 4.0, -0.125];

/// A dyadic input vector derived from the case seed.
fn dyadic_vector(len: usize, seed: u64) -> DenseVector<f32> {
    (0..len)
        .map(|i| VALUES[((i as u64).wrapping_mul(7).wrapping_add(seed) % 8) as usize])
        .collect()
}

/// An arbitrary small matrix on the dyadic grid (duplicates summed by
/// the COO constructor stay on the grid) plus an input-vector seed.
fn arb_case() -> impl Strategy<Value = (CooMatrix, u64)> {
    (1usize..40, 1usize..40, 0u64..1000).prop_flat_map(|(rows, cols, seed)| {
        proptest::collection::vec((0..rows, 0..cols, 0usize..VALUES.len()), 0..120).prop_map(
            move |raw| {
                let triplets = raw
                    .into_iter()
                    .map(|(r, c, v)| (r as Idx, c as Idx, VALUES[v]))
                    .collect();
                let coo = CooMatrix::from_triplets(rows, cols, triplets).expect("in-bounds");
                (coo, seed)
            },
        )
    })
}

fn bits_of(coo: &CooMatrix) -> Vec<(Idx, Idx, u32)> {
    coo.iter().map(|(r, c, v)| (r, c, v.to_bits())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `invert` is a true inverse: applying a reordering and then its
    /// inverse is the identity on the canonical triplet list — even
    /// when the round trip passes through each storage format's
    /// encoder, so no format bakes in an arrival-order assumption.
    #[test]
    fn reorder_then_inverse_is_identity_through_every_format(case in arb_case()) {
        let (coo, _) = case;
        let want = bits_of(&coo);
        for kind in ReorderKind::ALL {
            let p = compute(kind, &coo);
            let permuted = p.apply_coo(&coo);
            prop_assert_eq!(permuted.nnz(), coo.nnz(), "{} dropped entries", kind);
            prop_assert_eq!(
                bits_of(&p.invert().apply_coo(&permuted)),
                want.clone(),
                "{} direct round trip",
                kind
            );
            for fmt in FormatKind::ALL {
                let stored = StoredMatrix::from_coo(&permuted, fmt);
                let back = p.invert().apply_coo(&stored.to_coo());
                prop_assert_eq!(
                    bits_of(&back),
                    want.clone(),
                    "{} through {} round trip",
                    kind,
                    fmt
                );
            }
        }
    }

    /// Streaming the reordered image of the matrix against a permuted
    /// input, through every storage format, and un-permuting the result
    /// reproduces the arrival-order product `to_bits`-exactly (dyadic
    /// values make every row sum exact, hence order-independent).
    #[test]
    fn reordered_spmv_unpermutes_to_identical_bits(case in arb_case()) {
        let (coo, seed) = case;
        let x = dyadic_vector(coo.cols(), seed);
        let want = coo.spmv_dense(&x).expect("golden spmv");
        for kind in ReorderKind::ALL {
            let p = compute(kind, &coo);
            let permuted = p.apply_coo(&coo);
            let xp: DenseVector<f32> = p.permute_dense(x.as_slice()).into();
            for fmt in FormatKind::ALL {
                let yp = StoredMatrix::from_coo(&permuted, fmt)
                    .spmv_dense(&xp)
                    .expect("reordered spmv");
                let y = p.unpermute_result(yp.as_slice());
                prop_assert_eq!(y.len(), want.len());
                for (r, (a, b)) in y.iter().zip(want.iter()).enumerate() {
                    prop_assert_eq!(
                        a.to_bits(), b.to_bits(),
                        "{}/{} row {}: {} vs {}", kind, fmt, r, a, b
                    );
                }
            }
        }
    }

    /// The active-list permutation used by the runtime's vector-permute
    /// contract agrees with the naive map-and-sort, stays strictly
    /// sorted, and maps back to the original set under the inverse.
    #[test]
    fn permute_active_is_a_sorted_bijection_on_the_list(case in arb_case()) {
        let (coo, seed) = case;
        // A deduplicated, sorted active list sampled from the columns.
        let mut active: Vec<Idx> = (0..coo.cols())
            .filter(|i| (*i as u64).wrapping_mul(31).wrapping_add(seed) % 3 == 0)
            .map(|i| i as Idx)
            .collect();
        active.sort_unstable();
        for kind in ReorderKind::ALL {
            let p = compute(kind, &coo);
            let mut out = Vec::new();
            p.permute_active(&active, &mut out);
            let mut naive: Vec<Idx> =
                active.iter().map(|&c| p.col_new()[c as usize]).collect();
            naive.sort_unstable();
            prop_assert_eq!(&out, &naive, "{} disagrees with map+sort", kind);
            prop_assert!(out.windows(2).all(|w| w[0] < w[1]), "{} not strictly sorted", kind);
            let mut back = Vec::new();
            p.invert().permute_active(&out, &mut back);
            prop_assert_eq!(back, active.clone(), "{} inverse lost indices", kind);
        }
    }
}

/// Degenerate shapes pinned: empty matrix, 1×N row, N×1 column, pure
/// diagonal, far-corner single entry, and a lone explicit zero. Every
/// reordering must round-trip them and leave their products bit-exact
/// (the square-only heuristics must degrade to the identity on the
/// rectangles rather than panic).
#[test]
fn degenerate_shapes_survive_every_reordering() {
    let cases: Vec<CooMatrix> = vec![
        CooMatrix::new(5, 5),
        CooMatrix::from_triplets(1, 33, vec![(0, 31, 0.5), (0, 2, -1.0)]).unwrap(),
        CooMatrix::from_triplets(33, 1, vec![(31, 0, 0.5), (2, 0, -1.0)]).unwrap(),
        CooMatrix::from_triplets(7, 7, (0..7).map(|i| (i, i, 0.25 * i as f32)).collect()).unwrap(),
        CooMatrix::from_triplets(9, 9, vec![(8, 8, 2.5)]).unwrap(),
        CooMatrix::from_triplets(4, 4, vec![(2, 1, 0.0)]).unwrap(),
    ];
    for coo in &cases {
        let x = dyadic_vector(coo.cols(), 17);
        let want = coo.spmv_dense(&x).unwrap();
        for kind in ReorderKind::ALL {
            let p = compute(kind, coo);
            assert_eq!(p.rows(), coo.rows());
            assert_eq!(p.cols(), coo.cols());
            if coo.rows() != coo.cols() && kind != ReorderKind::DegreeSort {
                assert!(
                    kind == ReorderKind::None || p.is_identity(),
                    "{kind} must be identity on rectangles"
                );
            }
            let permuted = p.apply_coo(coo);
            assert_eq!(
                bits_of(&p.invert().apply_coo(&permuted)),
                bits_of(coo),
                "{kind} round trip on {}x{}",
                coo.rows(),
                coo.cols()
            );
            let xp: DenseVector<f32> = p.permute_dense(x.as_slice()).into();
            let yp = permuted.spmv_dense(&xp).unwrap();
            let y = p.unpermute_result(yp.as_slice());
            for r in 0..want.len() {
                assert_eq!(y[r].to_bits(), want[r].to_bits(), "{kind} spmv row {r}");
            }
        }
    }
}

/// A permutation is its own double inverse, and composing `apply_coo`
/// twice with a hand-built asymmetric permutation lands where the
/// composed maps say it should.
#[test]
fn inverse_of_inverse_is_the_original() {
    let p = Permutation::new(vec![2, 0, 1], vec![1, 0, 3, 2]).unwrap();
    assert_eq!(p.invert().invert(), p);
    let m = CooMatrix::from_triplets(3, 4, vec![(0, 0, 1.0), (2, 3, -0.5)]).unwrap();
    let moved = p.apply_coo(&m);
    let got = bits_of(&moved);
    assert!(got.contains(&(2, 1, 1.0f32.to_bits())));
    assert!(got.contains(&(1, 2, (-0.5f32).to_bits())));
}
