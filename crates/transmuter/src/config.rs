//! System geometry, hardware configurations and microarchitectural
//! parameters (paper Table II).

use std::fmt;

/// System geometry: an `A x B` system has `A` tiles with `B` PEs each,
/// plus one LCP (local control processor) per tile.
///
/// The paper sweeps 4x8 .. 8x32 for threshold calibration and evaluates
/// applications on 16x16.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    tiles: usize,
    pes_per_tile: usize,
}

impl Geometry {
    /// Creates an `tiles x pes_per_tile` geometry.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(tiles: usize, pes_per_tile: usize) -> Self {
        assert!(
            tiles > 0 && pes_per_tile > 0,
            "geometry dimensions must be positive"
        );
        Geometry {
            tiles,
            pes_per_tile,
        }
    }

    /// Number of tiles (`A`).
    pub fn tiles(&self) -> usize {
        self.tiles
    }

    /// PEs per tile (`B`).
    pub fn pes_per_tile(&self) -> usize {
        self.pes_per_tile
    }

    /// Total PE count (`A * B`), excluding LCPs.
    pub fn total_pes(&self) -> usize {
        self.tiles * self.pes_per_tile
    }

    /// Total worker count: PEs plus one LCP per tile.
    pub fn total_workers(&self) -> usize {
        self.total_pes() + self.tiles
    }

    /// Global worker id of PE `(tile, pe)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn pe_id(&self, tile: usize, pe: usize) -> usize {
        assert!(tile < self.tiles && pe < self.pes_per_tile);
        tile * self.pes_per_tile + pe
    }

    /// Global worker id of tile `tile`'s LCP.
    ///
    /// # Panics
    ///
    /// Panics if `tile` is out of range.
    pub fn lcp_id(&self, tile: usize) -> usize {
        assert!(tile < self.tiles);
        self.total_pes() + tile
    }

    /// Maps a global worker id back to `(tile, Some(pe))` for PEs or
    /// `(tile, None)` for LCPs.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn locate(&self, worker: usize) -> (usize, Option<usize>) {
        assert!(
            worker < self.total_workers(),
            "worker {worker} out of range"
        );
        if worker < self.total_pes() {
            (worker / self.pes_per_tile, Some(worker % self.pes_per_tile))
        } else {
            (worker - self.total_pes(), None)
        }
    }

    /// Builds a [`crate::Machine`] with this geometry, the paper's
    /// microarchitecture and the [`HwConfig::Sc`] baseline configuration.
    pub fn machine(&self) -> crate::Machine {
        crate::Machine::new(*self, MicroArch::paper())
    }
}

impl fmt::Display for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.tiles, self.pes_per_tile)
    }
}

/// The four on-chip memory configurations CoSPARSE uses (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HwConfig {
    /// L1 shared cache, L2 shared cache — inner product, large data.
    Sc,
    /// L1 shared cache + shared SPM (vector in SPM), L2 shared cache —
    /// inner product with high vector reuse.
    Scs,
    /// L1 private cache, L2 private cache — outer product, short lists.
    Pc,
    /// L1 private SPM (merge heap in SPM), L2 private cache — outer
    /// product, long lists.
    Ps,
}

impl HwConfig {
    /// All four configurations in paper order.
    pub const ALL: [HwConfig; 4] = [HwConfig::Sc, HwConfig::Scs, HwConfig::Pc, HwConfig::Ps];

    /// L1 organisation under this configuration.
    pub fn l1(self) -> L1Mode {
        match self {
            HwConfig::Sc => L1Mode::SharedCache,
            HwConfig::Scs => L1Mode::SharedCacheSpm,
            HwConfig::Pc => L1Mode::PrivateCache,
            HwConfig::Ps => L1Mode::PrivateSpm,
        }
    }

    /// L2 organisation under this configuration.
    pub fn l2(self) -> L2Mode {
        match self {
            HwConfig::Sc | HwConfig::Scs => L2Mode::SharedCache,
            HwConfig::Pc | HwConfig::Ps => L2Mode::PrivateCache,
        }
    }

    /// Short name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            HwConfig::Sc => "SC",
            HwConfig::Scs => "SCS",
            HwConfig::Pc => "PC",
            HwConfig::Ps => "PS",
        }
    }
}

impl fmt::Display for HwConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// L1 bank organisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum L1Mode {
    /// All B banks form one line-interleaved cache shared by the tile's
    /// PEs (arbitrated crossbar).
    SharedCache,
    /// Half the banks form a shared cache, half a shared SPM.
    SharedCacheSpm,
    /// Bank `i` is PE `i`'s private cache (transparent crossbar).
    PrivateCache,
    /// Bank `i` is PE `i`'s private SPM; global accesses bypass to L2.
    PrivateSpm,
}

/// L2 bank organisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum L2Mode {
    /// All tiles' L2 banks form one globally line-interleaved cache.
    SharedCache,
    /// Each tile's L2 banks form a cache private to that tile.
    PrivateCache,
}

/// Microarchitectural parameters (paper Table II).
#[derive(Debug, Clone, PartialEq)]
pub struct MicroArch {
    /// Core clock in Hz (PEs and LCPs; 1 GHz in the paper).
    pub freq_hz: f64,
    /// Bytes per RCache/SPM bank (4 kB).
    pub bank_bytes: usize,
    /// Cache line size in bytes (64 B).
    pub line_bytes: usize,
    /// Cache associativity (4-way).
    pub ways: usize,
    /// Word granularity in bytes (4 B; banks are word-granular).
    pub word_bytes: usize,
    /// L1 bank access latency in cycles.
    pub l1_latency: u64,
    /// L2 bank access latency in cycles.
    pub l2_latency: u64,
    /// Crossbar response latency (1 cycle).
    pub xbar_latency: u64,
    /// Additional arbitration latency on shared (arbitrated) crossbars.
    pub arbitration_latency: u64,
    /// Number of HBM pseudo-channels (16).
    pub hbm_channels: usize,
    /// Minimum HBM access latency in cycles (80 ns @ 1 GHz).
    pub hbm_latency_min: u64,
    /// Maximum HBM access latency in cycles (150 ns @ 1 GHz).
    pub hbm_latency_max: u64,
    /// Sustained bytes per cycle per pseudo-channel (8000 MB/s @ 1 GHz).
    pub hbm_bytes_per_cycle: u64,
    /// Runtime reconfiguration switch cost in cycles (≤10 per §II-C).
    pub reconfig_cycles: u64,
    /// Whether RCache banks run a stride (next-line) prefetcher.
    pub prefetch: bool,
    /// Fraction of L1 banks devoted to SPM in [`L1Mode::SharedCacheSpm`].
    pub scs_spm_fraction: f64,
}

impl MicroArch {
    /// The paper's Table II parameters.
    pub fn paper() -> Self {
        MicroArch {
            freq_hz: 1.0e9,
            bank_bytes: 4096,
            line_bytes: 64,
            ways: 4,
            word_bytes: 4,
            l1_latency: 1,
            l2_latency: 2,
            xbar_latency: 1,
            arbitration_latency: 1,
            hbm_channels: 16,
            hbm_latency_min: 80,
            hbm_latency_max: 150,
            hbm_bytes_per_cycle: 8,
            reconfig_cycles: 10,
            prefetch: true,
            scs_spm_fraction: 0.5,
        }
    }

    /// Number of L1 banks operating as cache for a tile with
    /// `pes_per_tile` banks under `mode`. At least one bank remains a
    /// cache in SCS mode.
    pub fn l1_cache_banks(&self, pes_per_tile: usize, mode: L1Mode) -> usize {
        match mode {
            L1Mode::SharedCache | L1Mode::PrivateCache => pes_per_tile,
            L1Mode::SharedCacheSpm => {
                let spm = ((pes_per_tile as f64 * self.scs_spm_fraction) as usize)
                    .clamp(1, pes_per_tile - 1);
                pes_per_tile - spm
            }
            L1Mode::PrivateSpm => 0,
        }
    }

    /// Bytes of SPM usable per tile under `mode` (shared SPM for SCS;
    /// per-PE SPM summed for PS).
    pub fn spm_bytes_per_tile(&self, pes_per_tile: usize, mode: L1Mode) -> usize {
        match mode {
            L1Mode::SharedCache | L1Mode::PrivateCache => 0,
            L1Mode::SharedCacheSpm => {
                (pes_per_tile - self.l1_cache_banks(pes_per_tile, mode)) * self.bank_bytes
            }
            L1Mode::PrivateSpm => pes_per_tile * self.bank_bytes,
        }
    }

    /// Bytes of SPM private to one PE (PS mode), 0 otherwise.
    pub fn spm_bytes_per_pe(&self, mode: L1Mode) -> usize {
        match mode {
            L1Mode::PrivateSpm => self.bank_bytes,
            _ => 0,
        }
    }

    /// Total L2 cache capacity in bytes for a geometry (always B banks
    /// per tile at L2).
    pub fn l2_bytes_total(&self, geometry: Geometry) -> usize {
        geometry.total_pes() * self.bank_bytes
    }

    /// Number of cache sets per bank.
    pub fn sets_per_bank(&self) -> usize {
        self.bank_bytes / (self.line_bytes * self.ways)
    }
}

impl Default for MicroArch {
    fn default() -> Self {
        MicroArch::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_ids_roundtrip() {
        let g = Geometry::new(4, 8);
        assert_eq!(g.total_pes(), 32);
        assert_eq!(g.total_workers(), 36);
        assert_eq!(g.pe_id(2, 3), 19);
        assert_eq!(g.locate(19), (2, Some(3)));
        assert_eq!(g.lcp_id(1), 33);
        assert_eq!(g.locate(33), (1, None));
        assert_eq!(g.to_string(), "4x8");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_geometry_rejected() {
        let _ = Geometry::new(0, 8);
    }

    #[test]
    fn hwconfig_modes_match_figure_2() {
        assert_eq!(HwConfig::Sc.l1(), L1Mode::SharedCache);
        assert_eq!(HwConfig::Sc.l2(), L2Mode::SharedCache);
        assert_eq!(HwConfig::Scs.l1(), L1Mode::SharedCacheSpm);
        assert_eq!(HwConfig::Scs.l2(), L2Mode::SharedCache);
        assert_eq!(HwConfig::Pc.l1(), L1Mode::PrivateCache);
        assert_eq!(HwConfig::Pc.l2(), L2Mode::PrivateCache);
        assert_eq!(HwConfig::Ps.l1(), L1Mode::PrivateSpm);
        assert_eq!(HwConfig::Ps.l2(), L2Mode::PrivateCache);
    }

    #[test]
    fn scs_splits_banks() {
        let ua = MicroArch::paper();
        assert_eq!(ua.l1_cache_banks(8, L1Mode::SharedCacheSpm), 4);
        assert_eq!(ua.spm_bytes_per_tile(8, L1Mode::SharedCacheSpm), 4 * 4096);
        assert_eq!(ua.l1_cache_banks(8, L1Mode::SharedCache), 8);
        assert_eq!(ua.spm_bytes_per_tile(8, L1Mode::PrivateSpm), 8 * 4096);
        assert_eq!(ua.spm_bytes_per_pe(L1Mode::PrivateSpm), 4096);
        assert_eq!(ua.spm_bytes_per_pe(L1Mode::SharedCache), 0);
    }

    #[test]
    fn paper_uarch_matches_table_ii() {
        let ua = MicroArch::paper();
        assert_eq!(ua.bank_bytes, 4096);
        assert_eq!(ua.ways, 4);
        assert_eq!(ua.line_bytes, 64);
        assert_eq!(ua.hbm_channels, 16);
        assert_eq!(ua.sets_per_bank(), 16);
        assert!(ua.reconfig_cycles <= 10);
    }
}
