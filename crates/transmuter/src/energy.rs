//! Energy model.
//!
//! The paper builds a power model "based on the static and dynamic power
//! of each individual component ... cross-verified with a fabricated
//! chip prototype" (the 40 nm Transmuter test chip, VLSI'19), with cache
//! power from CACTI 7.0. We reproduce the same structure: a per-event
//! dynamic energy table plus per-component static leakage integrated
//! over the run, with constants in the range CACTI 7.0 reports for
//! 40 nm SRAM banks and the M4F-class cores the PEs are modeled after.
//! Ratios (the paper's headline metric) are far more sensitive to event
//! *counts* — which the simulator measures — than to these constants.

use crate::config::Geometry;
use crate::stats::SimStats;

/// Per-event dynamic energies (joules) and static power (watts).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Energy of one active PE cycle (compute or issue).
    pub pe_active_j: f64,
    /// Energy of one stalled/idle PE cycle (clock tree + leakage share).
    pub pe_stall_j: f64,
    /// One L1 bank access (cache probe or SPM word).
    pub l1_access_j: f64,
    /// One L2 bank access.
    pub l2_access_j: f64,
    /// One crossbar traversal.
    pub xbar_j: f64,
    /// One 64 B HBM line transfer (read or write).
    pub hbm_line_j: f64,
    /// Static power per PE/LCP core.
    pub static_per_core_w: f64,
    /// Static power per SRAM bank (L1 + L2).
    pub static_per_bank_w: f64,
    /// Static power of the HBM stack + peripherals.
    pub static_base_w: f64,
}

impl EnergyModel {
    /// Constants for the 40 nm prototype-calibrated model.
    pub fn paper_40nm() -> Self {
        EnergyModel {
            pe_active_j: 12.0e-12,
            pe_stall_j: 2.5e-12,
            l1_access_j: 5.0e-12,
            l2_access_j: 8.0e-12,
            xbar_j: 2.0e-12,
            hbm_line_j: 2.0e-9, // ~31 pJ/B * 64 B
            static_per_core_w: 0.4e-3,
            static_per_bank_w: 0.08e-3,
            static_base_w: 60.0e-3,
        }
    }

    /// Computes the energy breakdown of a run.
    ///
    /// `cycles` and `freq_hz` determine the static-energy integration
    /// window; `geometry` determines how many cores and banks leak.
    pub fn breakdown(
        &self,
        stats: &SimStats,
        cycles: u64,
        freq_hz: f64,
        geometry: Geometry,
    ) -> EnergyBreakdown {
        let seconds = cycles as f64 / freq_hz;
        let cores = geometry.total_workers() as f64;
        // B L1 banks + B L2 banks per tile regardless of mode.
        let banks = (geometry.total_pes() * 2) as f64;
        let pe = stats.compute_cycles as f64 * self.pe_active_j
            + stats.ops as f64 * self.pe_active_j
            + (stats.mem_stall_cycles + stats.barrier_stall_cycles) as f64 * self.pe_stall_j;
        let l1 = (stats.l1_hits + stats.l1_misses + stats.spm_accesses) as f64 * self.l1_access_j;
        let l2 = (stats.l2_hits + stats.l2_misses + stats.l2_writeback_installs) as f64
            * self.l2_access_j;
        let xbar = stats.xbar_traversals as f64 * self.xbar_j;
        let hbm = (stats.hbm_line_reads + stats.hbm_line_writes) as f64 * self.hbm_line_j;
        let static_j = seconds
            * (cores * self.static_per_core_w
                + banks * self.static_per_bank_w
                + self.static_base_w);
        EnergyBreakdown {
            pe,
            l1,
            l2,
            xbar,
            hbm,
            static_j,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::paper_40nm()
    }
}

/// Energy of a run split by component, all in joules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// PE/LCP core energy.
    pub pe: f64,
    /// L1 banks (cache probes + SPM accesses).
    pub l1: f64,
    /// L2 banks.
    pub l2: f64,
    /// Crossbars.
    pub xbar: f64,
    /// HBM line transfers.
    pub hbm: f64,
    /// Leakage integrated over the run.
    pub static_j: f64,
}

impl EnergyBreakdown {
    /// Total joules.
    pub fn total(&self) -> f64 {
        self.pe + self.l1 + self.l2 + self.xbar + self.hbm + self.static_j
    }

    /// Field-wise sum.
    pub fn merge(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            pe: self.pe + other.pe,
            l1: self.l1 + other.l1,
            l2: self.l2 + other.l2,
            xbar: self.xbar + other.xbar,
            hbm: self.hbm + other.hbm,
            static_j: self.static_j + other.static_j,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_power_scales_with_geometry() {
        let m = EnergyModel::paper_40nm();
        let s = SimStats::default();
        let small = m.breakdown(&s, 1000, 1e9, Geometry::new(2, 4));
        let large = m.breakdown(&s, 1000, 1e9, Geometry::new(16, 16));
        assert!(large.static_j > small.static_j);
    }

    #[test]
    fn average_power_is_sub_watt_for_16x16() {
        // The paper claims the CPU burns >200x more power than the 16x16
        // system; a Xeon is ~130 W, so the platform must sit well under
        // 1 W even with activity.
        let m = EnergyModel::paper_40nm();
        let g = Geometry::new(16, 16);
        let cycles = 1_000_000u64;
        let stats = SimStats {
            ops: 50_000_000,
            compute_cycles: 30_000_000,
            l1_hits: 40_000_000,
            l2_hits: 5_000_000,
            hbm_line_reads: 500_000,
            xbar_traversals: 45_000_000,
            ..Default::default()
        };
        let b = m.breakdown(&stats, cycles, 1e9, g);
        let watts = b.total() / (cycles as f64 / 1e9);
        assert!(watts < 5.0, "implausibly high power {watts} W");
        assert!(watts > 0.05, "implausibly low power {watts} W");
    }

    #[test]
    fn breakdown_total_and_merge() {
        let a = EnergyBreakdown {
            pe: 1.0,
            l1: 2.0,
            ..Default::default()
        };
        let b = EnergyBreakdown {
            hbm: 3.0,
            ..Default::default()
        };
        assert_eq!(a.total(), 3.0);
        assert_eq!(a.merge(&b).total(), 6.0);
    }

    #[test]
    fn hbm_dominates_for_dram_bound_runs() {
        let m = EnergyModel::paper_40nm();
        let stats = SimStats {
            hbm_line_reads: 1_000_000,
            ..Default::default()
        };
        let b = m.breakdown(&stats, 100_000, 1e9, Geometry::new(4, 8));
        assert!(b.hbm > b.static_j);
        assert!(b.hbm > b.pe);
    }
}
