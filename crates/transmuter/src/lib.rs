//! A cycle-approximate simulator of a Transmuter-like reconfigurable
//! manycore — the hardware substrate CoSPARSE reconfigures (paper §II-C,
//! Table II).
//!
//! The machine is `A x B`: `A` tiles of `B` lightweight in-order PEs
//! plus one LCP per tile, behind a two-level reconfigurable memory
//! hierarchy. Each level's banks can operate as caches or scratchpads,
//! shared (arbitrated crossbar) or private (transparent crossbar); the
//! four combinations CoSPARSE uses are [`HwConfig::Sc`],
//! [`HwConfig::Scs`], [`HwConfig::Pc`] and [`HwConfig::Ps`]. Runtime
//! reconfiguration costs ≤10 cycles plus a dirty-line drain.
//!
//! Simulation is trace-driven: kernels compile workloads into per-worker
//! [`Op`] streams (addresses and cycle counts, never data — see
//! DESIGN.md §2), and [`Machine::run`] walks them through the memory
//! system, reporting cycles, event statistics and energy.
//!
//! # Example
//!
//! ```
//! use transmuter::{Geometry, HwConfig, Machine, MicroArch, StreamBuilder, StreamSet};
//!
//! # fn main() -> Result<(), transmuter::SimError> {
//! let mut machine = Machine::new(Geometry::new(2, 4), MicroArch::paper());
//! machine.reconfigure(HwConfig::Scs);
//!
//! let mut streams = StreamSet::new(machine.geometry());
//! for tile in 0..2 {
//!     for pe in 0..4 {
//!         let mut p = StreamBuilder::new();
//!         p.load(0x1000 + pe as u64 * 64).compute(3).spm_load(0);
//!         streams.set_pe(tile, pe, p.into_stream());
//!     }
//! }
//! let report = machine.run(streams)?;
//! assert!(report.cycles > 0);
//! println!("{} cycles, {:.3e} J", report.cycles, report.joules());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analyze;
mod cache;
mod config;
mod energy;
mod hbm;
mod machine;
mod memsys;
mod op;
mod program;
mod stats;
mod trace;
pub mod verify;

pub use analyze::{analyze, Analysis, Conflict, ParCommit, ProvenKind};
pub use cache::{CacheBank, ProbeResult};
pub use config::{Geometry, HwConfig, L1Mode, L2Mode, MicroArch};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use hbm::Hbm;
pub use machine::{ExecMode, Machine, SimError, StreamSet};
pub use memsys::MemorySystem;
pub use op::{Addr, Op, OpStream, StreamBuilder};
pub use program::{Program, ProgramBuilder};
pub use stats::{EpochStats, MemoStats, SimReport, SimStats};
pub use trace::{TraceCapture, TraceConfig, TraceEvent};
pub use verify::{
    detect_races, lint, Diagnostic, LintKind, ProgramSet, Race, RaceKind, RaceSite, Region,
    RegionMap, Severity,
};
