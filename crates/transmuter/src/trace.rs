//! Execution tracing: an optional per-worker event recorder for
//! debugging kernels and inspecting interleavings.
//!
//! Tracing is off by default (zero overhead beyond a branch); enable it
//! with [`crate::Machine::set_trace`] before a run and collect events
//! with [`crate::Machine::take_trace`] afterwards.

use crate::op::Op;

/// One recorded event: worker `worker` issued `op` at `cycle` and became
/// ready again at `done`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Issue cycle.
    pub cycle: u64,
    /// Completion cycle (next issue opportunity).
    pub done: u64,
    /// Global worker id.
    pub worker: u32,
    /// The operation issued.
    pub op: Op,
}

/// Trace configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Only record these workers (`None` = all).
    pub workers: Option<Vec<usize>>,
    /// Stop recording after this many events (protects memory on long
    /// runs).
    pub max_events: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { workers: None, max_events: 1 << 20 }
    }
}

/// The recorder the machine writes into while tracing is enabled.
#[derive(Debug, Default)]
pub(crate) struct Tracer {
    config: Option<TraceConfig>,
    events: Vec<TraceEvent>,
}

impl Tracer {
    pub(crate) fn configure(&mut self, config: Option<TraceConfig>) {
        self.config = config;
        self.events.clear();
    }

    #[inline]
    pub(crate) fn record(&mut self, cycle: u64, done: u64, worker: u32, op: Op) {
        let Some(cfg) = &self.config else { return };
        if self.events.len() >= cfg.max_events {
            return;
        }
        if let Some(ws) = &cfg.workers {
            if !ws.contains(&(worker as usize)) {
                return;
            }
        }
        self.events.push(TraceEvent { cycle, done, worker, op });
    }

    pub(crate) fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    pub(crate) fn enabled(&self) -> bool {
        self.config.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::default();
        t.record(0, 1, 0, Op::Compute(1));
        assert!(t.take().is_empty());
    }

    #[test]
    fn worker_filter_applies() {
        let mut t = Tracer::default();
        t.configure(Some(TraceConfig { workers: Some(vec![1]), max_events: 10 }));
        t.record(0, 1, 0, Op::Compute(1));
        t.record(0, 1, 1, Op::Compute(1));
        let ev = t.take();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].worker, 1);
    }

    #[test]
    fn max_events_caps_recording() {
        let mut t = Tracer::default();
        t.configure(Some(TraceConfig { workers: None, max_events: 2 }));
        for i in 0..5 {
            t.record(i, i + 1, 0, Op::Compute(1));
        }
        assert_eq!(t.take().len(), 2);
    }
}
