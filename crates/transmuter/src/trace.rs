//! Execution tracing: an optional per-worker event recorder for
//! debugging kernels and inspecting interleavings.
//!
//! Tracing is off by default (zero overhead beyond a branch); enable it
//! with [`crate::Machine::set_trace`] before a run and collect events
//! with [`crate::Machine::take_trace`] (or
//! [`crate::Machine::take_trace_capture`], which also reports whether
//! the `max_events` cap dropped events) afterwards.
//!
//! Barrier ops are recorded at *arrival* (`done == cycle`), so a
//! worker's subsequence of the trace is exactly its program order — the
//! property the [`crate::verify`] race detector builds its
//! happens-before relation on.

use crate::op::Op;

/// One recorded event: worker `worker` issued `op` at `cycle` and became
/// ready again at `done`.
///
/// For barrier ops `done` equals `cycle` (the arrival cycle); the
/// release cycle is not known at record time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Issue cycle.
    pub cycle: u64,
    /// Completion cycle (next issue opportunity).
    pub done: u64,
    /// Global worker id.
    pub worker: u32,
    /// The operation issued.
    pub op: Op,
}

/// Trace configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Only record these workers (`None` = all).
    pub workers: Option<Vec<usize>>,
    /// Stop recording after this many events (protects memory on long
    /// runs).
    pub max_events: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            workers: None,
            max_events: 1 << 20,
        }
    }
}

/// Events taken from the tracer, plus whether the `max_events` cap
/// silently dropped any.
#[derive(Debug, Clone, Default)]
pub struct TraceCapture {
    /// The recorded events, in global record order (per-worker
    /// subsequences are in program order).
    pub events: Vec<TraceEvent>,
    /// True if at least one event was dropped because `max_events` was
    /// reached. A truncated trace under-approximates the run; race
    /// detection on it can miss conflicts but never invents them.
    pub truncated: bool,
}

/// The recorder the machine writes into while tracing is enabled.
#[derive(Debug, Default)]
pub(crate) struct Tracer {
    config: Option<TraceConfig>,
    /// Worker filter precomputed as a bitset (`None` = record all);
    /// avoids a linear `Vec::contains` scan on every recorded event.
    filter: Option<Box<[u64]>>,
    events: Vec<TraceEvent>,
    truncated: bool,
}

impl Tracer {
    pub(crate) fn configure(&mut self, config: Option<TraceConfig>) {
        self.filter = config
            .as_ref()
            .and_then(|cfg| cfg.workers.as_ref())
            .map(|ws| {
                let words = ws.iter().max().map_or(0, |&m| m / 64 + 1);
                let mut bits = vec![0u64; words].into_boxed_slice();
                for &w in ws {
                    bits[w / 64] |= 1 << (w % 64);
                }
                bits
            });
        self.config = config;
        self.events.clear();
        self.truncated = false;
    }

    #[inline]
    pub(crate) fn record(&mut self, cycle: u64, done: u64, worker: u32, op: Op) {
        let Some(cfg) = &self.config else { return };
        if let Some(bits) = &self.filter {
            let w = worker as usize;
            let word = bits.get(w / 64).copied().unwrap_or(0);
            if word & (1 << (w % 64)) == 0 {
                return;
            }
        }
        if self.events.len() >= cfg.max_events {
            self.truncated = true;
            return;
        }
        self.events.push(TraceEvent {
            cycle,
            done,
            worker,
            op,
        });
    }

    pub(crate) fn take(&mut self) -> TraceCapture {
        TraceCapture {
            events: std::mem::take(&mut self.events),
            truncated: std::mem::take(&mut self.truncated),
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.config.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::default();
        t.record(0, 1, 0, Op::Compute(1));
        assert!(t.take().events.is_empty());
    }

    #[test]
    fn worker_filter_applies() {
        let mut t = Tracer::default();
        t.configure(Some(TraceConfig {
            workers: Some(vec![1]),
            max_events: 10,
        }));
        t.record(0, 1, 0, Op::Compute(1));
        t.record(0, 1, 1, Op::Compute(1));
        let ev = t.take().events;
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].worker, 1);
    }

    #[test]
    fn worker_filter_handles_large_ids() {
        let mut t = Tracer::default();
        t.configure(Some(TraceConfig {
            workers: Some(vec![0, 130]),
            max_events: 10,
        }));
        t.record(0, 1, 130, Op::Compute(1));
        t.record(0, 1, 131, Op::Compute(1));
        t.record(0, 1, 64, Op::Compute(1));
        t.record(0, 1, 0, Op::Compute(1));
        let ev = t.take().events;
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].worker, 130);
        assert_eq!(ev[1].worker, 0);
    }

    #[test]
    fn max_events_caps_recording_and_flags_truncation() {
        let mut t = Tracer::default();
        t.configure(Some(TraceConfig {
            workers: None,
            max_events: 2,
        }));
        for i in 0..5 {
            t.record(i, i + 1, 0, Op::Compute(1));
        }
        let cap = t.take();
        assert_eq!(cap.events.len(), 2);
        assert!(cap.truncated);
        // Taking resets the flag.
        t.record(9, 10, 0, Op::Compute(1));
        let cap = t.take();
        assert_eq!(cap.events.len(), 1);
        assert!(!cap.truncated);
    }

    #[test]
    fn untruncated_capture_is_clean() {
        let mut t = Tracer::default();
        t.configure(Some(TraceConfig::default()));
        t.record(0, 1, 0, Op::Compute(1));
        let cap = t.take();
        assert_eq!(cap.events.len(), 1);
        assert!(!cap.truncated);
    }
}
