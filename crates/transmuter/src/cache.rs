//! A single reconfigurable-cache bank in cache mode: set-associative,
//! word-granular, write-back/write-allocate, true-LRU.

/// Result of probing a cache bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeResult {
    /// The line was present.
    Hit,
    /// The line was absent; `victim_dirty` says whether the filled way
    /// evicted a dirty line that must be written back.
    Miss {
        /// True if a dirty victim line was evicted by the fill.
        victim_dirty: bool,
        /// Line address of the evicted victim, when one existed.
        victim_line: Option<u64>,
    },
}

/// One way, packed to 16 bytes so a 4-way set spans a single host cache
/// line: `meta` holds `lru << 2 | dirty << 1 | valid`, where a larger
/// LRU stamp means more recently used.
#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    meta: u64,
}

const VALID: u64 = 1;
const DIRTY: u64 = 2;
const LRU_SHIFT: u32 = 2;

impl Way {
    #[inline]
    fn valid(self) -> bool {
        self.meta & VALID != 0
    }

    #[inline]
    fn dirty(self) -> bool {
        self.meta & DIRTY != 0
    }

    /// Victim priority: invalid ways evict first (key 0), then true LRU.
    #[inline]
    fn victim_key(self) -> u64 {
        if self.valid() {
            (self.meta >> LRU_SHIFT) + 1
        } else {
            0
        }
    }
}

const INVALID: Way = Way { tag: 0, meta: 0 };

/// One cache bank (4 kB, 4-way in the paper configuration).
///
/// The bank operates on *line addresses* (byte address / line size); the
/// memory system performs the interleaving that selects a bank.
#[derive(Debug, Clone)]
pub struct CacheBank {
    sets: usize,
    ways: usize,
    store: Vec<Way>,
    stamp: u64,
    /// Last missed line, for the next-line stride prefetcher.
    last_miss_line: u64,
    hits: u64,
    misses: u64,
    evictions_dirty: u64,
}

impl CacheBank {
    /// Creates a bank with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways == 0`.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two(), "cache sets must be a power of two");
        assert!(ways > 0, "cache needs at least one way");
        CacheBank {
            sets,
            ways,
            store: vec![INVALID; sets * ways],
            stamp: 0,
            last_miss_line: u64::MAX,
            hits: 0,
            misses: 0,
            evictions_dirty: 0,
        }
    }

    fn set_of(&self, line: u64) -> usize {
        (line as usize) & (self.sets - 1)
    }

    /// Accesses `line`; on a miss the line is filled (write-allocate).
    /// `is_store` marks the line dirty.
    pub fn access(&mut self, line: u64, is_store: bool) -> ProbeResult {
        self.stamp += 1;
        let set = self.set_of(line);
        let base = set * self.ways;
        let slots = &mut self.store[base..base + self.ways];
        // Probe.
        for way in slots.iter_mut() {
            if way.valid() && way.tag == line {
                way.meta = (self.stamp << LRU_SHIFT)
                    | (way.meta & DIRTY)
                    | ((is_store as u64) << 1)
                    | VALID;
                self.hits += 1;
                return ProbeResult::Hit;
            }
        }
        // Miss: choose victim (invalid first, else LRU; ties keep the
        // first way, matching `min_by_key`).
        self.misses += 1;
        let mut victim = 0;
        let mut best = slots[0].victim_key();
        for (i, w) in slots.iter().enumerate().skip(1) {
            let key = w.victim_key();
            if key < best {
                best = key;
                victim = i;
            }
        }
        let old = slots[victim];
        slots[victim] = Way {
            tag: line,
            meta: (self.stamp << LRU_SHIFT) | ((is_store as u64) << 1) | VALID,
        };
        let victim_dirty = old.valid() && old.dirty();
        if victim_dirty {
            self.evictions_dirty += 1;
        }
        ProbeResult::Miss {
            victim_dirty,
            victim_line: if old.valid() { Some(old.tag) } else { None },
        }
    }

    /// Installs `line` without counting a demand access (prefetch fill).
    /// Returns the dirty victim line if one was evicted.
    pub fn install(&mut self, line: u64) -> Option<u64> {
        let set = self.set_of(line);
        let base = set * self.ways;
        let slots = &mut self.store[base..base + self.ways];
        if slots.iter().any(|w| w.valid() && w.tag == line) {
            return None;
        }
        self.stamp += 1;
        let mut victim = 0;
        let mut best = slots[0].victim_key();
        for (i, w) in slots.iter().enumerate().skip(1) {
            let key = w.victim_key();
            if key < best {
                best = key;
                victim = i;
            }
        }
        let old = slots[victim];
        // Prefetched lines install at LRU-but-valid priority: use current
        // stamp (simplification; thrash-resistance is second-order here).
        slots[victim] = Way {
            tag: line,
            meta: (self.stamp << LRU_SHIFT) | VALID,
        };
        if old.valid() && old.dirty() {
            self.evictions_dirty += 1;
            Some(old.tag)
        } else {
            None
        }
    }

    /// True if `line` is resident (no LRU update, no stats).
    pub fn contains(&self, line: u64) -> bool {
        let set = self.set_of(line);
        let base = set * self.ways;
        self.store[base..base + self.ways]
            .iter()
            .any(|w| w.valid() && w.tag == line)
    }

    /// Detects a sequential stride: true when `line` directly follows
    /// the previously observed line (hits and misses both advance the
    /// detector, like a tagged stride prefetcher). The caller decides
    /// whether to prefetch `line + 1`.
    pub fn stride_detected(&mut self, line: u64) -> bool {
        let hit = self.last_miss_line != u64::MAX && line == self.last_miss_line + 1;
        self.last_miss_line = line;
        hit
    }

    /// Invalidates everything, returning the number of dirty lines that
    /// must be written back (the cost of a cache→SPM reconfiguration).
    pub fn flush(&mut self) -> usize {
        let dirty = self
            .store
            .iter()
            .filter(|w| w.meta & (VALID | DIRTY) == (VALID | DIRTY))
            .count();
        self.store.fill(INVALID);
        self.stamp = 0;
        self.last_miss_line = u64::MAX;
        dirty
    }

    /// Demand hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty evictions so far (demand + prefetch installs).
    pub fn dirty_evictions(&self) -> u64 {
        self.evictions_dirty
    }

    /// Resets statistics (contents retained).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.evictions_dirty = 0;
    }

    /// True when this bank will time every future access sequence
    /// exactly like `other`: same geometry, same resident lines with
    /// the same dirty bits, the same per-set LRU *ordering*, and the
    /// same stride-detector state. Absolute LRU stamps and the demand
    /// counters are excluded — stamps grow monotonically across runs
    /// while only their relative order drives victim selection, and the
    /// counters are observational. This is the equivalence behind the
    /// machine's steady-state memo.
    pub fn same_behavior(&self, other: &CacheBank) -> bool {
        if self.sets != other.sets
            || self.ways != other.ways
            || self.last_miss_line != other.last_miss_line
        {
            return false;
        }
        for set in 0..self.sets {
            let base = set * self.ways;
            let a = &self.store[base..base + self.ways];
            let b = &other.store[base..base + self.ways];
            for (x, y) in a.iter().zip(b) {
                if x.valid() != y.valid()
                    || (x.valid() && (x.tag != y.tag || x.dirty() != y.dirty()))
                {
                    return false;
                }
            }
            // Victim selection compares keys pairwise (ties keep the
            // first way), so matching pairwise orderings ⇒ matching
            // victims forever.
            for i in 0..self.ways {
                for j in (i + 1)..self.ways {
                    if a[i].victim_key().cmp(&a[j].victim_key())
                        != b[i].victim_key().cmp(&b[j].victim_key())
                    {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c = CacheBank::new(16, 4);
        assert!(matches!(c.access(42, false), ProbeResult::Miss { .. }));
        assert_eq!(c.access(42, false), ProbeResult::Hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = CacheBank::new(1, 2);
        c.access(0, false);
        c.access(1, false);
        c.access(0, false); // 0 now MRU
        c.access(2, false); // evicts 1
        assert!(c.contains(0));
        assert!(!c.contains(1));
        assert!(c.contains(2));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = CacheBank::new(1, 1);
        c.access(7, true);
        match c.access(8, false) {
            ProbeResult::Miss {
                victim_dirty,
                victim_line,
            } => {
                assert!(victim_dirty);
                assert_eq!(victim_line, Some(7));
            }
            other => panic!("expected miss, got {other:?}"),
        }
        assert_eq!(c.dirty_evictions(), 1);
    }

    #[test]
    fn sets_isolate_lines() {
        let mut c = CacheBank::new(4, 1);
        c.access(0, false);
        c.access(1, false);
        c.access(2, false);
        c.access(3, false);
        // All in different sets → all resident despite 1 way.
        for l in 0..4 {
            assert!(c.contains(l), "line {l}");
        }
    }

    #[test]
    fn flush_counts_dirty_lines() {
        let mut c = CacheBank::new(16, 4);
        c.access(1, true);
        c.access(2, true);
        c.access(3, false);
        assert_eq!(c.flush(), 2);
        assert!(!c.contains(1));
    }

    #[test]
    fn stride_detection() {
        let mut c = CacheBank::new(16, 4);
        assert!(!c.stride_detected(10));
        assert!(c.stride_detected(11));
        assert!(!c.stride_detected(20));
        assert!(c.stride_detected(21));
    }

    #[test]
    fn install_does_not_count_stats() {
        let mut c = CacheBank::new(16, 4);
        c.install(5);
        assert_eq!(c.misses(), 0);
        assert_eq!(c.access(5, false), ProbeResult::Hit);
    }

    #[test]
    fn install_existing_is_noop() {
        let mut c = CacheBank::new(16, 4);
        c.access(5, true);
        assert_eq!(c.install(5), None);
        // Dirtiness preserved.
        assert_eq!(c.flush(), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ = CacheBank::new(3, 4);
    }
}
