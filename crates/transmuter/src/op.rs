//! The abstract operation stream executed by each PE / LCP.
//!
//! Kernels (in the `cosparse` crate) compile a workload into one lazy
//! [`OpStream`] per worker; the simulator walks the streams cycle by
//! cycle. Timing is *structure-driven*: ops carry addresses and cycle
//! counts, never data values — numerical results are computed
//! functionally on the host (see DESIGN.md §2).

/// A byte address in the simulated global address space.
pub type Addr = u64;

/// One abstract operation issued by a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Busy the core for `n >= 1` cycles (ALU work, branches, address
    /// arithmetic already folded in by the kernel's cost model).
    Compute(u32),
    /// Load a word from the global address space through the memory
    /// hierarchy (blocking, as on an in-order M4F).
    Load(Addr),
    /// Store a word to the global address space (write-back,
    /// write-allocate).
    Store(Addr),
    /// Load a word from scratchpad at byte `offset` (shared SPM in SCS,
    /// the PE's private SPM in PS).
    SpmLoad(u32),
    /// Store a word to scratchpad at byte `offset`.
    SpmStore(u32),
    /// Block until every PE in the same tile reaches this barrier.
    /// Streams within a tile must contain matching barrier sequences.
    TileBarrier,
    /// Block until every worker in the machine reaches this barrier.
    GlobalBarrier,
}

/// A lazy stream of operations for one worker.
///
/// Blanket-implemented for every `Iterator<Item = Op>`, so kernels can
/// return chained/flat-mapped iterators without boxing ceremony at the
/// definition site.
pub trait OpStream: Iterator<Item = Op> {}

impl<I: Iterator<Item = Op>> OpStream for I {}

/// A convenience builder that records ops into a buffer; useful in tests
/// and for short LCP programs where laziness does not matter.
#[derive(Debug, Clone, Default)]
pub struct StreamBuilder {
    ops: Vec<Op>,
}

impl StreamBuilder {
    /// Creates an empty program.
    pub fn new() -> Self {
        StreamBuilder::default()
    }

    /// Appends a compute burst (clamped to at least one cycle).
    pub fn compute(&mut self, cycles: u32) -> &mut Self {
        self.ops.push(Op::Compute(cycles.max(1)));
        self
    }

    /// Appends a global load.
    pub fn load(&mut self, addr: Addr) -> &mut Self {
        self.ops.push(Op::Load(addr));
        self
    }

    /// Appends a global store.
    pub fn store(&mut self, addr: Addr) -> &mut Self {
        self.ops.push(Op::Store(addr));
        self
    }

    /// Appends an SPM load.
    pub fn spm_load(&mut self, offset: u32) -> &mut Self {
        self.ops.push(Op::SpmLoad(offset));
        self
    }

    /// Appends an SPM store.
    pub fn spm_store(&mut self, offset: u32) -> &mut Self {
        self.ops.push(Op::SpmStore(offset));
        self
    }

    /// Appends a tile barrier.
    pub fn tile_barrier(&mut self) -> &mut Self {
        self.ops.push(Op::TileBarrier);
        self
    }

    /// Appends a global barrier.
    pub fn global_barrier(&mut self) -> &mut Self {
        self.ops.push(Op::GlobalBarrier);
        self
    }

    /// Number of recorded ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if no ops were recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Consumes the program into an op iterator.
    pub fn into_stream(self) -> std::vec::IntoIter<Op> {
        self.ops.into_iter()
    }
}

impl IntoIterator for StreamBuilder {
    type Item = Op;
    type IntoIter = std::vec::IntoIter<Op>;
    fn into_iter(self) -> Self::IntoIter {
        self.into_stream()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_builder_records_in_order() {
        let mut p = StreamBuilder::new();
        p.compute(3)
            .load(0x100)
            .store(0x104)
            .spm_load(8)
            .tile_barrier();
        let ops: Vec<Op> = p.into_stream().collect();
        assert_eq!(
            ops,
            vec![
                Op::Compute(3),
                Op::Load(0x100),
                Op::Store(0x104),
                Op::SpmLoad(8),
                Op::TileBarrier
            ]
        );
    }

    #[test]
    fn compute_clamps_to_one() {
        let mut p = StreamBuilder::new();
        p.compute(0);
        assert_eq!(p.into_stream().next(), Some(Op::Compute(1)));
    }

    #[test]
    fn iterators_are_streams() {
        fn takes_stream<S: OpStream>(s: S) -> usize {
            s.count()
        }
        let n = takes_stream((0..5).map(|_| Op::Compute(1)));
        assert_eq!(n, 5);
    }
}
