//! Simulation statistics and reports.

use crate::config::{Geometry, HwConfig};
use crate::energy::EnergyBreakdown;

/// Steady-state memo counters for [`crate::Machine::run_program`]:
/// how often a memo-eligible run (recurring program id, no pending
/// reconfiguration carry) was served from a recorded bank snapshot
/// versus re-simulated and recorded for the next repeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    /// Runs replayed from the memo instead of being re-simulated.
    pub hits: u64,
    /// Memo-eligible runs that matched no recorded snapshot.
    pub misses: u64,
}

impl MemoStats {
    /// `hits / (hits + misses)`, or 0 when no run was memo-eligible.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Epoch-commit counters for [`crate::Machine::run_program`]'s
/// parallel-tiles mode: how each global-barrier epoch was committed.
/// Cumulative over the machine's lifetime (like [`MemoStats`]). Runs
/// served from the steady-state memo skip epoch execution, but the memo
/// re-applies the recorded run's counter deltas so these keep growing
/// exactly as if every run had been simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EpochStats {
    /// Epochs the static analyzer proved interference-free and that
    /// committed directly, skipping the shadow-HBM replay.
    pub proven: u64,
    /// Epochs committed through the dynamic shadow-HBM replay check.
    pub replayed: u64,
    /// Replayed epochs whose parallel timing mismatched the replay and
    /// were rolled back to sequential execution.
    pub rolled_back: u64,
}

/// Raw event counters accumulated during simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Ops issued (all workers).
    pub ops: u64,
    /// Global loads issued.
    pub loads: u64,
    /// Global stores issued.
    pub stores: u64,
    /// SPM reads + writes.
    pub spm_accesses: u64,
    /// Cycles spent in `Compute` ops.
    pub compute_cycles: u64,
    /// Cycles workers were blocked on memory.
    pub mem_stall_cycles: u64,
    /// Cycles workers were blocked at barriers.
    pub barrier_stall_cycles: u64,
    /// L1 cache demand hits.
    pub l1_hits: u64,
    /// L1 cache demand misses.
    pub l1_misses: u64,
    /// L2 cache demand hits.
    pub l2_hits: u64,
    /// L2 cache demand misses.
    pub l2_misses: u64,
    /// Lines installed in L2 by L1 dirty writebacks (not demand accesses,
    /// so excluded from hit-rate metrics but charged as bank energy).
    pub l2_writeback_installs: u64,
    /// Crossbar traversals through shared (arbitrated) crossbars.
    pub xbar_traversals: u64,
    /// Serialization cycles lost to same-cycle same-bank conflicts.
    pub conflict_cycles: u64,
    /// HBM demand + prefetch line reads.
    pub hbm_line_reads: u64,
    /// HBM line writebacks.
    pub hbm_line_writes: u64,
    /// Cycles requests waited on busy HBM channels.
    pub hbm_queue_cycles: u64,
    /// Prefetch lines issued.
    pub prefetches: u64,
    /// Runtime reconfigurations performed.
    pub reconfigurations: u64,
    /// Cycles charged to reconfiguration (switch + flush drain).
    pub reconfig_cycles: u64,
    /// Dirty lines written back by reconfiguration flushes.
    pub flush_writebacks: u64,
}

impl SimStats {
    /// Field-wise sum.
    pub fn merge(&self, other: &SimStats) -> SimStats {
        SimStats {
            ops: self.ops + other.ops,
            loads: self.loads + other.loads,
            stores: self.stores + other.stores,
            spm_accesses: self.spm_accesses + other.spm_accesses,
            compute_cycles: self.compute_cycles + other.compute_cycles,
            mem_stall_cycles: self.mem_stall_cycles + other.mem_stall_cycles,
            barrier_stall_cycles: self.barrier_stall_cycles + other.barrier_stall_cycles,
            l1_hits: self.l1_hits + other.l1_hits,
            l1_misses: self.l1_misses + other.l1_misses,
            l2_hits: self.l2_hits + other.l2_hits,
            l2_misses: self.l2_misses + other.l2_misses,
            l2_writeback_installs: self.l2_writeback_installs + other.l2_writeback_installs,
            xbar_traversals: self.xbar_traversals + other.xbar_traversals,
            conflict_cycles: self.conflict_cycles + other.conflict_cycles,
            hbm_line_reads: self.hbm_line_reads + other.hbm_line_reads,
            hbm_line_writes: self.hbm_line_writes + other.hbm_line_writes,
            hbm_queue_cycles: self.hbm_queue_cycles + other.hbm_queue_cycles,
            prefetches: self.prefetches + other.prefetches,
            reconfigurations: self.reconfigurations + other.reconfigurations,
            reconfig_cycles: self.reconfig_cycles + other.reconfig_cycles,
            flush_writebacks: self.flush_writebacks + other.flush_writebacks,
        }
    }

    /// L1 demand hit rate in `[0, 1]`; 1.0 when no accesses occurred.
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            1.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }

    /// L2 demand hit rate in `[0, 1]`; 1.0 when no accesses occurred.
    pub fn l2_hit_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            1.0
        } else {
            self.l2_hits as f64 / total as f64
        }
    }

    /// Total DRAM traffic in bytes given the line size.
    pub fn hbm_bytes(&self, line_bytes: usize) -> u64 {
        (self.hbm_line_reads + self.hbm_line_writes) * line_bytes as u64
    }
}

/// The outcome of one simulated kernel invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Geometry the run used.
    pub geometry: Geometry,
    /// Hardware configuration the run used.
    pub config: HwConfig,
    /// Total cycles from first issue to last completion.
    pub cycles: u64,
    /// Wall-clock seconds at the configured frequency.
    pub seconds: f64,
    /// Event counters for this run.
    pub stats: SimStats,
    /// Energy breakdown for this run.
    pub energy: EnergyBreakdown,
}

impl SimReport {
    /// Total energy in joules.
    pub fn joules(&self) -> f64 {
        self.energy.total()
    }

    /// Average power in watts over the run.
    pub fn watts(&self) -> f64 {
        if self.seconds > 0.0 {
            self.joules() / self.seconds
        } else {
            0.0
        }
    }

    /// Merges another report of the *same* geometry/config family into a
    /// running total (cycles and seconds add; config is kept from
    /// `self`). Used by iterative algorithms to total their iterations.
    pub fn accumulate(&mut self, other: &SimReport) {
        self.cycles += other.cycles;
        self.seconds += other.seconds;
        self.stats = self.stats.merge(&other.stats);
        self.energy = self.energy.merge(&other.energy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let a = SimStats {
            ops: 3,
            l1_hits: 5,
            ..Default::default()
        };
        let b = SimStats {
            ops: 2,
            l1_misses: 1,
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.ops, 5);
        assert_eq!(m.l1_hits, 5);
        assert_eq!(m.l1_misses, 1);
    }

    #[test]
    fn hit_rates() {
        let s = SimStats {
            l1_hits: 3,
            l1_misses: 1,
            ..Default::default()
        };
        assert!((s.l1_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(SimStats::default().l1_hit_rate(), 1.0);
        assert_eq!(SimStats::default().l2_hit_rate(), 1.0);
    }

    #[test]
    fn hbm_bytes_counts_both_directions() {
        let s = SimStats {
            hbm_line_reads: 2,
            hbm_line_writes: 3,
            ..Default::default()
        };
        assert_eq!(s.hbm_bytes(64), 320);
    }
}
